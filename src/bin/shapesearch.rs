//! The `shapesearch` command-line tool: shape-based search over a CSV or
//! JSON-lines file, either one-shot or as a long-running query service.
//!
//! ```text
//! shapesearch --data sales.csv --z product --x week --y sales \
//!             --query "[p=up][p=down]" [--k 5] [--algo tree|dp|greedy|dtw] \
//!             [--filter "col<=value"] [--agg avg]
//! shapesearch --data genes.csv -z gene -x time -y expr \
//!             --nl "rising then falling sharply"
//! shapesearch serve [--addr 127.0.0.1:7878] [--workers N] [--event-threads N] \
//!             [--cache-cap N] [--max-batch N] [--shards N] \
//!             [--resident-shards N] [--resident-bytes N] \
//!             [--data FILE --z COL --x COL --y COL [--name NAME]] \
//!             [--snapshot FILE [--name NAME]]
//! shapesearch snapshot --data FILE --z COL --x COL --y COL --out FILE \
//!             [--bin N] [--filter "col<=value"] [--agg avg]
//! ```
//!
//! One-shot mode prints the ranked matches with scores and the fitted
//! segment boundaries (the engine-side equivalent of the paper's result
//! panel, Figure 2 Box 4). `serve` exposes the same pipeline over HTTP
//! with a dataset catalog and a query-result cache; see the
//! `shapesearch-server` crate docs for the protocol.

use shapesearch::prelude::*;
use shapesearch_core::{PruningMode, SegmenterKind};
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Cli {
    data: Option<String>,
    z: Option<String>,
    x: Option<String>,
    y: Option<String>,
    query: Option<String>,
    nl: Option<String>,
    k: usize,
    algo: SegmenterKind,
    pruning: PruningMode,
    filters: Vec<String>,
    agg: Option<String>,
    builtins: bool,
}

fn usage() -> &'static str {
    "usage: shapesearch --data FILE --z COL --x COL --y COL \
     (--query REGEX | --nl TEXT) [--k N] [--algo dp|tree|pruned|greedy|dtw|euclid] \
     [--pruning auto|off|force] \
     [--filter 'col OP value']... [--agg avg|sum|min|max|count] [--builtins]\n\
     shapesearch serve [--addr HOST:PORT] [--workers N] [--event-threads N] [--cache-cap N] \
     [--max-batch N] [--shards N] [--resident-shards N] [--resident-bytes N] \
     [--data-root DIR] [--slow-query-micros N] \
     [--shard-connect-timeout-ms N] [--shard-io-timeout-ms N] [--shard-retries N] \
     [--data FILE --z COL --x COL --y COL [--name NAME] [--filter ...] [--agg ...] \
      | --snapshot FILE [--name NAME]] \
      [--shard-of I/N [--announce ROUTER ...] [--advertise HOST:PORT] \
       | --shard-endpoint 'HOST:PORT[|HOST:PORT...]'|local|registry ...]\n\
     shapesearch snapshot --data FILE --z COL --x COL --y COL --out FILE \
     [--bin N] [--filter 'col OP value']... [--agg avg|sum|min|max|count]"
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        k: 5,
        ..Cli::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--data" => cli.data = Some(take("--data")?),
            "--z" | "-z" => cli.z = Some(take("--z")?),
            "--x" | "-x" => cli.x = Some(take("--x")?),
            "--y" | "-y" => cli.y = Some(take("--y")?),
            "--query" | "-q" => cli.query = Some(take("--query")?),
            "--nl" => cli.nl = Some(take("--nl")?),
            "--k" | "-k" => {
                cli.k = take("--k")?
                    .parse()
                    .map_err(|_| "--k must be an integer".to_owned())?;
            }
            "--algo" => {
                let name = take("--algo")?;
                cli.algo = SegmenterKind::parse(&name)
                    .ok_or_else(|| format!("unknown algorithm `{name}`"))?;
            }
            "--pruning" => {
                let name = take("--pruning")?;
                cli.pruning = PruningMode::parse(&name)
                    .ok_or_else(|| format!("unknown pruning mode `{name}`"))?;
            }
            "--filter" => cli.filters.push(take("--filter")?),
            "--agg" => cli.agg = Some(take("--agg")?),
            "--builtins" => cli.builtins = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

/// Parses a `col OP value` filter expression.
fn parse_filter(text: &str) -> Result<Predicate, String> {
    for (op_text, op) in [
        ("<=", CompareOp::Le),
        (">=", CompareOp::Ge),
        ("!=", CompareOp::Ne),
        ("<", CompareOp::Lt),
        (">", CompareOp::Gt),
        ("=", CompareOp::Eq),
    ] {
        if let Some((col, val)) = text.split_once(op_text) {
            let col = col.trim();
            let val = val.trim();
            if col.is_empty() || val.is_empty() {
                return Err(format!("malformed filter `{text}`"));
            }
            return Ok(Predicate::new(
                col,
                op,
                shapesearch::datastore::Value::infer(val),
            ));
        }
    }
    Err(format!("filter `{text}` has no comparison operator"))
}

/// Parses and runs `shapesearch serve ...`, blocking until killed.
fn run_serve(args: &[String]) -> Result<(), String> {
    use shapesearch::server::catalog::ShardEndpoints;
    use shapesearch::server::{DataSource, DatasetSpec, ServerConfig};

    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServerConfig::default();
    let mut data: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut name: Option<String> = None;
    let mut z = None;
    let mut x = None;
    let mut y = None;
    let mut filters: Vec<String> = Vec::new();
    let mut agg: Option<String> = None;
    let mut shard_of: Option<(usize, usize)> = None;
    let mut from_registry = false;
    let mut shard_endpoints: Vec<Option<Vec<String>>> = Vec::new();
    let mut announce: Vec<String> = Vec::new();
    let mut advertise: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--addr" => addr = take("--addr")?,
            "--workers" => {
                config.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_owned())?;
            }
            "--cache-cap" => {
                config.cache_capacity = take("--cache-cap")?
                    .parse()
                    .map_err(|_| "--cache-cap must be an integer".to_owned())?;
            }
            "--max-batch" => {
                config.max_batch = take("--max-batch")?
                    .parse()
                    .map_err(|_| "--max-batch must be an integer".to_owned())?;
                if config.max_batch == 0 {
                    return Err("--max-batch must be at least 1".to_owned());
                }
            }
            "--shards" => {
                // Engine shards per dataset: 0 = auto (available
                // parallelism), always capped by each dataset's
                // collection size.
                config.shards = take("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be an integer".to_owned())?;
            }
            "--resident-shards" => {
                // Cap on snapshot shards held in memory at once; the
                // least-recently-touched shard is evicted over the cap
                // and reloads from its snapshot on the next touch.
                // 0 (the default) = unlimited.
                config.resident_shards = take("--resident-shards")?
                    .parse()
                    .map_err(|_| "--resident-shards must be an integer".to_owned())?;
            }
            "--resident-bytes" => {
                // Byte budget for resident snapshot shards (sum of their
                // columnar-arena sizes); least-recently-touched shards
                // evict while over it, but never below one resident.
                // 0 (the default) = unlimited.
                config.resident_bytes = take("--resident-bytes")?
                    .parse()
                    .map_err(|_| "--resident-bytes must be an integer".to_owned())?;
            }
            "--event-threads" => {
                // Readiness event-loop threads of the evented HTTP core;
                // 0 (the default) = auto (available parallelism). These
                // only do socket I/O — --workers sizes the CPU tier.
                config.event_threads = take("--event-threads")?
                    .parse()
                    .map_err(|_| "--event-threads must be an integer".to_owned())?;
            }
            "--data-root" => config.data_root = Some(take("--data-root")?.into()),
            "--slow-query-micros" => {
                // Queries slower than this emit a structured stderr line
                // carrying the trace ID; 0 (the default) disables it.
                config.slow_query_micros = take("--slow-query-micros")?
                    .parse()
                    .map_err(|_| "--slow-query-micros must be an integer".to_owned())?;
            }
            "--shard-of" => {
                // Shard-server mode for the preloaded dataset: own
                // partition I of a deterministic N-way split and answer
                // POST /shard/query for a router.
                shard_of = Some(shapesearch::server::protocol::parse_shard_of(&take(
                    "--shard-of",
                )?)?);
            }
            "--shard-endpoint" => {
                // Repeatable; entries map to shard indices in flag
                // order. `local` keeps that partition in this process;
                // `HOST:PORT|HOST:PORT` (pipe-separated) declares a
                // replica set for that partition; a single `registry`
                // resolves the whole placement from heartbeats instead.
                let ep = take("--shard-endpoint")?;
                if ep.eq_ignore_ascii_case("registry") {
                    from_registry = true;
                } else if ep.eq_ignore_ascii_case("local") {
                    shard_endpoints.push(None);
                } else {
                    let replicas: Vec<String> = ep.split('|').map(str::to_owned).collect();
                    if replicas.iter().any(String::is_empty) {
                        return Err(format!("--shard-endpoint `{ep}` has an empty replica"));
                    }
                    shard_endpoints.push(Some(replicas));
                }
            }
            "--shard-connect-timeout-ms" => {
                // Bounds ONE connect attempt to one replica before
                // failover moves on.
                config.shard_connect_timeout_ms = take("--shard-connect-timeout-ms")?
                    .parse()
                    .map_err(|_| "--shard-connect-timeout-ms must be an integer".to_owned())?;
            }
            "--shard-io-timeout-ms" => {
                // Bounds how long a black-holed replica can stall a
                // fan-out before failover moves on.
                config.shard_io_timeout_ms = take("--shard-io-timeout-ms")?
                    .parse()
                    .map_err(|_| "--shard-io-timeout-ms must be an integer".to_owned())?;
            }
            "--shard-retries" => {
                // Extra connect attempts per replica after the first
                // fails, before failover tries the next replica.
                config.shard_retries = take("--shard-retries")?
                    .parse()
                    .map_err(|_| "--shard-retries must be an integer".to_owned())?;
            }
            "--announce" => {
                // Repeatable: a router to send placement heartbeats to,
                // so `"shard_endpoints": "registry"` registrations there
                // can discover this shard server.
                announce.push(take("--announce")?);
            }
            "--advertise" => {
                // The endpoint heartbeats claim; defaults to the bound
                // address (pass this when routers reach this process
                // through a different host, e.g. behind NAT).
                advertise = Some(take("--advertise")?);
            }
            "--data" => data = Some(take("--data")?),
            "--snapshot" => snapshot = Some(take("--snapshot")?),
            "--name" => name = Some(take("--name")?),
            "--z" | "-z" => z = Some(take("--z")?),
            "--x" | "-x" => x = Some(take("--x")?),
            "--y" | "-y" => y = Some(take("--y")?),
            "--filter" => filters.push(take("--filter")?),
            "--agg" => agg = Some(take("--agg")?),
            other => return Err(format!("unknown serve argument `{other}`\n{}", usage())),
        }
    }

    let service =
        shapesearch::server::serve(&addr, config).map_err(|e| format!("binding {addr}: {e}"))?;

    // Optional preregistration so the service starts useful: an eager
    // --data extraction, or a --snapshot whose shards load lazily on
    // first touch (and stay under the --resident-shards cap).
    let prereg = match (data, snapshot) {
        (Some(_), Some(_)) => {
            return Err("--data and --snapshot are mutually exclusive: build the \
                        snapshot with `shapesearch snapshot`, then serve it"
                .into())
        }
        (Some(path), None) => {
            let (z, x, y) = match (z, x, y) {
                (Some(z), Some(x), Some(y)) => (z, x, y),
                _ => return Err("--data needs --z, --x, and --y".to_owned()),
            };
            let mut visual = VisualSpec::new(z, x, y);
            for f in &filters {
                visual = visual.with_filter(parse_filter(f)?);
            }
            if let Some(agg) = &agg {
                visual = visual.with_aggregation(
                    Aggregation::parse(agg)
                        .ok_or_else(|| format!("unknown aggregation `{agg}`"))?,
                );
            }
            Some((DataSource::Path(path), visual))
        }
        (None, Some(path)) => {
            if z.is_some() || x.is_some() || y.is_some() || !filters.is_empty() || agg.is_some() {
                return Err("--snapshot bakes the visual mapping in at build time; \
                            --z/--x/--y/--filter/--agg do not apply"
                    .into());
            }
            Some((DataSource::Snapshot(path), VisualSpec::new("z", "x", "y")))
        }
        (None, None) => None,
    };
    if let Some((source, visual)) = prereg {
        let path = match &source {
            DataSource::Path(p) | DataSource::Snapshot(p) => p.clone(),
            _ => unreachable!("preregistration sources are file paths"),
        };
        let entry = service
            .state()
            .catalog
            .register(DatasetSpec {
                id: name.clone(),
                name: name.unwrap_or(path),
                source,
                visual,
                builtins: true,
                shards: None,
                shard_endpoints: if from_registry {
                    if !shard_endpoints.is_empty() {
                        return Err(
                            "--shard-endpoint registry cannot mix with explicit endpoints".into(),
                        );
                    }
                    Some(ShardEndpoints::FromRegistry)
                } else if shard_endpoints.is_empty() {
                    None
                } else {
                    Some(ShardEndpoints::Explicit(shard_endpoints))
                },
                shard_of,
            })
            .map_err(|e| e.to_string())?;
        match entry.shard_of {
            Some((index, total)) => println!(
                "registered shard {index}/{total} of dataset `{}` \
                 ({} trendlines, {} points) — answering POST /shard/query",
                entry.id, entry.trendline_count, entry.point_count,
            ),
            None => println!(
                "registered dataset `{}` ({} trendlines, {} points, {} shard{}{})",
                entry.id,
                entry.trendline_count,
                entry.point_count,
                entry.shard_count,
                if entry.shard_count == 1 { "" } else { "s" },
                if entry.has_remote_shards() {
                    ", remote placements"
                } else {
                    ""
                },
            ),
        }
        // Placement heartbeats: announce this shard server's partition
        // to each router every few seconds so their
        // `"shard_endpoints": "registry"` registrations can resolve it.
        // Failures are silently retried on the next beat — a router
        // being down must never take a shard server with it.
        if !announce.is_empty() {
            let Some((index, total)) = entry.shard_of else {
                return Err("--announce requires --shard-of (only shard servers announce)".into());
            };
            let endpoint = advertise.unwrap_or_else(|| service.addr().to_string());
            let beat = format!(
                r#"{{"dataset":"{}","shard_of":"{index}/{total}","endpoint":"{endpoint}"}}"#,
                entry.id
            );
            let beat = shapesearch::server::json::parse(&beat).map_err(|e| e.to_string())?;
            for router in &announce {
                println!(
                    "announcing shard {index}/{total} of `{}` to {router}",
                    entry.id
                );
            }
            std::thread::spawn(move || loop {
                for router in &announce {
                    let _ =
                        shapesearch::server::Client::new(router).post("/registry/heartbeat", &beat);
                }
                std::thread::sleep(std::time::Duration::from_secs(2));
            });
        }
    } else if shard_of.is_some() || !shard_endpoints.is_empty() || from_registry {
        return Err(
            "--shard-of / --shard-endpoint only apply to a --data/--snapshot preregistration"
                .into(),
        );
    } else if !announce.is_empty() || advertise.is_some() {
        return Err("--announce / --advertise require a --data --shard-of preregistration".into());
    }

    let local = service.addr();
    println!("shapesearch server listening on http://{local}");
    println!("try: curl -s http://{local}/healthz");
    loop {
        std::thread::park();
    }
}

/// Parses and runs `shapesearch snapshot ...`: EXTRACT + GROUP once,
/// then persist the columnar state to a versioned on-disk snapshot that
/// `serve --snapshot` (or a `"snapshot"` registration) can mmap and
/// load shard-by-shard — byte-identical to re-extracting the source.
fn run_snapshot(args: &[String]) -> Result<(), String> {
    let mut data: Option<String> = None;
    let mut out: Option<String> = None;
    let mut z = None;
    let mut x = None;
    let mut y = None;
    let mut bin = 1usize;
    let mut filters: Vec<String> = Vec::new();
    let mut agg: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--data" => data = Some(take("--data")?),
            "--out" | "-o" => out = Some(take("--out")?),
            "--z" | "-z" => z = Some(take("--z")?),
            "--x" | "-x" => x = Some(take("--x")?),
            "--y" | "-y" => y = Some(take("--y")?),
            "--bin" => {
                bin = take("--bin")?
                    .parse()
                    .map_err(|_| "--bin must be an integer".to_owned())?;
                if bin == 0 {
                    return Err("--bin must be at least 1".to_owned());
                }
            }
            "--filter" => filters.push(take("--filter")?),
            "--agg" => agg = Some(take("--agg")?),
            other => return Err(format!("unknown snapshot argument `{other}`\n{}", usage())),
        }
    }
    let data = data.ok_or("snapshot needs --data")?;
    let out = out.ok_or("snapshot needs --out")?;
    let (z, x, y) = match (z, x, y) {
        (Some(z), Some(x), Some(y)) => (z, x, y),
        _ => return Err("snapshot needs --z, --x, and --y".to_owned()),
    };

    let table = if data.ends_with(".json") || data.ends_with(".jsonl") {
        shapesearch::datastore::json::read_file(&data)
    } else {
        shapesearch::datastore::csv::read_file(&data)
    }
    .map_err(|e| format!("loading {data}: {e}"))?;

    let mut spec = VisualSpec::new(z, x, y);
    for f in &filters {
        spec = spec.with_filter(parse_filter(f)?);
    }
    if let Some(agg) = &agg {
        spec = spec.with_aggregation(
            Aggregation::parse(agg).ok_or_else(|| format!("unknown aggregation `{agg}`"))?,
        );
    }

    let trendlines = shapesearch::datastore::extract(
        &table,
        &spec,
        &shapesearch::datastore::ExtractOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let stats =
        shapesearch::core::snapshot::write(&out, &trendlines, bin).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} trendlines ({} accepted), {} raw points, \
         {} canvas points, bin width {bin}, {} bytes",
        stats.trendlines, stats.vizzes, stats.raw_points, stats.canvas_points, stats.bytes,
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        return run_serve(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("snapshot") {
        return run_snapshot(&argv[1..]);
    }
    let cli = parse_cli()?;
    let data = cli.data.ok_or_else(|| usage().to_owned())?;
    let (z, x, y) = match (&cli.z, &cli.x, &cli.y) {
        (Some(z), Some(x), Some(y)) => (z.clone(), x.clone(), y.clone()),
        _ => return Err(usage().to_owned()),
    };

    // Load the table (CSV or JSON-lines by extension).
    let table = if data.ends_with(".json") || data.ends_with(".jsonl") {
        shapesearch::datastore::json::read_file(&data)
    } else {
        shapesearch::datastore::csv::read_file(&data)
    }
    .map_err(|e| format!("loading {data}: {e}"))?;

    // Build the visual spec.
    let mut spec = VisualSpec::new(z, x, y);
    for f in &cli.filters {
        spec = spec.with_filter(parse_filter(f)?);
    }
    if let Some(agg) = &cli.agg {
        spec = spec.with_aggregation(
            Aggregation::parse(agg).ok_or_else(|| format!("unknown aggregation `{agg}`"))?,
        );
    }

    // Parse the query.
    let query = match (&cli.query, &cli.nl) {
        (Some(q), _) => parse_regex(q).map_err(|e| e.to_string())?,
        (None, Some(text)) => {
            let parsed = parse_natural_language(text).map_err(|e| e.to_string())?;
            eprintln!("parsed query: {}", parsed.query);
            for note in &parsed.notes {
                eprintln!("note: {note}");
            }
            parsed.query
        }
        (None, None) => return Err(usage().to_owned()),
    };

    let mut engine = ShapeEngine::new(&table, &spec)
        .map_err(|e| e.to_string())?
        .with_segmenter(cli.algo);
    engine.options_mut().pruning_mode = cli.pruning;
    if cli.builtins {
        engine.register_builtin_udps();
    }
    let results = engine.top_k(&query, cli.k).map_err(|e| e.to_string())?;

    if results.is_empty() {
        println!("no matches");
        return Ok(());
    }
    println!("{:<4} {:<24} {:>8}  segments", "rank", "key", "score");
    for (i, r) in results.iter().enumerate() {
        let segs: Vec<String> = r.ranges.iter().map(|&(s, e)| format!("{s}..{e}")).collect();
        println!(
            "{:<4} {:<24} {:>+8.3}  {}",
            i + 1,
            r.key,
            r.score,
            segs.join(" ")
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
