//! # ShapeSearch
//!
//! A flexible and efficient system for shape-based exploration of trendlines —
//! a from-scratch Rust implementation of the ShapeSearch system (Siddiqui et
//! al., SIGMOD 2020).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`core`] — the ShapeQuery algebra, scoring, segmentation algorithms
//!   (optimal DP, SegmentTree, greedy), pruning, and the execution engine.
//! * [`datastore`] — the columnar OLAP substrate (tables, CSV/JSON, filters,
//!   aggregation, the EXTRACT operator).
//! * [`parser`] — regex, natural-language, and sketch front-ends producing
//!   ShapeQuery ASTs.
//! * [`crf`] — the linear-chain CRF and POS-tagging substrate used by the NL
//!   parser.
//! * [`server`] — the concurrent query service: dataset catalog, HTTP/1.1
//!   worker pool, and LRU query-result cache.
//! * [`similarity`] — DTW and Euclidean baselines.
//! * [`datagen`] — seeded synthetic datasets and workloads reproducing the
//!   paper's evaluation (Table 11, Table 10 task categories).
//!
//! ## Quickstart
//!
//! ```
//! use shapesearch::prelude::*;
//!
//! // A tiny dataset: two products' sales over time.
//! let csv = "\
//! product,week,sales
//! widget,1,10
//! widget,2,20
//! widget,3,15
//! widget,4,5
//! gadget,1,5
//! gadget,2,4
//! gadget,3,8
//! gadget,4,12
//! ";
//! let table = shapesearch::datastore::csv::read_str(csv).unwrap();
//!
//! // "rising then falling", as a visual regex.
//! let query = parse_regex("[p=up][p=down]").unwrap();
//!
//! let spec = VisualSpec::new("product", "week", "sales");
//! let results = ShapeEngine::new(&table, &spec)
//!     .unwrap()
//!     .top_k(&query, 1)
//!     .unwrap();
//! assert_eq!(results[0].key, "widget");
//! ```

pub use shapesearch_core as core;
pub use shapesearch_crf as crf;
pub use shapesearch_datagen as datagen;
pub use shapesearch_datastore as datastore;
pub use shapesearch_parser as parser;
pub use shapesearch_server as server;
pub use shapesearch_similarity as similarity;

/// Commonly used items, importable with `use shapesearch::prelude::*`.
pub mod prelude {
    pub use shapesearch_core::{
        Pattern, ScoreParams, Segmenter, SegmenterKind, ShapeEngine, ShapeQuery, ShapeSegment,
        ShardedEngine, TopKResult,
    };
    pub use shapesearch_datastore::{
        Aggregation, CompareOp, Predicate, Table, Trendline, VisualSpec,
    };
    pub use shapesearch_parser::{parse_natural_language, parse_regex};
}
