#!/usr/bin/env sh
# Tier-1 verification gate. Run from the repository root; any failure
# aborts the script with a nonzero exit.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> sharded serve smoke (--shards 4, HTTP batch query)"
# Guards the whole fan-out path end to end: CLI flag -> catalog default
# -> shard partitioning -> compute-pool fan-out -> merge -> JSON reply.
SMOKE_PORT=$((20000 + $$ % 20000))
./target/release/shapesearch serve --addr "127.0.0.1:$SMOKE_PORT" --shards 4 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales &
SMOKE_PID=$!
trap 'kill "$SMOKE_PID" 2>/dev/null || true' EXIT

up=""
for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$SMOKE_PORT/healthz" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
[ -n "$up" ] || { echo "smoke: server never came up"; exit 1; }

# The registration got the configured 4 shards.
curl -sf "http://127.0.0.1:$SMOKE_PORT/datasets" | grep -q '"shards":4' || {
    echo "smoke: dataset did not register with 4 shards"; exit 1;
}

# Per-run reply file: like SMOKE_PORT, $$ keeps concurrent ci.sh runs
# on one machine from clobbering each other.
SMOKE_REPLY="/tmp/smoke_batch_$$.json"
BATCH_STATUS=$(curl -s -o "$SMOKE_REPLY" -w '%{http_code}' \
    -X POST "http://127.0.0.1:$SMOKE_PORT/query" -d '[
      {"dataset":"sales","query":"[p=up][p=down]","k":3},
      {"dataset":"sales","query":"[p=down][p=up]","k":3}
    ]')
[ "$BATCH_STATUS" = "200" ] || {
    echo "smoke: batch query returned $BATCH_STATUS"
    cat "$SMOKE_REPLY"; exit 1;
}
# Non-empty results in every batch slot (a result object always carries
# a "key"), and the per-item shard count is reported.
grep -q '"key":' "$SMOKE_REPLY" || {
    echo "smoke: batch reply carried no results"; cat "$SMOKE_REPLY"; exit 1;
}
grep -q '"shards":4' "$SMOKE_REPLY" || {
    echo "smoke: batch reply did not report sharded execution"
    cat "$SMOKE_REPLY"; exit 1;
}

kill "$SMOKE_PID" 2>/dev/null || true
trap - EXIT
rm -f "$SMOKE_REPLY"
echo "smoke: sharded serve OK"

echo "ci: all green"
