#!/usr/bin/env sh
# Tier-1 verification gate. Run from the repository root; any failure
# aborts the script with a nonzero exit.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "ci: all green"
