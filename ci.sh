#!/usr/bin/env sh
# Tier-1 verification gate. Run from the repository root; any failure
# aborts the script with a nonzero exit. `.github/workflows/ci.yml` runs
# this same script on every push/PR, so the gate is enforced, not
# conventional.
set -eu

# ---------------------------------------------------------------------
# Process / tempfile hygiene: every server the smoke steps boot records
# its PID in CI_PIDS and every scratch file lands in CI_TMP, and ONE
# trap cleans all of it up on any exit — success, failed assertion, or
# signal. (Previously a failed assertion between `kill` and `trap -`
# leaked the reply file, and a multi-server smoke would have orphaned
# the other processes.)
CI_PIDS=""
CI_TMP=""
cleanup() {
    for pid in $CI_PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for f in $CI_TMP; do
        rm -rf "$f"
    done
}
trap cleanup EXIT INT TERM

# start_serve EXTRA_ARGS... — boots `shapesearch serve` on an
# OS-assigned ephemeral port (`--addr 127.0.0.1:0`) and reads the bound
# port back from the server's own "listening on" line. Letting the
# kernel pick the port removes the bind-collision class outright (the
# previous fixed `$$`-derived port raced concurrent CI runs and stale
# servers — worse, a stale server on the chosen port would pass the
# health probe and silently receive the smoke's queries); the outer
# retry loop still covers transient boot failures. Prints "PID PORT" on
# success. The caller appends the PID to CI_PIDS. (Runs in a command
# substitution — a subshell — so it must not mutate parent state.)
start_serve() {
    for attempt in 1 2 3; do
        log=$(mktemp "/tmp/ci_serve_$$_XXXXXX.log")
        ./target/release/shapesearch serve --addr "127.0.0.1:0" "$@" \
            >"$log" 2>&1 &
        pid=$!
        for _ in $(seq 1 100); do
            port=$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9][0-9]*\).*#\1#p' "$log")
            if [ -n "$port" ]; then
                # The port is bound and (any --data preload) registered:
                # the listening line prints after both.
                echo "$pid $port"
                rm -f "$log"
                return 0
            fi
            if ! kill -0 "$pid" 2>/dev/null; then
                break # died during boot: retry
            fi
            sleep 0.1
        done
        echo "ci: serve boot attempt $attempt failed; log:" >&2
        cat "$log" >&2
        rm -f "$log"
        kill "$pid" 2>/dev/null || true
    done
    echo "ci: could not boot a server after 3 attempts" >&2
    return 1
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# The connection-scaling steps below park an idle keep-alive crowd
# against an in-process server: ~2 fds per parked connection, all in one
# process. Raise the soft fd ceiling where allowed and size the crowd to
# whatever budget we actually got (1,000 when it fits).
ulimit -n 4096 2>/dev/null || true
FDS=$(ulimit -n)
case "$FDS" in
    unlimited) IDLE_CONNS=1000 ;;
    *)
        if [ "$FDS" -ge 2400 ]; then
            IDLE_CONNS=1000
        else
            IDLE_CONNS=$(( (FDS - 300) / 2 ))
        fi
        ;;
esac
export SHAPESEARCH_BENCH_IDLE_CONNS="$IDLE_CONNS"

echo "==> engine perf report (pruning on/off x shards, writes BENCH_engine.json)"
# The perf trajectory gate: runs the fixed seeded workload matrix,
# asserts pruned results are byte-identical to unpruned, rewrites
# BENCH_engine.json, and --check fails the build when the pruned default
# is slower than SHAPESEARCH_BENCH_REGRESSION_FACTOR x the unpruned
# baseline on any workload, the needle-in-a-haystack speedup falls
# below SHAPESEARCH_BENCH_MIN_NEEDLE_SPEEDUP (default 2 — real margin:
# ~4x), or the columnar kernel's throughput drops below the scalar
# reference's (SHAPESEARCH_BENCH_MIN_KERNEL_RATIO, default 1.0). The
# regression factor defaults to 1.25: the true common-case overhead is
# a few percent (recorded in the JSON), but a shared CI runner's
# wall-clock noise makes a tight gate flaky by construction, so the
# gate only catches meaningful regressions.
./target/release/perf_report --check
test -s BENCH_engine.json || { echo "perf_report wrote no BENCH_engine.json"; exit 1; }
grep -q '"kernel":' BENCH_engine.json || {
    echo "perf_report wrote no kernel block"; exit 1;
}
grep -q '"connections":' BENCH_engine.json || {
    echo "perf_report wrote no connections block"; exit 1;
}

echo "==> kernel microbench smoke (columnar vs scalar, equivalence gated)"
# The #[ignore]d throughput check in core::columnar: its bitwise
# columnar-vs-scalar equivalence assertions are the gate; the printed
# M windows/s figure is informational only (BENCH_engine.json's kernel
# block carries the recorded ratio, gated above by perf_report --check
# via SHAPESEARCH_BENCH_MIN_KERNEL_RATIO).
cargo test -q -p shapesearch-core --release kernel_throughput -- --ignored --nocapture

echo "==> idle keep-alive connection smoke ($IDLE_CONNS parked connections, 2 event threads)"
# The evented core's scaling claim, enforced end to end: a server with
# --event-threads 2 holds the whole idle crowd, answers the standard
# batch query through one of the HELD keep-alive connections
# byte-identically to a fresh connection (after normalizing the
# timing-dependent "micros" and "cached" fields), and reclaims every
# connection slot once the crowd hangs up.
./target/release/conn_smoke "$IDLE_CONNS"

echo "==> sharded serve smoke (--shards 4, HTTP batch query)"
# Guards the whole fan-out path end to end: CLI flag -> catalog default
# -> shard partitioning -> compute-pool fan-out -> merge -> JSON reply.
set -- $(start_serve --shards 4 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
SMOKE_PID=$1 SMOKE_PORT=$2
CI_PIDS="$CI_PIDS $SMOKE_PID"

# The registration got the configured 4 shards.
curl -sf "http://127.0.0.1:$SMOKE_PORT/datasets" | grep -q '"shards":4' || {
    echo "smoke: dataset did not register with 4 shards"; exit 1;
}

SMOKE_REPLY="/tmp/ci_smoke_batch_$$.json"
CI_TMP="$CI_TMP $SMOKE_REPLY"
BATCH_BODY='[
  {"dataset":"sales","query":"[p=up][p=down]","k":3},
  {"dataset":"sales","query":"[p=down][p=up]","k":3}
]'
BATCH_STATUS=$(curl -s -o "$SMOKE_REPLY" -w '%{http_code}' \
    -X POST "http://127.0.0.1:$SMOKE_PORT/query" -d "$BATCH_BODY")
[ "$BATCH_STATUS" = "200" ] || {
    echo "smoke: batch query returned $BATCH_STATUS"
    cat "$SMOKE_REPLY"; exit 1;
}
# Non-empty results in every batch slot (a result object always carries
# a "key"), and the per-item shard count is reported.
grep -q '"key":' "$SMOKE_REPLY" || {
    echo "smoke: batch reply carried no results"; cat "$SMOKE_REPLY"; exit 1;
}
grep -q '"shards":4' "$SMOKE_REPLY" || {
    echo "smoke: batch reply did not report sharded execution"
    cat "$SMOKE_REPLY"; exit 1;
}
echo "smoke: sharded serve OK"

echo "==> distributed serve smoke (2 shard servers + mixed-placement router, byte diff)"
# The multi-machine topology end to end: two --shard-of shard servers
# own partitions 0 and 1 of a 4-way split, a router places those two
# shards remotely and the other two locally, and the router's batch
# reply must be BYTE-IDENTICAL to the single-process --shards 4 reply
# (after stripping the envelope's wall-clock "micros", the one
# legitimately nondeterministic field).
set -- $(start_serve --workers 4 --shard-of 0/4 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
SHARD0_PID=$1 SHARD0_PORT=$2
CI_PIDS="$CI_PIDS $SHARD0_PID"
set -- $(start_serve --workers 4 --shard-of 1/4 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
SHARD1_PID=$1 SHARD1_PORT=$2
CI_PIDS="$CI_PIDS $SHARD1_PID"
set -- $(start_serve --workers 4 --shards 4 \
    --shard-endpoint "127.0.0.1:$SHARD0_PORT" \
    --shard-endpoint "127.0.0.1:$SHARD1_PORT" \
    --shard-endpoint local --shard-endpoint local \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
ROUTER_PID=$1 ROUTER_PORT=$2
CI_PIDS="$CI_PIDS $ROUTER_PID"

ROUTER_REPLY="/tmp/ci_router_batch_$$.json"
SINGLE_REPLY="/tmp/ci_single_batch_$$.json"
CI_TMP="$CI_TMP $ROUTER_REPLY $SINGLE_REPLY"
# Fresh queries (cold on BOTH servers — the first smoke already warmed
# BATCH_BODY on the single-process server, and a hit's "cached":true
# would trivially break the byte diff).
DIFF_BODY='[
  {"dataset":"sales","query":"[p=up][p=down]","k":4},
  {"dataset":"sales","query":"[p=down][p=up][p=down]","k":6},
  {"dataset":"sales","query":"[p=up]","k":2},
  {"dataset":"sales","query":"[p=down]","k":1}
]'
for target in "router 127.0.0.1:$ROUTER_PORT $ROUTER_REPLY" \
              "single 127.0.0.1:$SMOKE_PORT $SINGLE_REPLY"; do
    set -- $target
    status=$(curl -s -o "$3.raw" -w '%{http_code}' \
        -X POST "http://$2/query" -d "$DIFF_BODY")
    CI_TMP="$CI_TMP $3.raw"
    [ "$status" = "200" ] || {
        echo "distributed smoke: $1 batch returned $status"
        cat "$3.raw"; exit 1;
    }
    # Strip the envelope's wall-clock micros; everything else —
    # results, scores, ranges, tie order, shard counts, cache flags —
    # must match byte for byte.
    sed 's/"micros":[0-9]*,//' "$3.raw" > "$3"
done
cmp "$ROUTER_REPLY" "$SINGLE_REPLY" || {
    echo "distributed smoke: router and single-process replies diverged"
    echo "--- router:"; cat "$ROUTER_REPLY"
    echo "--- single-process:"; cat "$SINGLE_REPLY"
    exit 1
}
grep -q '"key":' "$ROUTER_REPLY" || {
    echo "distributed smoke: router reply carried no results"
    cat "$ROUTER_REPLY"; exit 1;
}
# The router really did go over the wire: its healthz names both
# endpoints with zero errors.
ROUTER_HEALTH=$(curl -sf "http://127.0.0.1:$ROUTER_PORT/healthz")
echo "$ROUTER_HEALTH" | grep -q "\"endpoint\":\"127.0.0.1:$SHARD0_PORT\"" || {
    echo "distributed smoke: router healthz missing shard 0 endpoint"
    echo "$ROUTER_HEALTH"; exit 1;
}
# Anchor on the remote_shards TOTALS block — a bare '"errors":0' would
# match any zero anywhere (e.g. one healthy endpoint in by_endpoint)
# and miss a partially erroring topology.
echo "$ROUTER_HEALTH" | grep -Eq '"remote_shards":\{"endpoints":[0-9]+,"requests":[0-9]+,"errors":0,' || {
    echo "distributed smoke: router reported remote errors"
    echo "$ROUTER_HEALTH"; exit 1;
}
# The Section-6.3 bound path was actually exercised end to end: the
# router's local shards computed at least one score upper bound (the
# k=1 query guarantees a live threshold even on these tiny partitions).
echo "$ROUTER_HEALTH" | grep -Eq '"pruning":\{"bounded":[1-9]' || {
    echo "distributed smoke: router healthz shows no pruning activity"
    echo "$ROUTER_HEALTH"; exit 1;
}
echo "smoke: distributed topology OK (router == single-process, byte for byte)"

echo "==> observability smoke (explain trace across the topology, /metrics exposition)"
# A fresh explain:true query against the router must return ONE stitched
# span tree covering every shard slot — the two remote slots carrying
# the shard SERVERS' own spans, proving the trace ID crossed the
# /shard/query wire and came back.
EXPLAIN_REPLY="/tmp/ci_router_explain_$$.json"
CI_TMP="$CI_TMP $EXPLAIN_REPLY"
EXPLAIN_STATUS=$(curl -s -o "$EXPLAIN_REPLY" -w '%{http_code}' \
    -X POST "http://127.0.0.1:$ROUTER_PORT/query" \
    -d '{"dataset":"sales","query":"[p=up][p=flat][p=down]","k":3,"explain":true}')
[ "$EXPLAIN_STATUS" = "200" ] || {
    echo "observability smoke: explain query returned $EXPLAIN_STATUS"
    cat "$EXPLAIN_REPLY"; exit 1;
}
grep -q '"trace_id":"' "$EXPLAIN_REPLY" || {
    echo "observability smoke: explain reply carried no trace"
    cat "$EXPLAIN_REPLY"; exit 1;
}
for needle in '"name":"request"' '"name":"shard_fanout"' '"name":"merge"'; do
    grep -q "$needle" "$EXPLAIN_REPLY" || {
        echo "observability smoke: explain trace missing $needle"
        cat "$EXPLAIN_REPLY"; exit 1;
    }
done
# A span for every shard: 2 remote_rpc slots, each stitching the shard
# server's shard_request reply tree (which adds its own shard_compute),
# plus the router's 2 local shard_compute spans — >= 4 computes total.
rpc_count=$(grep -o '"name":"remote_rpc"' "$EXPLAIN_REPLY" | wc -l)
echo_count=$(grep -o '"name":"shard_request"' "$EXPLAIN_REPLY" | wc -l)
compute_count=$(grep -o '"name":"shard_compute"' "$EXPLAIN_REPLY" | wc -l)
if [ "$rpc_count" -ne 2 ] || [ "$echo_count" -ne 2 ] || [ "$compute_count" -lt 4 ]; then
    echo "observability smoke: span tree does not cover every shard" \
         "(remote_rpc=$rpc_count shard_request=$echo_count shard_compute=$compute_count)"
    cat "$EXPLAIN_REPLY"; exit 1;
fi

# The router's /metrics exposition parses: non-empty, the known series
# are present, and the stage histograms actually saw samples.
ROUTER_METRICS=$(curl -sf "http://127.0.0.1:$ROUTER_PORT/metrics")
[ -n "$ROUTER_METRICS" ] || { echo "observability smoke: empty /metrics"; exit 1; }
for series in 'shapesearch_queries_total ' \
              'shapesearch_cache_lookups_total ' \
              '# TYPE shapesearch_request_duration_micros histogram'; do
    echo "$ROUTER_METRICS" | grep -q "$series" || {
        echo "observability smoke: /metrics missing $series"
        echo "$ROUTER_METRICS"; exit 1;
    }
done
echo "$ROUTER_METRICS" | grep -Eq 'shapesearch_request_duration_micros_count [1-9]' || {
    echo "observability smoke: request histogram saw no samples"
    echo "$ROUTER_METRICS"; exit 1;
}
for stage in parse_plan cache_lookup shard_compute remote_rpc merge serialize; do
    echo "$ROUTER_METRICS" | \
        grep -Eq "shapesearch_stage_duration_micros_count\{stage=\"$stage\"\} [1-9]" || {
        echo "observability smoke: stage histogram \"$stage\" saw no samples"
        echo "$ROUTER_METRICS"; exit 1;
    }
done
echo "smoke: observability OK (stitched explain trace + parsing /metrics)"

echo "==> chaos smoke (replica failover, then opt-in partial results)"
# The replication tier end to end: shard 1 of 2 lives behind a
# TWO-replica list while shard 0 stays local. Killing one replica must
# leave batch results byte-identical to a single-process run (failover,
# not degradation); killing both must 502 a plain query but turn a
# "partial":true query into a 200 with a degraded block — and that
# degraded response must never be cached.
set -- $(start_serve --workers 4 --shard-of 1/2 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
REPLICA_A_PID=$1 REPLICA_A_PORT=$2
CI_PIDS="$CI_PIDS $REPLICA_A_PID"
set -- $(start_serve --workers 4 --shard-of 1/2 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
REPLICA_B_PID=$1 REPLICA_B_PORT=$2
CI_PIDS="$CI_PIDS $REPLICA_B_PID"
set -- $(start_serve --workers 4 --shards 2 \
    --shard-endpoint local \
    --shard-endpoint "127.0.0.1:$REPLICA_A_PORT|127.0.0.1:$REPLICA_B_PORT" \
    --shard-connect-timeout-ms 1000 --shard-io-timeout-ms 2000 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
CHAOS_ROUTER_PID=$1 CHAOS_ROUTER_PORT=$2
CI_PIDS="$CI_PIDS $CHAOS_ROUTER_PID"
# The byte-identity reference: a fresh single-process server with the
# same shard count (cold for every query below).
set -- $(start_serve --workers 4 --shards 2 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
CHAOS_REF_PID=$1 CHAOS_REF_PORT=$2
CI_PIDS="$CI_PIDS $CHAOS_REF_PID"

chaos_diff() { # BODY LABEL — router batch reply must equal reference's
    body=$1; label=$2
    r="/tmp/ci_chaos_router_$$_$label.json"
    s="/tmp/ci_chaos_ref_$$_$label.json"
    CI_TMP="$CI_TMP $r $s $r.raw $s.raw"
    for target in "router 127.0.0.1:$CHAOS_ROUTER_PORT $r" \
                  "reference 127.0.0.1:$CHAOS_REF_PORT $s"; do
        set -- $target
        status=$(curl -s -o "$3.raw" -w '%{http_code}' \
            -X POST "http://$2/query" -d "$body")
        [ "$status" = "200" ] || {
            echo "chaos smoke [$label]: $1 batch returned $status"
            cat "$3.raw"; return 1;
        }
        sed 's/"micros":[0-9]*,//' "$3.raw" > "$3"
    done
    cmp "$r" "$s" || {
        echo "chaos smoke [$label]: router and reference replies diverged"
        echo "--- router:"; cat "$r"
        echo "--- reference:"; cat "$s"
        return 1
    }
    grep -q '"key":' "$r" || {
        echo "chaos smoke [$label]: reply carried no results"
        cat "$r"; return 1;
    }
}

# Both replicas healthy: the batch goes over the wire and matches.
chaos_diff '[
  {"dataset":"sales","query":"[p=up][p=down]","k":5},
  {"dataset":"sales","query":"[p=down][p=up]","k":4}
]' both_alive

# Kill replica A mid-batch-sequence; the router's pooled connection to
# it is now dead and the next (fresh, uncached) batch must fail over to
# replica B — still byte-identical, never a partial answer.
kill "$REPLICA_A_PID"
for _ in $(seq 1 50); do
    kill -0 "$REPLICA_A_PID" 2>/dev/null || break
    sleep 0.1
done
chaos_diff '[
  {"dataset":"sales","query":"[p=up][p=flat][p=down]","k":5},
  {"dataset":"sales","query":"[p=up]","k":3}
]' one_dead
# The failover left a trail: healthz names replica A with errors.
CHAOS_HEALTH=$(curl -sf "http://127.0.0.1:$CHAOS_ROUTER_PORT/healthz")
echo "$CHAOS_HEALTH" | grep -q "\"endpoint\":\"127.0.0.1:$REPLICA_A_PORT\"" || {
    echo "chaos smoke: healthz lost track of the killed replica"
    echo "$CHAOS_HEALTH"; exit 1;
}

# Kill replica B too: shard 1 has no replicas left. A plain query is a
# structured 502 naming BOTH attempted replicas…
kill "$REPLICA_B_PID"
for _ in $(seq 1 50); do
    kill -0 "$REPLICA_B_PID" 2>/dev/null || break
    sleep 0.1
done
DEAD_REPLY="/tmp/ci_chaos_dead_$$.json"
CI_TMP="$CI_TMP $DEAD_REPLY"
DEAD_STATUS=$(curl -s -o "$DEAD_REPLY" -w '%{http_code}' \
    -X POST "http://127.0.0.1:$CHAOS_ROUTER_PORT/query" \
    -d '{"dataset":"sales","query":"[p=down]","k":2}')
[ "$DEAD_STATUS" = "502" ] || {
    echo "chaos smoke: total replica loss should 502 a plain query, got $DEAD_STATUS"
    cat "$DEAD_REPLY"; exit 1;
}
grep -q '"code":"shard_unavailable"' "$DEAD_REPLY" || {
    echo "chaos smoke: 502 is not a structured shard_unavailable"
    cat "$DEAD_REPLY"; exit 1;
}
for port in "$REPLICA_A_PORT" "$REPLICA_B_PORT"; do
    grep -q "127.0.0.1:$port" "$DEAD_REPLY" || {
        echo "chaos smoke: shard_unavailable must name every attempted replica"
        cat "$DEAD_REPLY"; exit 1;
    }
done

# …while the SAME query with "partial":true is a 200 whose degraded
# block names the missing shard, computed from the shards still alive.
PARTIAL_REPLY="/tmp/ci_chaos_partial_$$.json"
CI_TMP="$CI_TMP $PARTIAL_REPLY"
for pass in first second; do
    PARTIAL_STATUS=$(curl -s -o "$PARTIAL_REPLY" -w '%{http_code}' \
        -X POST "http://127.0.0.1:$CHAOS_ROUTER_PORT/query" \
        -d '{"dataset":"sales","query":"[p=down]","k":2,"partial":true}')
    [ "$PARTIAL_STATUS" = "200" ] || {
        echo "chaos smoke: partial:true should degrade to 200, got $PARTIAL_STATUS"
        cat "$PARTIAL_REPLY"; exit 1;
    }
    grep -q '"degraded":{"missing_shards":\[1\]' "$PARTIAL_REPLY" || {
        echo "chaos smoke: degraded block missing or not naming shard 1"
        cat "$PARTIAL_REPLY"; exit 1;
    }
    # Never cached: the second pass must be another cold degraded
    # computation, not a cache hit serving yesterday's partial answer.
    grep -q '"cached":false' "$PARTIAL_REPLY" || {
        echo "chaos smoke: degraded response must never be cached ($pass pass)"
        cat "$PARTIAL_REPLY"; exit 1;
    }
done
echo "smoke: chaos OK (failover byte-identical, partial degrades, never cached)"

echo "==> snapshot smoke (cold boot from columnar snapshot, byte diff vs CSV)"
# The on-disk snapshot tier end to end: build a snapshot from the CSV
# with the CLI, boot one server from the snapshot (lazy mmap shards
# behind a 1-slot resident LRU) and one from the CSV (eager EXTRACT),
# and their batch replies must be BYTE-IDENTICAL after stripping the
# envelope's wall-clock micros. Then a deliberately corrupted copy of
# the snapshot must be refused at registration with the structured
# snapshot_invalid error — never a panic, never garbage results.
SNAP_DIR=$(mktemp -d "/tmp/ci_snap_$$_XXXXXX")
CI_TMP="$CI_TMP $SNAP_DIR"
./target/release/shapesearch snapshot \
    --data examples/data/sales.csv --z product --x week --y sales \
    --out "$SNAP_DIR/sales.snap"
test -s "$SNAP_DIR/sales.snap" || { echo "snapshot smoke: no snapshot written"; exit 1; }

set -- $(start_serve --workers 4 --shards 2 --resident-shards 1 \
    --data-root "$SNAP_DIR" --snapshot "$SNAP_DIR/sales.snap" --name sales)
SNAP_PID=$1 SNAP_PORT=$2
CI_PIDS="$CI_PIDS $SNAP_PID"
set -- $(start_serve --workers 4 --shards 2 \
    --data examples/data/sales.csv --name sales \
    --z product --x week --y sales)
CSV_PID=$1 CSV_PORT=$2
CI_PIDS="$CI_PIDS $CSV_PID"

SNAP_REPLY="/tmp/ci_snap_reply_$$.json"
CSV_REPLY="/tmp/ci_csv_reply_$$.json"
CI_TMP="$CI_TMP $SNAP_REPLY $CSV_REPLY $SNAP_REPLY.raw $CSV_REPLY.raw"
SNAP_BODY='[
  {"dataset":"sales","query":"[p=up][p=down]","k":4},
  {"dataset":"sales","query":"[p=down][p=up]","k":3},
  {"dataset":"sales","query":"[p=up]","k":1}
]'
for target in "snapshot 127.0.0.1:$SNAP_PORT $SNAP_REPLY" \
              "csv 127.0.0.1:$CSV_PORT $CSV_REPLY"; do
    set -- $target
    status=$(curl -s -o "$3.raw" -w '%{http_code}' \
        -X POST "http://$2/query" -d "$SNAP_BODY")
    [ "$status" = "200" ] || {
        echo "snapshot smoke: $1 batch returned $status"
        cat "$3.raw"; exit 1;
    }
    sed 's/"micros":[0-9]*,//' "$3.raw" > "$3"
done
cmp "$SNAP_REPLY" "$CSV_REPLY" || {
    echo "snapshot smoke: snapshot-backed and CSV-backed replies diverged"
    echo "--- snapshot:"; cat "$SNAP_REPLY"
    echo "--- csv:"; cat "$CSV_REPLY"
    exit 1
}
grep -q '"key":' "$SNAP_REPLY" || {
    echo "snapshot smoke: reply carried no results"; cat "$SNAP_REPLY"; exit 1;
}
# The lazy path really ran: both shards were loaded on first touch and
# the 1-slot cap forced at least one eviction.
SNAP_HEALTH=$(curl -sf "http://127.0.0.1:$SNAP_PORT/healthz")
echo "$SNAP_HEALTH" | grep -Eq '"snapshots":\{"resident":[0-9]+,"capacity":1,"loads":[1-9]' || {
    echo "snapshot smoke: healthz shows no lazy shard loads"
    echo "$SNAP_HEALTH"; exit 1;
}
echo "$SNAP_HEALTH" | grep -Eq '"evictions":[1-9]' || {
    echo "snapshot smoke: 2 shards over a 1-slot cap evicted nothing"
    echo "$SNAP_HEALTH"; exit 1;
}

# A torn snapshot (one payload byte flipped) is a structured 400 at
# registration — the checksum refuses it before any data is served.
cp "$SNAP_DIR/sales.snap" "$SNAP_DIR/torn.snap"
printf '\377' | dd of="$SNAP_DIR/torn.snap" bs=1 seek=400 conv=notrunc 2>/dev/null
TORN_REPLY="/tmp/ci_snap_torn_$$.json"
CI_TMP="$CI_TMP $TORN_REPLY"
TORN_STATUS=$(curl -s -o "$TORN_REPLY" -w '%{http_code}' \
    -X POST "http://127.0.0.1:$SNAP_PORT/datasets" \
    -d "{\"name\":\"torn\",\"id\":\"torn\",\"snapshot\":\"$SNAP_DIR/torn.snap\"}")
[ "$TORN_STATUS" = "400" ] || {
    echo "snapshot smoke: corrupted snapshot should 400, got $TORN_STATUS"
    cat "$TORN_REPLY"; exit 1;
}
grep -q '"code":"snapshot_invalid"' "$TORN_REPLY" || {
    echo "snapshot smoke: refusal is not a structured snapshot_invalid"
    cat "$TORN_REPLY"; exit 1;
}
echo "smoke: snapshot OK (cold load == eager CSV byte for byte, torn file refused)"

echo "ci: all green"
