//! Offline stand-in for the `memmap2` crate.
//!
//! The build environment has no network access, so instead of the real
//! `memmap2` this workspace ships a minimal, std-only implementation of
//! the one API surface it uses: a **read-only, private** mapping of a
//! whole file that derefs to `&[u8]`.
//!
//! On unix the mapping is a real `mmap(2)` through a raw `extern "C"`
//! declaration (the same thin-syscall-shim spirit as the other
//! `crates/shims/*`: no libc crate, just the stable C ABI). Everywhere
//! else — and for zero-length files, which `mmap` rejects with `EINVAL`
//! — the "mapping" is the file read into an 8-byte-aligned buffer, so
//! callers that reinterpret aligned regions as `f64`/`u64` columns (the
//! snapshot loader) behave identically on both backings.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `MAP_FAILED` is `(void *)-1`, not null.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only memory map of a whole file (or, off-unix / for empty
/// files, an owned aligned copy of its bytes). Derefs to `&[u8]`.
pub struct Mmap {
    backing: Backing,
}

enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    /// File bytes copied into a `u64`-backed buffer: 8-byte aligned by
    /// construction, `len` is the real byte count (the last word may be
    /// padding).
    Owned { buf: Vec<u64>, len: usize },
}

impl Mmap {
    /// Maps `file` read-only, private.
    ///
    /// # Safety
    /// The real `memmap2` marks this unsafe because the mapping's
    /// contents can change (or the access can fault) if the underlying
    /// file is truncated or rewritten while mapped. The caller promises
    /// the file stays put for the mapping's lifetime.
    ///
    /// # Errors
    /// Propagates metadata/`mmap`/read failures from the OS.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned {
                    buf: Vec::new(),
                    len: 0,
                },
            });
        }
        Self::map_inner(file, len)
    }

    #[cfg(unix)]
    unsafe fn map_inner(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        );
        if ptr == sys::map_failed() || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            backing: Backing::Mapped { ptr, len },
        })
    }

    #[cfg(not(unix))]
    unsafe fn map_inner(file: &File, len: usize) -> io::Result<Mmap> {
        Self::read_aligned(file, len)
    }

    /// The fallback backing: the whole file copied into an 8-byte-aligned
    /// buffer.
    #[cfg_attr(unix, allow(dead_code))]
    fn read_aligned(mut file: &File, len: usize) -> io::Result<Mmap> {
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // Safe view of the buffer's bytes: u64 -> u8 reinterpretation is
        // always valid, and the buffer is exclusively owned here.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(bytes)?;
        Ok(Mmap {
            backing: Backing::Owned { buf, len },
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.cast::<u8>(), *len)
            },
            Backing::Owned { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len)
            },
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

// Safety: the mapping is read-only and private (never written through),
// so sharing references across threads cannot race; the raw pointer is
// owned by this struct and unmapped exactly once on drop.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // Nothing useful to do on failure during drop.
            unsafe {
                let _ = sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2_shim_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 13).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fallback_buffer_is_8_byte_aligned() {
        let path = temp_path("aligned");
        File::create(&path).unwrap().write_all(&[1u8; 24]).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::read_aligned(&file, 24).unwrap();
        assert_eq!(map.len(), 24);
        assert_eq!(map.as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
