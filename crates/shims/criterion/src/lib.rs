//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the benches link
//! against this std-only harness instead. It reproduces the API surface
//! the workspace uses — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — and reports median /
//! min / max wall-clock times per benchmark. No statistical analysis,
//! plots, or baseline comparison.
//!
//! When invoked with `--test` (as `cargo test` does for bench targets)
//! each benchmark body runs exactly once, so the suite doubles as a
//! smoke test.

use std::time::{Duration, Instant};

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            std::hint::black_box(body());
            return;
        }
        // Warm-up run, not recorded.
        std::hint::black_box(body());
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(body());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        let full = if self.name.is_empty() {
            label.to_string()
        } else {
            format!("{}/{}", self.name, label)
        };
        if self.test_mode {
            println!("bench {full}: ok (test mode)");
            return;
        }
        if samples.is_empty() {
            println!("bench {full}: no samples recorded");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "bench {full}: median {median:?} min {min:?} max {max:?} ({} samples)",
            samples.len()
        );
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.to_string();
        self.run_one(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = id.to_string();
        self.run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Re-export so `criterion::black_box` also resolves.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // Warm-up + up to sample_size recorded iterations.
        assert!(runs >= 2, "body ran {runs} times");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("demo");
        let mut seen = 0i64;
        group.bench_with_input(BenchmarkId::new("double", 21), &21i64, |b, &n| {
            b.iter(|| {
                seen = n * 2;
            });
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("algo", "weather").to_string(),
            "algo/weather"
        );
    }
}
