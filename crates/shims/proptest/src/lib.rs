//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! small deterministic property-testing harness with the same surface the
//! test suite uses: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, range and tuple and
//! `&str`-regex strategies, [`collection::vec`], [`strategy::Union`]
//! (behind `prop_oneof!`), and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports the case number and message
//!   only (runs are fully deterministic, so failures reproduce exactly);
//! * sampling is uniform rather than bias-toward-edge-cases.

pub mod test_runner {
    /// Deterministic xoshiro256++ generator driving all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)` by rejection.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// A single failing (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }

        pub fn reject(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// A whole-test failure: which case failed and why.
    #[derive(Debug)]
    pub struct TestError {
        pub case: u32,
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "property failed at case {} (seed is fixed; rerun reproduces): {}",
                self.case, self.message
            )
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            Self {
                config,
                // Fixed seed: deterministic, reproducible failures.
                rng: TestRng::seed_from_u64(0x5eed_cafe_f00d_0001),
            }
        }

        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                if let Err(e) = test(value) {
                    return Err(TestError {
                        case,
                        message: e.message,
                    });
                }
            }
            Ok(())
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: at each of `depth` levels the
        /// sampler picks between the base (this strategy) and one
        /// application of `recurse` to the shallower levels.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                level = Union::new(vec![base.clone(), recurse(level).boxed()]).boxed();
            }
            level
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// A `&str` is interpreted as a small regex subset describing strings:
    /// literals, `[a-z0-9_]`-style classes, and `{m}` / `{m,n}` / `?` /
    /// `*` / `+` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// Generates a string matching the small regex subset documented on
    /// the `&str` strategy impl.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a char class or a (possibly escaped) literal.
            let pool: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                    let pool = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    pool
                }
                '\\' => {
                    let c = chars
                        .get(i + 1)
                        .copied()
                        .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"));
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad quantifier"),
                            n.trim().parse::<usize>().expect("bad quantifier"),
                        ),
                        None => {
                            let m = body.trim().parse::<usize>().expect("bad quantifier");
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = if hi > lo {
                lo + rng.below((hi - lo + 1) as u64) as usize
            } else {
                lo
            };
            for _ in 0..count {
                out.push(pool[rng.below(pool.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(class: &[char]) -> Vec<char> {
        let mut pool = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                assert!(a <= b, "inverted class range");
                pool.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                pool.push(class[i]);
                i += 1;
            }
        }
        assert!(!pool.is_empty(), "empty character class");
        pool
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = outcome {
                panic!("{}", e);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_matches_shape() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()),
                "bad chars: {s:?}"
            );
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seed_from_u64(10);
        let strat = crate::collection::vec(0i64..5, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 12, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_plumbing_works(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b <= 198);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        fn always_fails(x in 0i64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failing_property_panics_with_case() {
        always_fails();
    }
}
