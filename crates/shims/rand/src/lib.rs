//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so instead of the real
//! `rand` this workspace ships a small, deterministic, std-only
//! implementation of exactly the API surface the codebase uses:
//!
//! * [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! * [`RngExt`] with `random`, `random_bool`, and `random_range`,
//! * [`seq::SliceRandom::shuffle`] and [`seq::IndexedRandom::choose`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high-quality,
//! fast, and fully reproducible across platforms, which is all the
//! workspace needs (synthetic data generation, CRF epoch shuffling, and
//! test corpora; nothing cryptographic).

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply would be overkill here; simple
/// rejection keeps the arithmetic obvious).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width integer range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// The value-producing extension trait (the seed code's name for the
/// `rand 0.9` `Rng` trait).
pub trait RngExt: RngCore {
    /// A uniform value of type `T` (`f64` in `[0, 1)`, full-width ints).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }

    /// A uniform value from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias so code written against the real crate's `Rng` also compiles.
pub use RngExt as Rng;

pub mod seq {
    use super::{uniform_below, RngCore};

    /// In-place shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        type Item;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_runs() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.5..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.random_range(2..=4);
            assert!((2..=4).contains(&i));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
