//! Offline stand-in for a readiness-polling crate.
//!
//! The build environment has no network access, so instead of `mio` or
//! `polling` this workspace ships a minimal, std-only readiness API over
//! raw `extern "C"` syscall declarations (the same thin-shim spirit as
//! `crates/shims/memmap2`): **epoll** on Linux, a **kqueue** fallback
//! behind `cfg` for the other unix targets, and a compile-time stub
//! elsewhere that reports [`std::io::ErrorKind::Unsupported`].
//!
//! The surface is exactly what an evented HTTP core needs and nothing
//! more:
//!
//! * [`Poller`] — register file descriptors with a `usize` token and an
//!   interest set, then [`Poller::wait`] for level-triggered readiness
//!   [`Event`]s.
//! * [`Waker`] — a nonblocking self-pipe whose read end is registered
//!   like any other fd; other threads call [`Waker::wake`] to make a
//!   blocked `wait` return.
//!
//! Error and hangup conditions (`EPOLLERR`/`EPOLLHUP`) are reported as
//! both readable *and* writable so callers discover them through their
//! next `read`/`write`, which is where the actual `io::Error` lives.

use std::io;
use std::time::Duration;

/// Raw file descriptor type (aliased so the non-unix stub compiles).
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Raw file descriptor type (aliased so the non-unix stub compiles).
#[cfg(not(unix))]
pub type RawFd = i32;

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd is readable (or in an error/hangup state).
    pub readable: bool,
    /// The fd is writable (or in an error/hangup state).
    pub writable: bool,
}

/// The interest set for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No interest: stay registered, report nothing but errors/hangups.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel ABI packs `epoll_event` on x86_64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An epoll instance (level-triggered).
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // Safety: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            // Safety: `ev` is a valid epoll_event for the call's duration.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels required a non-null event for DEL; passing
            // one is harmless everywhere.
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 0 < t < 1ms timeout does not busy-spin.
                Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                    .unwrap_or(i32::MAX),
            };
            // Safety: `raw` outlives the call and maxevents matches its len.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &raw[..n as usize] {
                let bits = ev.events;
                let fail = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    token: ev.data as usize,
                    readable: bits & EPOLLIN != 0 || fail,
                    writable: bits & EPOLLOUT != 0 || fail,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // Safety: epfd is owned by this struct and closed exactly once.
            unsafe {
                let _ = close(self.epfd);
            }
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

// ---------------------------------------------------------------------------
// Other unix: kqueue (best-effort fallback; the deployment target is Linux)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    #[repr(C)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut std::ffi::c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// A kqueue instance. Registrations install one kevent per filter;
    /// no-interest registrations simply install nothing (errors surface
    /// on the caller's next read/write instead).
    #[derive(Debug)]
    pub struct Poller {
        kq: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // Safety: plain syscall, no pointers.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { kq })
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16, token: usize) -> io::Result<()> {
            let ev = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut std::ffi::c_void,
            };
            // Safety: the changelist is valid for the call's duration.
            let rc = unsafe { kevent(self.kq, &ev, 1, std::ptr::null_mut(), 0, std::ptr::null()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn set(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            for (want, filter) in [
                (interest.readable, EVFILT_READ),
                (interest.writable, EVFILT_WRITE),
            ] {
                if want {
                    self.change(fd, filter, EV_ADD, token)?;
                } else {
                    // Removing a filter that is not installed is fine.
                    let _ = self.change(fd, filter, EV_DELETE, token);
                }
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.set(fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.set(fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut raw: [KEvent; 256] = unsafe { std::mem::zeroed() };
            let ts;
            let ts_ptr = match timeout {
                None => std::ptr::null(),
                Some(t) => {
                    ts = Timespec {
                        tv_sec: t.as_secs() as i64,
                        tv_nsec: i64::from(t.subsec_nanos()),
                    };
                    &ts as *const Timespec
                }
            };
            // Safety: `raw` outlives the call and nevents matches its len.
            let n = unsafe {
                kevent(
                    self.kq,
                    std::ptr::null(),
                    0,
                    raw.as_mut_ptr(),
                    raw.len() as i32,
                    ts_ptr,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &raw[..n as usize] {
                let fail = ev.flags & (EV_EOF | EV_ERROR) != 0;
                events.push(Event {
                    token: ev.udata as usize,
                    readable: ev.filter == EVFILT_READ || fail,
                    writable: ev.filter == EVFILT_WRITE || fail,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // Safety: kq is owned by this struct and closed exactly once.
            unsafe {
                let _ = close(self.kq);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Everything else: compile, report Unsupported at runtime
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: no readiness backend on this platform",
        )
    }

    /// Stub backend for non-unix targets.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }
        pub fn add(&self, _fd: RawFd, _token: usize, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(&self, _fd: RawFd, _token: usize, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&self, _events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

/// A level-triggered readiness poller over the platform backend.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a new poller instance.
    ///
    /// # Errors
    /// Propagates `epoll_create1`/`kqueue` failures; always fails on
    /// non-unix targets.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest set.
    ///
    /// # Errors
    /// Propagates registration failures from the OS.
    pub fn add(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Replaces the interest set of an already-registered `fd`.
    ///
    /// # Errors
    /// Propagates registration failures from the OS.
    pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Deregisters `fd`. Must be called before the fd is closed.
    ///
    /// # Errors
    /// Propagates deregistration failures from the OS.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `events` with the
    /// ready set. A signal interruption returns `Ok` with no events.
    ///
    /// # Errors
    /// Propagates `epoll_wait`/`kevent` failures from the OS.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }
}

// ---------------------------------------------------------------------------
// Waker: a nonblocking self-pipe
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod pipe {
    use super::RawFd;
    use std::io;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;

    pub fn create() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0i32; 2];
        // Safety: `fds` is a valid 2-slot buffer for the call's duration.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            // Safety: plain fcntl on an fd we own.
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(err);
            }
        }
        Ok((fds[0], fds[1]))
    }

    pub fn write_byte(fd: RawFd) -> io::Result<()> {
        let byte = 1u8;
        // Safety: one-byte buffer valid for the call's duration.
        let rc = unsafe { write(fd, &byte, 1) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // A full pipe means a wakeup is already pending: success.
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            // Safety: `buf` is valid for the call's duration.
            let rc = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if rc <= 0 {
                return;
            }
        }
    }

    pub fn close_fd(fd: RawFd) {
        // Safety: fd ownership is the caller's contract; nothing useful
        // to do on failure.
        unsafe {
            let _ = close(fd);
        }
    }
}

#[cfg(not(unix))]
mod pipe {
    use super::RawFd;
    use std::io;

    pub fn create() -> io::Result<(RawFd, RawFd)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: no self-pipe on this platform",
        ))
    }
    pub fn write_byte(_fd: RawFd) -> io::Result<()> {
        unreachable!("waker cannot be constructed on this platform")
    }
    pub fn drain(_fd: RawFd) {}
    pub fn close_fd(_fd: RawFd) {}
}

/// A cross-thread wakeup handle: a nonblocking self-pipe whose read end
/// the owner registers with its [`Poller`]. [`Waker::wake`] from any
/// thread makes a blocked [`Poller::wait`] return with an event for the
/// read end's token.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// Safety: both ends are plain fds written/read through thread-safe
// syscalls; the struct owns them and closes each exactly once on drop.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the self-pipe (both ends nonblocking).
    ///
    /// # Errors
    /// Propagates `pipe`/`fcntl` failures; always fails on non-unix.
    pub fn new() -> io::Result<Waker> {
        let (read_fd, write_fd) = pipe::create()?;
        Ok(Waker { read_fd, write_fd })
    }

    /// The read end, to register with a [`Poller`] under a reserved token.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Signals the owning poller. Idempotent while a wakeup is pending
    /// (a full pipe counts as success).
    ///
    /// # Errors
    /// Propagates unexpected `write` failures.
    pub fn wake(&self) -> io::Result<()> {
        pipe::write_byte(self.write_fd)
    }

    /// Consumes all pending wakeup bytes. The owner calls this when the
    /// waker token fires, before draining whatever queue the wakeup
    /// advertised.
    pub fn drain(&self) {
        pipe::drain(self.read_fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        pipe::close_fd(self.read_fd);
        pipe::close_fd(self.write_fd);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no wakeup yet");

        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesces
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained waker is quiet");
    }

    #[test]
    fn wake_from_another_thread_unblocks_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 1, Interest::READ).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 1);
        t.join().unwrap();
    }

    #[test]
    fn tcp_readability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(listener.as_raw_fd(), 10, Interest::READ)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();

        // Listener becomes readable when a connection is pending.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 10 && e.readable));

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(server_side.as_raw_fd(), 20, Interest::READ)
            .unwrap();

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 20 && e.readable));

        // Dropping read interest silences the (level-triggered) event.
        poller
            .modify(server_side.as_raw_fd(), 20, Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.token == 20 && e.readable),
            "interest NONE must silence pending data"
        );

        // Write interest on an idle socket fires immediately.
        poller
            .modify(server_side.as_raw_fd(), 20, Interest::WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 20 && e.writable));

        // Deregistered fds never fire again.
        poller.delete(server_side.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 20));

        let mut sink = [0u8; 8];
        let _ = (&server_side).read(&mut sink);
        drop(client);
    }
}
