//! Criterion version of the Figure 13 sweeps: runtime scaling in (a) points
//! per visualization, (b) ShapeSegments per query, and (c) collection size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shapesearch_bench::{engine, query, FIG13_ALGOS, SEED};
use shapesearch_datagen::table11::DatasetId;
use shapesearch_datastore::Trendline;
use std::hint::black_box;

const K: usize = 10;

fn fig13a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13a_points");
    group.sample_size(10);
    let full = shapesearch_bench::scaled(DatasetId::Worms.generate(SEED), 0.08);
    let q = query("[p=up][p=down][p=up][p=down]");
    for n in [100, 300, 600, 900] {
        let data: Vec<Trendline> = full
            .iter()
            .map(|t| Trendline {
                key: t.key.clone(),
                points: t.points.iter().take(n).copied().collect(),
            })
            .collect();
        for (kind, name) in FIG13_ALGOS {
            let eng = engine(data.clone(), kind);
            group.bench_with_input(BenchmarkId::new(name, n), &eng, |b, eng| {
                b.iter(|| black_box(eng.top_k(&q, K).expect("query")));
            });
        }
    }
    group.finish();
}

fn fig13b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13b_segments");
    group.sample_size(10);
    let data = shapesearch_bench::scaled(DatasetId::Weather.generate(SEED), 0.2);
    for k in [2usize, 4, 6] {
        let text: String = (0..k)
            .map(|i| if i % 2 == 0 { "[p=up]" } else { "[p=down]" })
            .collect();
        let q = query(&text);
        for (kind, name) in FIG13_ALGOS {
            let eng = engine(data.clone(), kind);
            group.bench_with_input(BenchmarkId::new(name, k), &eng, |b, eng| {
                b.iter(|| black_box(eng.top_k(&q, K).expect("query")));
            });
        }
    }
    group.finish();
}

fn fig13c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13c_visualizations");
    group.sample_size(10);
    let full = DatasetId::RealEstate.generate(SEED);
    let q = query("[p=up][p=down][p=up][p=down]");
    for n in [100usize, 400, 1000] {
        let data: Vec<Trendline> = full.iter().take(n).cloned().collect();
        for (kind, name) in FIG13_ALGOS {
            if name == "DP" && n > 400 {
                continue; // quadratic baseline; full sweep in `figures`
            }
            let eng = engine(data.clone(), kind);
            group.bench_with_input(BenchmarkId::new(name, n), &eng, |b, eng| {
                b.iter(|| black_box(eng.top_k(&q, K).expect("query")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig13a, fig13b, fig13c);
criterion_main!(benches);
