//! Criterion version of Figure 10: per-dataset, per-algorithm query
//! runtimes on the Table-11 fuzzy queries. Collections are subsampled
//! (`SCALE`) to keep Criterion's repeated sampling tractable; the `figures`
//! binary runs the full-scale version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shapesearch_bench::{engine, query, FIG10_ALGOS, SEED};
use shapesearch_datagen::table11::DatasetId;
use std::hint::black_box;

const SCALE: f64 = 0.12;
const K: usize = 10;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for id in DatasetId::ALL {
        let data = shapesearch_bench::scaled(id.generate(SEED), SCALE);
        let q = query(id.fuzzy_queries()[0]);
        for (kind, name) in FIG10_ALGOS {
            // DP on the long datasets is quadratic; trim its budget further.
            let dataset_len = data.first().map_or(0, |t| t.points.len());
            if name == "DP" && dataset_len > 1000 {
                continue; // covered by the figures binary
            }
            let eng = engine(data.clone(), kind);
            group.bench_with_input(BenchmarkId::new(name, id.name()), &eng, |b, eng| {
                b.iter(|| black_box(eng.top_k(&q, K).expect("query")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
