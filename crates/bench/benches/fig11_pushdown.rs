//! Criterion version of Figure 11: non-fuzzy query runtime with and without
//! the §5.4 push-down optimizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shapesearch_bench::{query, SEED};
use shapesearch_core::{EngineOptions, SegmenterKind, ShapeEngine};
use shapesearch_datagen::table11::DatasetId;
use std::hint::black_box;

const SCALE: f64 = 0.2;
const K: usize = 10;

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for id in DatasetId::ALL {
        let data = shapesearch_bench::scaled(id.generate(SEED), SCALE);
        let q = query(id.non_fuzzy_query());
        for (pushdown, label) in [(false, "no-pushdown"), (true, "pushdown")] {
            let eng = ShapeEngine::from_trendlines(data.clone()).with_options(EngineOptions {
                segmenter: SegmenterKind::SegmentTree,
                pushdown,
                ..EngineOptions::default()
            });
            group.bench_with_input(BenchmarkId::new(label, id.name()), &eng, |b, eng| {
                b.iter(|| black_box(eng.top_k(&q, K).expect("query")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
