//! Micro-benchmarks of the scoring substrate: Table-5 pattern scorers,
//! summarized-statistics merging (Theorem 5.1), per-visualization
//! segmentation (DP vs SegmentTree vs Greedy), and the DTW baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shapesearch_core::algo::dp::DpSegmenter;
use shapesearch_core::algo::greedy::GreedySegmenter;
use shapesearch_core::algo::segment_tree::SegmentTreeSegmenter;
use shapesearch_core::chain::expand_chains;
use shapesearch_core::{
    Evaluator, ScoreParams, Segmenter, ShapeQuery, StatsIndex, SummaryStats, UdpRegistry, VizData,
};
use shapesearch_datastore::Trendline;
use shapesearch_similarity::{dtw, znormalize};
use std::hint::black_box;

fn make_viz(n: usize) -> VizData {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let t = i as f64;
            (t, (t * 0.05).sin() * 3.0 + (t * 0.013).cos())
        })
        .collect();
    VizData::from_trendline(&Trendline::from_pairs("bench", &pairs), 0, 1).expect("viz")
}

fn scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring");
    group.bench_function("score_up", |b| {
        b.iter(|| black_box(shapesearch_core::score::score_up(black_box(1.37))));
    });
    group.bench_function("score_theta", |b| {
        b.iter(|| black_box(shapesearch_core::score::score_theta(black_box(1.37), 45.0)));
    });
    let a = SummaryStats::from_points(&[(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)]);
    let bb = SummaryStats::from_points(&[(3.0, 2.5), (4.0, 3.0)]);
    group.bench_function("stats_merge_slope", |b| {
        b.iter(|| black_box(a.merge(&bb).slope()));
    });
    let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x * 0.01).sin()).collect();
    group.bench_function("stats_index_build_1000", |b| {
        b.iter(|| black_box(StatsIndex::new(&xs, &ys)));
    });
    group.finish();
}

fn segmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmentation_per_viz");
    group.sample_size(20);
    let params = ScoreParams::default();
    let udps = UdpRegistry::new();
    let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]);
    let chains = expand_chains(&q);
    for n in [100usize, 400, 900] {
        let viz = make_viz(n);
        let ev = Evaluator::new(&viz, &params, &udps);
        group.bench_with_input(BenchmarkId::new("dp", n), &ev, |b, ev| {
            b.iter(|| black_box(DpSegmenter.match_viz(ev, &chains)));
        });
        group.bench_with_input(BenchmarkId::new("segment_tree", n), &ev, |b, ev| {
            b.iter(|| black_box(SegmentTreeSegmenter::default().match_viz(ev, &chains)));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &ev, |b, ev| {
            b.iter(|| black_box(GreedySegmenter::new().match_viz(ev, &chains)));
        });
    }
    group.finish();
}

fn dtw_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    for n in [100usize, 400] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let bseries: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11 + 0.4).sin()).collect();
        let (za, zb) = (znormalize(&a), znormalize(&bseries));
        group.bench_with_input(BenchmarkId::new("unbanded", n), &n, |b, _| {
            b.iter(|| black_box(dtw(&za, &zb)));
        });
    }
    group.finish();
}

criterion_group!(benches, scoring, segmentation, dtw_bench);
criterion_main!(benches);
