//! `perf_report`: the engine performance trajectory benchmark.
//!
//! Runs a fixed, seeded workload matrix — needle-in-a-haystack and
//! common-pattern queries × {1, 4} engine shards × §6.3 pruning
//! {default-on, off} — asserts the pruned results are byte-identical to
//! the unpruned ones, and writes `BENCH_engine.json` into the current
//! directory (the repo root when run through `ci.sh`). This file is the
//! start of the perf trajectory: each CI run uploads it as an artifact,
//! so regressions have a recorded baseline to be compared against.
//!
//! ```sh
//! cargo run -p shapesearch-bench --bin perf_report --release [-- --check]
//! ```
//!
//! With `--check` the run additionally gates: pruning-on must never be
//! slower than `SHAPESEARCH_BENCH_REGRESSION_FACTOR` (default 1.25 — the real overhead is ~1 %, but shared-runner wall-clock noise makes a tighter gate flaky)
//! times pruning-off on any workload, and the needle workload must show
//! at least `SHAPESEARCH_BENCH_MIN_NEEDLE_SPEEDUP` (default 2.0) — the
//! paper's headline §6.3 effect.

use shapesearch_core::score::score_up;
use shapesearch_core::{
    group_collection, EngineOptions, PruningMode, PruningSnapshot, ShapeQuery, ShardedEngine,
    SharedThresholds, StatsIndex,
};
use shapesearch_datastore::Trendline;
use shapesearch_parser::parse_regex;
use std::time::Instant;

/// Deterministic dataset seed (shared with the figure benches).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
/// Collection size: above the engine's default auto-parallel threshold,
/// so the measured path is the true default configuration.
const TRENDLINES: usize = 1228;
/// Points per trendline.
const POINTS: usize = 48;
/// Result count per query.
const K: usize = 5;
/// Timing repetitions (best-of).
const REPS: usize = 5;

/// A splitmix-ish LCG in [-1, 1).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
    }
}

/// Needle-in-a-haystack: ~1 % clean peaks buried in strictly falling
/// distractors (mild deterministic curvature, no up-blips — exactly the
/// shape §6.3 prunes hardest).
fn needle_collection() -> Vec<Trendline> {
    let mut rng = Lcg(SEED);
    (0..TRENDLINES)
        .map(|i| {
            if i % 100 == 37 {
                let pairs: Vec<(f64, f64)> = (0..POINTS)
                    .map(|t| {
                        let t = t as f64;
                        let mid = POINTS as f64 / 2.0;
                        (t, if t < mid { t } else { 2.0 * mid - t })
                    })
                    .collect();
                Trendline::from_pairs(format!("needle{i}"), &pairs)
            } else {
                let steep = 0.5 + rng.next().abs();
                let pairs: Vec<(f64, f64)> = (0..POINTS)
                    .map(|t| {
                        let t = t as f64;
                        (t, -steep * t - 0.002 * t * t)
                    })
                    .collect();
                Trendline::from_pairs(format!("fall{i}"), &pairs)
            }
        })
        .collect()
}

/// Common-pattern workload: random walks where up-then-down matches
/// almost everything moderately well — bounds stay above the threshold,
/// so this measures pure pruning overhead.
fn common_collection() -> Vec<Trendline> {
    let mut rng = Lcg(SEED ^ 0x5bf0_3635);
    (0..TRENDLINES)
        .map(|i| {
            let mut y = 0.0;
            let pairs: Vec<(f64, f64)> = (0..POINTS)
                .map(|t| {
                    y += rng.next();
                    (t as f64, y)
                })
                .collect();
            Trendline::from_pairs(format!("walk{i}"), &pairs)
        })
        .collect()
}

struct Measured {
    micros: u64,
    results: String,
    pruning: PruningSnapshot,
}

/// Best-of-`REPS` wall clock of one configuration, with the counters of
/// the final rep and a canonical rendering of its results.
fn measure(
    trendlines: &[Trendline],
    shards: usize,
    mode: PruningMode,
    query: &ShapeQuery,
) -> Measured {
    let options = EngineOptions {
        pruning_mode: mode,
        ..EngineOptions::default()
    };
    let engine = ShardedEngine::from_trendlines(trendlines.to_vec(), shards).with_options(options);
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let shared = SharedThresholds::new(1);
        let started = Instant::now();
        let results = engine
            .top_k_batch_shared(&[(query, K)], engine.options(), &shared)
            .pop()
            .expect("one outcome")
            .expect("query runs");
        best = best.min(started.elapsed().as_micros() as u64);
        last = Some((results, shared.snapshot()));
    }
    let (results, pruning) = last.expect("REPS > 0");
    let rendered: Vec<String> = results
        .iter()
        .map(|r| format!("{}:{}:{:?}:{:?}", r.key, r.viz_index, r.score, r.ranges))
        .collect();
    Measured {
        micros: best,
        results: rendered.join(";"),
        pruning,
    }
}

struct ConfigReport {
    shards: usize,
    on_micros: u64,
    off_micros: u64,
    speedup: f64,
    pruning: PruningSnapshot,
}

struct WorkloadReport {
    name: &'static str,
    query: &'static str,
    configs: Vec<ConfigReport>,
}

fn run_workload(
    name: &'static str,
    query_text: &'static str,
    data: &[Trendline],
) -> WorkloadReport {
    let query = parse_regex(query_text).expect("static query parses");
    let configs = [1usize, 4]
        .iter()
        .map(|&shards| {
            let on = measure(data, shards, PruningMode::Auto, &query);
            let off = measure(data, shards, PruningMode::Off, &query);
            assert_eq!(
                on.results, off.results,
                "{name} shards={shards}: pruning changed the answer"
            );
            eprintln!(
                "{name:>7} shards={shards}: pruned={:>8}µs unpruned={:>8}µs speedup={:.2}x \
                 (bounded={} pruned={} scored={} bound_micros={})",
                on.micros,
                off.micros,
                off.micros as f64 / on.micros as f64,
                on.pruning.bounded,
                on.pruning.pruned,
                on.pruning.scored,
                on.pruning.bound_micros,
            );
            ConfigReport {
                shards,
                on_micros: on.micros,
                off_micros: off.micros,
                speedup: off.micros as f64 / on.micros as f64,
                pruning: on.pruning,
            }
        })
        .collect();
    WorkloadReport {
        name,
        query: query_text,
        configs,
    }
}

/// Raw scoring-kernel throughput: every start-anchored candidate window
/// of every GROUPed visualization gets an interval regression slope plus
/// a pattern score, once through the columnar [`shapesearch_core::ColumnarArena`]
/// batch kernel and once through the retained scalar [`StatsIndex`]
/// reference. Both paths must agree bit for bit (asserted here, every
/// run); the ratio is the tentpole's microscopic win, gated by `--check`
/// independently of engine wall clock.
struct KernelReport {
    windows: u64,
    columnar_points_per_sec: f64,
    scalar_points_per_sec: f64,
    ratio: f64,
}

/// Timing passes per rep: enough windows per measurement that the
/// sub-millisecond kernel outruns timer granularity.
const KERNEL_PASSES: usize = 8;

fn run_kernel(data: &[Trendline]) -> KernelReport {
    let grouped = group_collection(data, 1);
    let vizzes: Vec<_> = grouped.iter().flatten().collect();
    let scalar_indexes: Vec<StatsIndex> = vizzes
        .iter()
        .map(|v| StatsIndex::new(v.xs(), v.ys()))
        .collect();
    let windows_per_pass: u64 = vizzes.iter().map(|v| (v.n() - 1) as u64).sum();

    // Equivalence first (outside timing): the batch kernel must
    // reproduce the scalar reference exactly, NaNs and degenerate
    // denominators included.
    let mut out = Vec::new();
    for (v, idx) in vizzes.iter().zip(&scalar_indexes) {
        v.arena().window_slopes(v.slot(), 0, 1, v.n() - 1, &mut out);
        for (off, &slope) in out.iter().enumerate() {
            let want = idx.slope(0, 1 + off);
            assert_eq!(
                slope.to_bits(),
                want.to_bits(),
                "columnar kernel diverged from the scalar reference"
            );
        }
    }

    let mut best_columnar = u64::MAX;
    let mut best_scalar = u64::MAX;
    let mut sink = 0.0f64;
    for _ in 0..REPS {
        let started = Instant::now();
        for _ in 0..KERNEL_PASSES {
            for v in &vizzes {
                v.arena().window_slopes(v.slot(), 0, 1, v.n() - 1, &mut out);
                for &slope in &out {
                    sink += score_up(slope);
                }
            }
        }
        best_columnar = best_columnar.min(started.elapsed().as_micros() as u64);

        let started = Instant::now();
        for _ in 0..KERNEL_PASSES {
            for (v, idx) in vizzes.iter().zip(&scalar_indexes) {
                for j in 1..v.n() {
                    sink += score_up(idx.slope(0, j));
                }
            }
        }
        best_scalar = best_scalar.min(started.elapsed().as_micros() as u64);
    }
    std::hint::black_box(sink);

    let windows = windows_per_pass * KERNEL_PASSES as u64;
    let pps = |micros: u64| windows as f64 / (micros.max(1) as f64 / 1e6);
    let report = KernelReport {
        windows,
        columnar_points_per_sec: pps(best_columnar),
        scalar_points_per_sec: pps(best_scalar),
        ratio: best_scalar as f64 / best_columnar.max(1) as f64,
    };
    eprintln!(
        " kernel: columnar={:.1}M windows/s scalar={:.1}M windows/s ratio={:.2}x ({} windows/pass)",
        report.columnar_points_per_sec / 1e6,
        report.scalar_points_per_sec / 1e6,
        report.ratio,
        windows_per_pass,
    );
    report
}

/// Cold-load trajectory: time-to-first-answer from an on-disk columnar
/// snapshot (mmap open + validation + one-partition seed + first query)
/// against the eager boot path (parse the CSV + EXTRACT + GROUP + first
/// query) — what a `serve --snapshot` registration saves over
/// re-extracting at boot. Both paths must answer bit-for-bit
/// identically (asserted every run); `ratio` is eager/cold, so >1 means
/// the snapshot is faster to first answer.
struct ColdLoadReport {
    eager_micros: u64,
    cold_micros: u64,
    ratio: f64,
    snapshot_bytes: usize,
}

fn run_cold_load(data: &[Trendline]) -> ColdLoadReport {
    use shapesearch_core::{snapshot, ShapeEngine};
    use std::sync::Arc;

    let query = parse_regex("[p=up][p=down]").expect("static query parses");
    let path = std::env::temp_dir().join(format!("shapesearch-bench-{}.snap", std::process::id()));
    let stats = snapshot::write(&path, data, 1).expect("write snapshot");

    // The eager baseline is a real boot: parse the CSV, EXTRACT, GROUP,
    // answer. (The snapshot build did the first three once, offline.)
    // Rust float formatting round-trips, so the parsed collection is
    // bit-identical to `data`.
    let mut csv = String::from("z,x,y\n");
    for t in data {
        for p in &t.points {
            csv.push_str(&format!("{},{},{}\n", t.key, p.x, p.y));
        }
    }
    let spec = shapesearch_datastore::VisualSpec::new("z", "x", "y");

    let options = EngineOptions::default();
    let render = |results: &[shapesearch_core::TopKResult]| {
        let rendered: Vec<String> = results
            .iter()
            .map(|r| format!("{}:{}:{:?}:{:?}", r.key, r.viz_index, r.score, r.ranges))
            .collect();
        rendered.join(";")
    };
    let first_answer = |engine: &ShardedEngine| {
        engine
            .top_k_batch_shared(&[(&query, K)], &options, &SharedThresholds::new(1))
            .pop()
            .expect("one outcome")
            .expect("query runs")
    };

    let mut best_eager = u64::MAX;
    let mut best_cold = u64::MAX;
    for _ in 0..REPS {
        let started = Instant::now();
        let table = shapesearch_datastore::csv::read_str(&csv).expect("csv parses");
        let trendlines = shapesearch_datastore::extract(
            &table,
            &spec,
            &shapesearch_datastore::ExtractOptions::default(),
        )
        .expect("extract runs");
        let engine = ShardedEngine::from_trendlines(trendlines, 1).with_options(options.clone());
        engine.warm();
        let results = first_answer(&engine);
        best_eager = best_eager.min(started.elapsed().as_micros() as u64);
        let eager_results = render(&results);

        let started = Instant::now();
        let snap = snapshot::Snapshot::open(&path).expect("open snapshot");
        let part = snap.partition(0, snap.trendline_count());
        let shard = ShapeEngine::from_trendlines(part.trendlines);
        shard.seed_grouped(snap.bin_width(), part.grouped);
        let engine =
            ShardedEngine::from_shard_engines(vec![Arc::new(shard)]).with_options(options.clone());
        let results = first_answer(&engine);
        best_cold = best_cold.min(started.elapsed().as_micros() as u64);
        let cold_results = render(&results);

        assert_eq!(
            eager_results, cold_results,
            "snapshot cold load changed the answer"
        );
    }
    std::fs::remove_file(&path).ok();

    let report = ColdLoadReport {
        eager_micros: best_eager,
        cold_micros: best_cold,
        ratio: best_eager as f64 / best_cold.max(1) as f64,
        snapshot_bytes: stats.bytes,
    };
    eprintln!(
        "cold_load: eager={:>8}µs snapshot={:>8}µs ratio={:.2}x ({} snapshot bytes)",
        report.eager_micros, report.cold_micros, report.ratio, report.snapshot_bytes,
    );
    report
}

/// Idle-connection scaling trajectory: time-to-answer of the standard
/// batch query over HTTP against a 2-event-thread server, quiet (0 idle
/// peers) vs crowded (`SHAPESEARCH_BENCH_IDLE_CONNS` idle keep-alive
/// connections parked on the same listener, default 1000). `penalty` is
/// crowded/quiet; the evented core's claim is that parked connections
/// cost readiness-table slots, not threads, so the gate
/// (`SHAPESEARCH_BENCH_MAX_IDLE_CONN_PENALTY`, default 3.0) bounds how
/// much a crowd may slow a live query.
struct ConnectionsReport {
    idle_peers: usize,
    quiet_micros: u64,
    crowded_micros: u64,
    penalty: f64,
}

fn run_connections(data: &[Trendline]) -> ConnectionsReport {
    use shapesearch_server::{json, Client, ServerConfig};
    use std::net::TcpStream;

    let mut csv = String::from("z,x,y\n");
    for t in data {
        for p in &t.points {
            csv.push_str(&format!("{},{},{}\n", t.key, p.x, p.y));
        }
    }
    let service = shapesearch_server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            event_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let client = Client::new(service.addr());
    let batch = json::parse(
        r#"[{"dataset":"conn","query":"[p=up][p=down]","k":5},
            {"dataset":"conn","query":"[p=down][p=up]","k":5}]"#,
    )
    .expect("static batch parses");

    // Each phase re-registers the dataset first: the generation bump
    // clears the query cache, so neither phase inherits the other's
    // warm answers and the two measurements do identical work.
    let measure = |label: &str| -> u64 {
        let reply = client
            .post(
                "/datasets",
                &json::Json::Obj(vec![
                    ("name".into(), "conn".into()),
                    ("id".into(), "conn".into()),
                    ("csv".into(), csv.clone().into()),
                    ("z".into(), "z".into()),
                    ("x".into(), "x".into()),
                    ("y".into(), "y".into()),
                ]),
            )
            .expect("register");
        assert_eq!(
            reply.status,
            201,
            "{label} register: {}",
            reply.body.to_text()
        );
        let mut best = u64::MAX;
        for _ in 0..REPS {
            let started = Instant::now();
            client
                .post("/query", &batch)
                .expect("batch query")
                .expect_ok(label);
            best = best.min(started.elapsed().as_micros() as u64);
        }
        best
    };

    let quiet = measure("quiet");

    let want_idle: usize = std::env::var("SHAPESEARCH_BENCH_IDLE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let mut held: Vec<TcpStream> = Vec::with_capacity(want_idle);
    for i in 0..want_idle {
        match TcpStream::connect(service.addr()) {
            Ok(s) => held.push(s),
            Err(e) => {
                eprintln!(
                    "connections: connect #{i} failed ({e}); measuring against {} idle peers",
                    held.len()
                );
                break;
            }
        }
    }
    let crowd = held.len();
    let crowded = measure("crowded");
    drop(held);

    let report = ConnectionsReport {
        idle_peers: crowd,
        quiet_micros: quiet,
        crowded_micros: crowded,
        penalty: crowded as f64 / quiet.max(1) as f64,
    };
    eprintln!(
        "connections: quiet={:>8}µs crowded={:>8}µs penalty={:.2}x ({} idle keep-alive peers)",
        report.quiet_micros, report.crowded_micros, report.penalty, report.idle_peers,
    );
    service.shutdown();
    report
}

/// The git revision this report was produced from: baked in at compile
/// time when CI exports `SHAPESEARCH_GIT_REV`, otherwise asked of the
/// working tree at run time (numbers without provenance are unanswerable
/// questions later).
fn git_rev() -> String {
    if let Some(rev) = option_env!("SHAPESEARCH_GIT_REV") {
        return rev.to_owned();
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn render_json(
    workloads: &[WorkloadReport],
    kernel: &KernelReport,
    cold: &ColdLoadReport,
    conn: &ConnectionsReport,
) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_pruning\",\n");
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"trendlines\": {TRENDLINES},\n"));
    out.push_str(&format!("  \"points\": {POINTS},\n"));
    out.push_str(&format!("  \"k\": {K},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        out.push_str(&format!("      \"query\": \"{}\",\n", w.query));
        out.push_str("      \"configs\": [\n");
        for (ci, c) in w.configs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"shards\": {}, \"pruning_on_micros\": {}, \
                 \"pruning_off_micros\": {}, \"speedup\": {:.3}, \
                 \"pruning\": {{\"bounded\": {}, \"pruned\": {}, \"scored\": {}, \
                 \"bound_micros\": {}}}}}{}\n",
                c.shards,
                c.on_micros,
                c.off_micros,
                c.speedup,
                c.pruning.bounded,
                c.pruning.pruned,
                c.pruning.scored,
                c.pruning.bound_micros,
                if ci + 1 == w.configs.len() { "" } else { "," },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if wi + 1 == workloads.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kernel\": {\n");
    out.push_str(&format!("    \"windows\": {},\n", kernel.windows));
    out.push_str("    \"configs\": [\n");
    out.push_str(&format!(
        "      {{\"name\": \"columnar\", \"points_per_sec\": {:.0}}},\n",
        kernel.columnar_points_per_sec
    ));
    out.push_str(&format!(
        "      {{\"name\": \"scalar\", \"points_per_sec\": {:.0}}}\n",
        kernel.scalar_points_per_sec
    ));
    out.push_str("    ],\n");
    out.push_str(&format!("    \"ratio\": {:.3}\n", kernel.ratio));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"cold_load\": {{\"eager_micros\": {}, \"cold_micros\": {}, \
         \"ratio\": {:.3}, \"snapshot_bytes\": {}}},\n",
        cold.eager_micros, cold.cold_micros, cold.ratio, cold.snapshot_bytes,
    ));
    out.push_str(&format!(
        "  \"connections\": {{\"idle_peers\": {}, \"quiet_micros\": {}, \
         \"crowded_micros\": {}, \"penalty\": {:.3}}}\n",
        conn.idle_peers, conn.quiet_micros, conn.crowded_micros, conn.penalty,
    ));
    out.push_str("}\n");
    out
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pulls `pruning_on_micros` for (workload, shards) out of a previous
/// run's `BENCH_engine.json` (this binary's own output format).
fn baseline_micros(text: &str, workload: &str, shards: usize) -> Option<u64> {
    let name_key = format!("\"name\": \"{workload}\"");
    let section = &text[text.find(&name_key)?..];
    let needle = format!("\"shards\": {shards}, \"pruning_on_micros\": ");
    let rest = &section[section.find(&needle)? + needle.len()..];
    rest.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    // A same-machine trajectory gate (opt in): point
    // SHAPESEARCH_BENCH_BASELINE at a previous run's BENCH_engine.json
    // and --check also compares absolute pruned-path times against it.
    // Read BEFORE measuring/writing — the baseline may be the very file
    // this run is about to overwrite. Off by default because absolute
    // times only compare meaningfully on the same hardware.
    let baseline = std::env::var("SHAPESEARCH_BENCH_BASELINE")
        .ok()
        .and_then(|path| match std::fs::read_to_string(&path) {
            Ok(text) => Some((path, text)),
            Err(e) => {
                eprintln!("perf_report: baseline {path} unreadable ({e}); skipping that gate");
                None
            }
        });

    let workloads = vec![
        run_workload("needle", "[p=up][p=down]", &needle_collection()),
        run_workload("common", "[p=up][p=down]", &common_collection()),
    ];
    let kernel = run_kernel(&common_collection());
    let cold = run_cold_load(&common_collection());
    let conn = run_connections(&common_collection());

    let json = render_json(&workloads, &kernel, &cold, &conn);
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");

    if check {
        let regression_factor = env_f64("SHAPESEARCH_BENCH_REGRESSION_FACTOR", 1.25);
        let min_needle_speedup = env_f64("SHAPESEARCH_BENCH_MIN_NEEDLE_SPEEDUP", 2.0);
        // Kernel-throughput floor: the columnar batch kernel must stay at
        // least this many times the scalar reference's throughput. A
        // ratio (not an absolute windows/s floor) so the gate carries
        // across machines; 1.0 = "never slower than the path it
        // replaced", with the usual env override for stricter trackers.
        let min_kernel_ratio = env_f64("SHAPESEARCH_BENCH_MIN_KERNEL_RATIO", 1.0);
        // Cold-load floor: time-to-first-answer from a snapshot must be
        // at least this many times the eager parse+EXTRACT+GROUP boot
        // path. 1.0 = "never slower than the path it shortcuts"; the
        // usual env override lets same-machine trackers pin the real
        // (larger) win.
        let min_cold_ratio = env_f64("SHAPESEARCH_BENCH_MIN_COLD_LOAD_RATIO", 1.0);
        // Idle-connection ceiling: a parked keep-alive crowd may not
        // slow a live query by more than this factor. Generous by
        // default — the roundtrip is sub-millisecond, so wall-clock
        // noise is proportionally large — with the usual env override
        // for same-machine trackers.
        let max_idle_penalty = env_f64("SHAPESEARCH_BENCH_MAX_IDLE_CONN_PENALTY", 3.0);
        let mut failures = Vec::new();
        if conn.penalty > max_idle_penalty {
            failures.push(format!(
                "connections: {} idle keep-alive peers slowed the batch query {:.2}x \
                 (quiet {}µs vs crowded {}µs), above the {max_idle_penalty}x ceiling",
                conn.idle_peers, conn.penalty, conn.quiet_micros, conn.crowded_micros
            ));
        }
        if kernel.ratio < min_kernel_ratio {
            failures.push(format!(
                "kernel: columnar/scalar throughput ratio {:.2} below the {min_kernel_ratio}x floor \
                 (columnar {:.0} vs scalar {:.0} windows/s)",
                kernel.ratio, kernel.columnar_points_per_sec, kernel.scalar_points_per_sec
            ));
        }
        if cold.ratio < min_cold_ratio {
            failures.push(format!(
                "cold_load: snapshot time-to-first-answer ratio {:.2} below the \
                 {min_cold_ratio}x floor (eager {}µs vs snapshot {}µs)",
                cold.ratio, cold.eager_micros, cold.cold_micros
            ));
        }
        for w in &workloads {
            for c in &w.configs {
                if (c.on_micros as f64) > regression_factor * c.off_micros as f64 {
                    failures.push(format!(
                        "{} shards={}: pruned path {}µs exceeds {regression_factor}x \
                         unpruned {}µs",
                        w.name, c.shards, c.on_micros, c.off_micros
                    ));
                }
                if w.name == "needle" && c.speedup < min_needle_speedup {
                    failures.push(format!(
                        "needle shards={}: speedup {:.2}x below the {min_needle_speedup}x gate",
                        c.shards, c.speedup
                    ));
                }
                if let Some((path, text)) = &baseline {
                    if let Some(base) = baseline_micros(text, w.name, c.shards) {
                        if (c.on_micros as f64) > regression_factor * base as f64 {
                            failures.push(format!(
                                "{} shards={}: pruned path {}µs exceeds {regression_factor}x \
                                 the recorded baseline {base}µs ({path})",
                                w.name, c.shards, c.on_micros
                            ));
                        }
                    }
                }
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf_report check FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("perf_report check OK");
    }
}
