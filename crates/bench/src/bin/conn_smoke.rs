//! `conn_smoke`: the evented-HTTP-core scaling smoke.
//!
//! Boots an in-process server with **2 event threads**, parks a crowd of
//! idle keep-alive connections against it (1,000 in CI), then runs the
//! standard batch query twice — once **through one of the held
//! keep-alive connections** and once on a fresh `connection: close`
//! socket — and byte-diffs the two replies after normalizing the
//! timing-dependent `"micros"` and `"cached"` fields. A diff, a missing
//! connection gauge, or slots that fail to drain after the crowd hangs
//! up all exit nonzero.
//!
//! ```sh
//! cargo run -p shapesearch-bench --bin conn_smoke --release [-- N_IDLE]
//! ```
//!
//! `N_IDLE` defaults to 1000; `ci.sh` raises `ulimit -n` first and
//! passes a smaller crowd when the fd budget cannot fit two sockets per
//! connection plus headroom.

use shapesearch_server::{json, Client, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Deterministic registration CSV: a small mixed collection with clean
/// peaks so the batch query has real answers.
fn demo_csv() -> String {
    let mut csv = String::from("series,t,v\n");
    for s in 0..24 {
        for t in 0..40 {
            let tf = t as f64;
            let v = if s % 3 == 0 {
                if tf < 20.0 {
                    tf
                } else {
                    40.0 - tf
                }
            } else {
                (tf * (0.08 + s as f64 * 0.013)).sin() * 3.0
            };
            csv.push_str(&format!("s{s},{t},{v}\n"));
        }
    }
    csv
}

fn batch_body() -> String {
    r#"[{"dataset":"crowd","query":"[p=up][p=down]","k":4},{"dataset":"crowd","query":"[p=down][p=up]","k":3}]"#.to_owned()
}

/// One keep-alive request/response round trip on an already-open
/// socket: writes the request, parses the status line and headers, and
/// reads exactly `content-length` body bytes — leaving the connection
/// open and reusable.
fn keepalive_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: x\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Zeroes every `"micros":<n>` and pins every `"cached":<bool>` so two
/// replies that differ only in timing/cache provenance compare equal.
fn normalize(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    loop {
        let micros = rest.find("\"micros\":");
        let cached = rest.find("\"cached\":");
        let (at, key) = match (micros, cached) {
            (Some(m), Some(c)) if m < c => (m, "\"micros\":"),
            (_, Some(c)) => (c, "\"cached\":"),
            (Some(m), None) => (m, "\"micros\":"),
            (None, None) => {
                out.push_str(rest);
                return out;
            }
        };
        let value_at = at + key.len();
        out.push_str(&rest[..value_at]);
        out.push_str(if key == "\"micros\":" { "0" } else { "false" });
        rest = &rest[value_at..];
        let skipped = rest.find([',', '}', ']']).unwrap_or(rest.len());
        rest = &rest[skipped..];
    }
}

fn connections_gauge(client: &Client, field: &str) -> u64 {
    client
        .get("/healthz")
        .expect("healthz")
        .expect_ok("healthz")
        .get("connections")
        .unwrap_or_else(|| panic!("healthz has no connections block"))
        .get(field)
        .unwrap_or_else(|| panic!("connections block has no {field}"))
        .as_usize()
        .unwrap_or_else(|| panic!("connections.{field} is not a number")) as u64
}

fn main() {
    let want_idle: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("N_IDLE must be an integer"))
        .unwrap_or(1000);

    let service = shapesearch_server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            event_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = service.addr();
    let client = Client::new(addr);

    let reply = client
        .post(
            "/datasets",
            &json::Json::Obj(vec![
                ("name".into(), "crowd".into()),
                ("id".into(), "crowd".into()),
                ("csv".into(), demo_csv().into()),
                ("z".into(), "series".into()),
                ("x".into(), "t".into()),
                ("y".into(), "v".into()),
            ]),
        )
        .expect("register");
    assert_eq!(
        reply.status,
        201,
        "register failed: {}",
        reply.body.to_text()
    );

    // Park the crowd. Every held socket exercises the readiness path: a
    // warmed prefix completes one keep-alive round trip first (so it is
    // parked *between* requests), the rest idle before their first byte.
    let mut held: Vec<TcpStream> = Vec::with_capacity(want_idle);
    for i in 0..want_idle {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                s.set_nodelay(true).ok();
                if i < 8 {
                    let (status, _) = keepalive_roundtrip(&mut s, "GET", "/healthz", "");
                    assert_eq!(status, 200, "warm-up round trip failed");
                }
                held.push(s);
            }
            Err(e) => {
                eprintln!(
                    "conn_smoke: connect #{i} failed ({e}); holding {} instead",
                    held.len()
                );
                break;
            }
        }
    }
    assert!(
        held.len() >= want_idle / 2,
        "could not hold even half the requested crowd ({}/{want_idle})",
        held.len()
    );

    // The gauges see the whole crowd (+1 for the healthz probe itself).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let active = connections_gauge(&client, "active");
        if active > held.len() as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "active={active} never reached the crowd size {}",
            held.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(connections_gauge(&client, "accepted_total") >= held.len() as u64);

    // The standard batch query, once through a held keep-alive socket…
    let body = batch_body();
    let mut through = held.pop().expect("crowd is non-empty");
    let (status_held, reply_held) = keepalive_roundtrip(&mut through, "POST", "/query", &body);
    assert_eq!(status_held, 200, "held-connection batch: {reply_held}");
    held.push(through);

    // …and once on a fresh connection: byte-identical after normalizing
    // the timing fields.
    let (status_fresh, reply_fresh) = {
        let reply = client
            .post("/query", &json::parse(&body).expect("batch body parses"))
            .expect("fresh batch");
        (reply.status, reply.body.to_text())
    };
    assert_eq!(status_fresh, 200, "fresh-connection batch: {reply_fresh}");
    let (held_norm, fresh_norm) = (normalize(&reply_held), normalize(&reply_fresh));
    assert!(
        held_norm == fresh_norm,
        "replies diverged between a held keep-alive connection and a fresh one:\n\
         held:  {held_norm}\nfresh: {fresh_norm}"
    );
    assert!(
        held_norm.contains("\"results\""),
        "batch reply carried no results: {held_norm}"
    );

    // Hang up the crowd: every slot must drain back to just the probe.
    let crowd = held.len() as u64;
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let active = connections_gauge(&client, "active");
        if active == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{active} connections still active after the crowd hung up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    println!(
        "conn_smoke OK: {crowd} idle keep-alive connections on 2 event threads, \
         held == fresh byte-for-byte, slots drained"
    );
    service.shutdown();
}
