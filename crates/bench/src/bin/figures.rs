//! Regenerates the tables and figures of the ShapeSearch evaluation as
//! printed series.
//!
//! ```text
//! figures [--scale S] [--k K] <experiment>
//!   experiments: fig9a fig10 fig11 fig12 fig13a fig13b fig13c table11 crf all quick
//! ```
//!
//! `--scale` subsamples each collection (1.0 = the paper's full sizes;
//! `quick` runs everything at a small scale for smoke-testing).

use shapesearch_bench as bench;
use shapesearch_datagen::table11::DatasetId;
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

struct Args {
    scale: f64,
    k: usize,
    what: Vec<String>,
}

fn parse_args() -> Args {
    let mut scale = 1.0;
    let mut k = 10;
    let mut what = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--k" => {
                k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--k needs an integer");
            }
            other => what.push(other.to_owned()),
        }
    }
    if what.is_empty() {
        what.push("all".to_owned());
    }
    Args { scale, k, what }
}

fn main() {
    let args = parse_args();
    for what in &args.what {
        match what.as_str() {
            "table11" => table11(),
            "fig9a" => fig9a(),
            "fig10" => fig10(args.scale, args.k),
            "fig11" => fig11(args.scale, args.k),
            "fig12" => fig12(args.scale),
            "fig13a" => fig13a(args.scale, args.k),
            "fig13b" => fig13b(args.scale, args.k),
            "fig13c" => fig13c(args.k),
            "crf" => crf(),
            "ablation" => ablation(args.scale),
            "all" => {
                table11();
                crf();
                fig9a();
                fig10(args.scale, args.k);
                fig11(args.scale, args.k);
                fig12(args.scale);
                fig13a(args.scale, args.k);
                fig13b(args.scale, args.k);
                fig13c(args.k);
                ablation(args.scale.min(0.25));
            }
            "quick" => {
                table11();
                crf();
                fig9a();
                fig10(0.08, args.k);
                fig11(0.08, args.k);
                fig12(0.04);
                fig13a(0.05, args.k);
                fig13b(0.1, args.k);
                fig13c(args.k);
                ablation(0.05);
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                std::process::exit(2);
            }
        }
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn table11() {
    header("Table 11: datasets and queries");
    println!("{:<12} {:>8} {:>8}  queries", "dataset", "viz", "length");
    for id in DatasetId::ALL {
        let (count, length) = id.shape();
        println!("{:<12} {:>8} {:>8}", id.name(), count, length);
        for q in id.fuzzy_queries() {
            println!("{:30} fuzzy:     {q}", "");
        }
        println!("{:30} non-fuzzy: {}", "", id.non_fuzzy_query());
    }
}

fn fig10(scale: f64, k: usize) {
    header(&format!(
        "Figure 10: average running time (ms), scale={scale}, k={k}"
    ));
    let rows = bench::fig10_runtimes(scale, k);
    print!("{:<12}", "dataset");
    for (_, name) in bench::FIG10_ALGOS {
        print!(" {name:>26}");
    }
    println!();
    for row in rows {
        print!("{:<12}", row.dataset);
        for (_, t) in row.runtimes {
            print!(" {:>26}", ms(t));
        }
        println!();
    }
}

fn fig11(scale: f64, k: usize) {
    header(&format!(
        "Figure 11: non-fuzzy runtime ± push-down (ms), scale={scale}, k={k}"
    ));
    println!(
        "{:<12} {:>18} {:>18} {:>9}",
        "dataset", "without pushdown", "with pushdown", "speedup"
    );
    for row in bench::fig11_pushdown(scale, k) {
        let speedup = row.without.as_secs_f64() / row.with.as_secs_f64().max(1e-9);
        println!(
            "{:<12} {:>18} {:>18} {:>8.2}x",
            row.dataset,
            ms(row.without),
            ms(row.with),
            speedup
        );
    }
}

fn fig12(scale: f64) {
    let ks = [2, 5, 10, 15, 20];
    header(&format!(
        "Figure 12: top-k accuracy % (kth-score deviation %) vs DP, scale={scale}"
    ));
    for id in DatasetId::ALL {
        println!("-- {}", id.name());
        let cells = bench::fig12_accuracy(id, scale, &ks);
        print!("{:<14}", "algorithm");
        for k in ks {
            print!(" {:>16}", format!("k={k}"));
        }
        println!();
        for algo in ["Greedy", "Segment Tree", "DTW"] {
            print!("{algo:<14}");
            for k in ks {
                let cell = cells
                    .iter()
                    .find(|c| c.algorithm == algo && c.k == k)
                    .expect("cell");
                print!(
                    " {:>16}",
                    format!("{:5.1} ({:4.1})", cell.accuracy_pct, cell.deviation_pct)
                );
            }
            println!();
        }
    }
}

fn sweep(points: &[bench::SweepPoint], x_name: &str) {
    print!("{x_name:<16}");
    for (_, name) in bench::FIG13_ALGOS {
        print!(" {name:>26}");
    }
    println!();
    for p in points {
        print!("{:<16}", p.x);
        for &(_, t) in &p.runtimes {
            print!(" {:>26}", ms(t));
        }
        println!();
    }
}

fn fig13a(scale: f64, k: usize) {
    header(&format!(
        "Figure 13a: runtime (ms) vs points per visualization (Worms), scale={scale}"
    ));
    let counts = [50, 100, 200, 300, 400, 500, 600, 700, 800, 900];
    sweep(&bench::fig13a_points(&counts, scale, k), "points");
}

fn fig13b(scale: f64, k: usize) {
    header(&format!(
        "Figure 13b: runtime (ms) vs ShapeSegments (Weather), scale={scale}"
    ));
    let counts = [2, 3, 4, 5, 6];
    sweep(&bench::fig13b_segments(&counts, scale, k), "segments");
}

fn fig13c(k: usize) {
    header("Figure 13c: runtime (ms) vs number of visualizations (RealEstate)");
    let counts = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
    sweep(&bench::fig13c_visualizations(&counts, k), "visualizations");
}

fn fig9a() {
    header("Figure 9a (scoring effectiveness): precision@gold % per Table-10 task");
    let rows = bench::fig9a_scoring(32, 64, 3);
    println!(
        "{:<6} {:>18} {:>10} {:>10}",
        "task", "ShapeSearch (DP)", "DTW", "Euclidean"
    );
    for row in rows {
        print!("{:<6}", row.task);
        for (_, acc) in row.accuracy {
            print!(" {acc:>10.1}");
        }
        println!();
    }
}

fn ablation(scale: f64) {
    header(&format!(
        "Ablation: SegmentTree bridge rule — mean score gap to DP, scale={scale}"
    ));
    println!(
        "{:<12} {:>18} {:>18}",
        "dataset", "with bridges", "without bridges"
    );
    for row in bench::bridge_ablation(scale) {
        println!(
            "{:<12} {:>18.4} {:>18.4}",
            row.dataset, row.with_bridges_gap, row.without_bridges_gap
        );
    }
}

fn crf() {
    header("NL entity tagger: 5-fold cross-validation (paper: P=73% R=90% F1=81%)");
    let (p, r, f1) = bench::crf_quality(250, 5);
    println!(
        "precision = {:.1}%  recall = {:.1}%  F1 = {:.1}%",
        100.0 * p,
        100.0 * r,
        100.0 * f1
    );
}
