//! # shapesearch-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ShapeSearch evaluation (paper §9 and §7.3). The experiment logic lives
//! here so both the `figures` binary and the Criterion benches share it.
//!
//! Experiment index (see `DESIGN.md` §3):
//!
//! * [`fig10_runtimes`] — Figure 10: average runtime of DP / DTW / Greedy /
//!   SegmentTree / SegmentTree+Pruning over the five datasets.
//! * [`fig11_pushdown`] — Figure 11: non-fuzzy query runtime with and
//!   without push-down optimizations.
//! * [`fig12_accuracy`] — Figure 12: top-k accuracy (and kth-score
//!   deviation) of Greedy / SegmentTree / DTW against the DP ground truth.
//! * [`fig13a_points`], [`fig13b_segments`], [`fig13c_visualizations`] —
//!   Figure 13: runtime scaling in points, ShapeSegments, and collection
//!   size.
//! * [`fig9a_scoring`] — Figure 9a (red series) / §7.3: scoring-function
//!   effectiveness versus DTW and Euclidean on the Table-10 tasks.
//! * [`crf_quality`] — §4: cross-validated entity-tagging quality.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use shapesearch_core::{EngineOptions, SegmenterKind, ShapeEngine, ShapeQuery, TopKResult};
use shapesearch_datagen::{table11::DatasetId, tasks, TaskKind};
use shapesearch_datastore::Trendline;
use shapesearch_parser::parse_regex;
use std::time::{Duration, Instant};

/// Default dataset seed for all experiments (deterministic).
pub const SEED: u64 = 42;

/// The algorithms compared in Figure 10/12/13, in the paper's order.
pub const FIG10_ALGOS: [(SegmenterKind, &str); 5] = [
    (SegmenterKind::Dp, "DP"),
    (SegmenterKind::Dtw, "DTW"),
    (SegmenterKind::Greedy, "Greedy"),
    (SegmenterKind::SegmentTree, "Segment Tree"),
    (
        SegmenterKind::SegmentTreePruned,
        "Segment Tree with Pruning",
    ),
];

/// Builds an engine with the given segmenter over owned trendlines.
pub fn engine(trendlines: Vec<Trendline>, kind: SegmenterKind) -> ShapeEngine {
    ShapeEngine::from_trendlines(trendlines).with_options(EngineOptions {
        segmenter: kind,
        ..EngineOptions::default()
    })
}

/// Parses a regex query, panicking on error (queries here are static).
pub fn query(text: &str) -> ShapeQuery {
    parse_regex(text).unwrap_or_else(|e| panic!("bad query `{text}`: {e}"))
}

/// Runs one query and returns (elapsed, top-k results).
pub fn timed_top_k(engine: &ShapeEngine, q: &ShapeQuery, k: usize) -> (Duration, Vec<TopKResult>) {
    let start = Instant::now();
    let results = engine.top_k(q, k).expect("query execution");
    (start.elapsed(), results)
}

/// Top-k accuracy: the fraction of `candidate`'s top-k keys present in the
/// reference (DP) top-k — the Figure-12 metric ("the number of
/// visualizations picked by the algorithm that are also present in the top
/// k visualizations selected by DP").
pub fn topk_accuracy(reference: &[TopKResult], candidate: &[TopKResult], k: usize) -> f64 {
    let k = k.min(reference.len()).min(candidate.len());
    if k == 0 {
        return 0.0;
    }
    let ref_keys: Vec<&str> = reference[..k].iter().map(|r| r.key.as_str()).collect();
    let hits = candidate[..k]
        .iter()
        .filter(|r| ref_keys.contains(&r.key.as_str()))
        .count();
    hits as f64 / k as f64
}

/// Average % deviation of the k-th score versus the optimal k-th score
/// (the Figure-12 annotations).
pub fn kth_score_deviation(reference: &[TopKResult], candidate: &[TopKResult], k: usize) -> f64 {
    let k = k.min(reference.len()).min(candidate.len());
    if k == 0 {
        return 0.0;
    }
    let opt = reference[k - 1].score;
    let got = candidate[k - 1].score;
    if opt.abs() < 1e-9 {
        return 0.0;
    }
    100.0 * (opt - got).abs() / opt.abs()
}

/// A dataset subset for faster experiment variants: the first
/// `max(count × scale, 8)` visualizations.
pub fn scaled(data: Vec<Trendline>, scale: f64) -> Vec<Trendline> {
    if scale >= 1.0 {
        return data;
    }
    let keep = ((data.len() as f64 * scale) as usize)
        .max(8)
        .min(data.len());
    data.into_iter().take(keep).collect()
}

/// One row of Figure 10: dataset name then per-algorithm mean runtimes.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// (algorithm name, mean runtime over the dataset's fuzzy queries).
    pub runtimes: Vec<(&'static str, Duration)>,
}

/// Figure 10: average running time of the five algorithms over each
/// dataset's fuzzy queries. `scale` subsamples the collections (1.0 = the
/// paper's full sizes).
pub fn fig10_runtimes(scale: f64, k: usize) -> Vec<Fig10Row> {
    DatasetId::ALL
        .iter()
        .map(|&id| {
            let data = scaled(id.generate(SEED), scale);
            let queries: Vec<ShapeQuery> = id.fuzzy_queries().iter().map(|q| query(q)).collect();
            let runtimes = FIG10_ALGOS
                .iter()
                .map(|&(kind, name)| {
                    let eng = engine(data.clone(), kind);
                    let mut total = Duration::ZERO;
                    for q in &queries {
                        let (t, _) = timed_top_k(&eng, q, k);
                        total += t;
                    }
                    (name, total / queries.len() as u32)
                })
                .collect();
            Fig10Row {
                dataset: id.name(),
                runtimes,
            }
        })
        .collect()
}

/// One row of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Runtime without push-down optimizations.
    pub without: Duration,
    /// Runtime with push-down optimizations.
    pub with: Duration,
}

/// Figure 11: non-fuzzy query runtime with and without the §5.4 push-down
/// optimizations.
pub fn fig11_pushdown(scale: f64, k: usize) -> Vec<Fig11Row> {
    DatasetId::ALL
        .iter()
        .map(|&id| {
            let data = scaled(id.generate(SEED), scale);
            let q = query(id.non_fuzzy_query());
            let mut opts = EngineOptions {
                segmenter: SegmenterKind::SegmentTree,
                ..EngineOptions::default()
            };
            opts.pushdown = false;
            let eng_off = ShapeEngine::from_trendlines(data.clone()).with_options(opts.clone());
            opts.pushdown = true;
            let eng_on = ShapeEngine::from_trendlines(data).with_options(opts);
            let (t_off, _) = timed_top_k(&eng_off, &q, k);
            let (t_on, _) = timed_top_k(&eng_on, &q, k);
            Fig11Row {
                dataset: id.name(),
                without: t_off,
                with: t_on,
            }
        })
        .collect()
}

/// One cell of Figure 12.
#[derive(Debug, Clone)]
pub struct Fig12Cell {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// k (number of output visualizations).
    pub k: usize,
    /// Top-k accuracy vs DP, in percent.
    pub accuracy_pct: f64,
    /// kth-score deviation vs DP, in percent.
    pub deviation_pct: f64,
}

/// Figure 12: accuracy (vs the DP ground truth) of Greedy / SegmentTree /
/// DTW for k ∈ `ks`, averaged over the dataset's fuzzy queries.
pub fn fig12_accuracy(id: DatasetId, scale: f64, ks: &[usize]) -> Vec<Fig12Cell> {
    let data = scaled(id.generate(SEED), scale);
    let queries: Vec<ShapeQuery> = id.fuzzy_queries().iter().map(|q| query(q)).collect();
    let k_max = ks.iter().copied().max().unwrap_or(20);

    let dp = engine(data.clone(), SegmenterKind::Dp);
    let reference: Vec<Vec<TopKResult>> = queries
        .iter()
        .map(|q| dp.top_k(q, k_max).expect("dp"))
        .collect();

    let algos = [
        (SegmenterKind::Greedy, "Greedy"),
        (SegmenterKind::SegmentTree, "Segment Tree"),
        (SegmenterKind::Dtw, "DTW"),
    ];
    let mut cells = Vec::new();
    for (kind, name) in algos {
        let eng = engine(data.clone(), kind);
        let results: Vec<Vec<TopKResult>> = queries
            .iter()
            .map(|q| eng.top_k(q, k_max).expect("algo"))
            .collect();
        for &k in ks {
            let (mut acc, mut dev) = (0.0, 0.0);
            for (r, c) in reference.iter().zip(&results) {
                acc += topk_accuracy(r, c, k);
                dev += kth_score_deviation(r, c, k);
            }
            cells.push(Fig12Cell {
                algorithm: name,
                k,
                accuracy_pct: 100.0 * acc / queries.len() as f64,
                deviation_pct: dev / queries.len() as f64,
            });
        }
    }
    cells
}

/// A runtime series point for the Figure-13 sweeps.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter value (points / segments / visualizations).
    pub x: usize,
    /// (algorithm name, runtime).
    pub runtimes: Vec<(&'static str, Duration)>,
}

/// Algorithms shown in Figure 13.
pub const FIG13_ALGOS: [(SegmenterKind, &str); 3] = [
    (SegmenterKind::Dp, "DP"),
    (SegmenterKind::SegmentTree, "Segment Tree"),
    (
        SegmenterKind::SegmentTreePruned,
        "Segment Tree with Pruning",
    ),
];

/// Figure 13a: runtime vs number of points per visualization (prefixes of
/// the Worms dataset), query u⊗d⊗u⊗d.
pub fn fig13a_points(point_counts: &[usize], scale: f64, k: usize) -> Vec<SweepPoint> {
    let full = scaled(DatasetId::Worms.generate(SEED), scale);
    let q = query("[p=up][p=down][p=up][p=down]");
    point_counts
        .iter()
        .map(|&n| {
            let data: Vec<Trendline> = full
                .iter()
                .map(|t| Trendline {
                    key: t.key.clone(),
                    points: t.points.iter().take(n).copied().collect(),
                })
                .collect();
            let runtimes = FIG13_ALGOS
                .iter()
                .map(|&(kind, name)| {
                    let eng = engine(data.clone(), kind);
                    let (t, _) = timed_top_k(&eng, &q, k);
                    (name, t)
                })
                .collect();
            SweepPoint { x: n, runtimes }
        })
        .collect()
}

/// Figure 13b: runtime vs number of ShapeSegments (alternating up/down) on
/// the Weather dataset.
pub fn fig13b_segments(segment_counts: &[usize], scale: f64, k: usize) -> Vec<SweepPoint> {
    let data = scaled(DatasetId::Weather.generate(SEED), scale);
    segment_counts
        .iter()
        .map(|&kseg| {
            let parts: Vec<String> = (0..kseg)
                .map(|i| if i % 2 == 0 { "[p=up]" } else { "[p=down]" }.to_owned())
                .collect();
            let q = query(&parts.concat());
            let runtimes = FIG13_ALGOS
                .iter()
                .map(|&(kind, name)| {
                    let eng = engine(data.clone(), kind);
                    let (t, _) = timed_top_k(&eng, &q, k);
                    (name, t)
                })
                .collect();
            SweepPoint { x: kseg, runtimes }
        })
        .collect()
}

/// Figure 13c: runtime vs number of visualizations (subsets of Real
/// Estate), query u⊗d⊗u⊗d.
pub fn fig13c_visualizations(viz_counts: &[usize], k: usize) -> Vec<SweepPoint> {
    let full = DatasetId::RealEstate.generate(SEED);
    let q = query("[p=up][p=down][p=up][p=down]");
    viz_counts
        .iter()
        .map(|&n| {
            let data: Vec<Trendline> = full.iter().take(n).cloned().collect();
            let runtimes = FIG13_ALGOS
                .iter()
                .map(|&(kind, name)| {
                    let eng = engine(data.clone(), kind);
                    let (t, _) = timed_top_k(&eng, &q, k);
                    (name, t)
                })
                .collect();
            SweepPoint { x: n, runtimes }
        })
        .collect()
}

/// One row of the scoring-effectiveness experiment (Fig 9a red series).
#[derive(Debug, Clone)]
pub struct Fig9aRow {
    /// Task symbol (ET, SQ, ...).
    pub task: &'static str,
    /// (matcher name, precision@gold in percent).
    pub accuracy: Vec<(&'static str, f64)>,
}

/// Figure 9a (§7.3): scoring-function effectiveness of ShapeSearch (DP)
/// versus DTW and Euclidean on the seven Table-10 tasks with planted ground
/// truth, averaged over `repeats` seeded instances.
pub fn fig9a_scoring(n: usize, length: usize, repeats: u64) -> Vec<Fig9aRow> {
    let matchers = [
        (SegmenterKind::Dp, "ShapeSearch (DP)"),
        (SegmenterKind::Dtw, "DTW"),
        (SegmenterKind::Euclidean, "Euclidean"),
    ];
    TaskKind::ALL
        .iter()
        .map(|&kind| {
            let accuracy = matchers
                .iter()
                .map(|&(seg, name)| {
                    let mut total = 0.0;
                    for rep in 0..repeats {
                        let task = tasks::generate(kind, n, length, SEED + rep);
                        let eng = engine(task.trendlines.clone(), seg);
                        let results = eng
                            .top_k(&task.query, task.positives.len())
                            .expect("task query");
                        let keys: Vec<String> = results.into_iter().map(|r| r.key).collect();
                        total += tasks::precision_at_gold(&task, &keys);
                    }
                    (name, 100.0 * total / repeats as f64)
                })
                .collect();
            Fig9aRow {
                task: kind.symbol(),
                accuracy,
            }
        })
        .collect()
}

/// §4 CRF quality: cross-validated precision / recall / F1 on the synthetic
/// corpus (the paper reports F1 = 81%, P = 73%, R = 90%).
pub fn crf_quality(corpus_size: usize, folds: usize) -> (f64, f64, f64) {
    let report = shapesearch_parser::cross_validate_corpus(corpus_size, folds, SEED);
    (
        report.macro_precision(),
        report.macro_recall(),
        report.macro_f1(),
    )
}

/// One row of the bridge ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Mean score gap to DP with bridge combinations enabled.
    pub with_bridges_gap: f64,
    /// Mean score gap to DP with bridges disabled (dyadic-only breaks).
    pub without_bridges_gap: f64,
}

/// Ablation of the SegmentTree *bridge* rule (DESIGN.md §4, decision 3):
/// bridges let a unit span a node midpoint; without them break points are
/// restricted to dyadic positions. Reports the mean score gap to the DP
/// optimum over the dataset's first fuzzy query, per visualization.
pub fn bridge_ablation(scale: f64) -> Vec<AblationRow> {
    use shapesearch_core::algo::segment_tree::SegmentTreeSegmenter;
    use shapesearch_core::algo::{dp::DpSegmenter, Segmenter};
    use shapesearch_core::chain::expand_chains;
    use shapesearch_core::{Evaluator, ScoreParams, UdpRegistry, VizData};

    let params = ScoreParams::default();
    let udps = UdpRegistry::new();
    DatasetId::ALL
        .iter()
        .map(|&id| {
            let data = scaled(id.generate(SEED), scale);
            let q = query(id.fuzzy_queries()[0]);
            let chains = expand_chains(&q);
            let (mut gap_with, mut gap_without, mut count) = (0.0, 0.0, 0);
            for (i, t) in data.iter().enumerate() {
                let Some(viz) = VizData::from_trendline(t, i, 1) else {
                    continue;
                };
                let ev = Evaluator::new(&viz, &params, &udps);
                let dp = DpSegmenter.match_viz(&ev, &chains).score;
                let with = SegmentTreeSegmenter::default()
                    .match_viz(&ev, &chains)
                    .score;
                let without = SegmentTreeSegmenter::without_bridges()
                    .match_viz(&ev, &chains)
                    .score;
                gap_with += dp - with;
                gap_without += dp - without;
                count += 1;
            }
            AblationRow {
                dataset: id.name(),
                with_bridges_gap: gap_with / count.max(1) as f64,
                without_bridges_gap: gap_without / count.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_metrics() {
        let mk = |keys: &[&str]| -> Vec<TopKResult> {
            keys.iter()
                .enumerate()
                .map(|(i, k)| TopKResult {
                    key: (*k).to_owned(),
                    score: 1.0 - i as f64 * 0.1,
                    viz_index: i,
                    ranges: Vec::new(),
                })
                .collect()
        };
        let reference = mk(&["a", "b", "c", "d"]);
        let perfect = mk(&["b", "a", "c", "d"]);
        assert_eq!(topk_accuracy(&reference, &perfect, 4), 1.0);
        let half = mk(&["a", "x", "b", "y"]);
        assert_eq!(topk_accuracy(&reference, &half, 4), 0.5);
        assert_eq!(topk_accuracy(&reference, &half, 0), 0.0);
        // Deviation: reference kth = 0.7, candidate kth = 0.7 → 0%.
        assert_eq!(kth_score_deviation(&reference, &perfect, 4), 0.0);
    }

    #[test]
    fn scaled_subsets() {
        let data = DatasetId::Weather.generate(SEED);
        assert_eq!(scaled(data.clone(), 1.0).len(), 144);
        assert_eq!(scaled(data.clone(), 0.25).len(), 36);
        assert_eq!(scaled(data, 0.0).len(), 8);
    }

    #[test]
    fn fig10_smoke() {
        let rows = fig10_runtimes(0.06, 5);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.runtimes.len(), 5);
        }
    }

    #[test]
    fn fig11_smoke() {
        let rows = fig11_pushdown(0.06, 5);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn fig12_smoke() {
        let cells = fig12_accuracy(DatasetId::RealEstate, 0.02, &[2, 5]);
        assert_eq!(cells.len(), 6); // 3 algorithms × 2 k values
        for c in &cells {
            assert!((0.0..=100.0).contains(&c.accuracy_pct), "{c:?}");
        }
        // At this smoke scale only sanity is checked; the SegmentTree ≥
        // Greedy ordering is a full-scale statistical claim verified by the
        // `figures -- fig12` experiment.
        let avg = |name: &str| {
            let v: Vec<f64> = cells
                .iter()
                .filter(|c| c.algorithm == name)
                .map(|c| c.accuracy_pct)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg("Segment Tree") > 20.0,
            "tree accuracy {}",
            avg("Segment Tree")
        );
    }

    #[test]
    fn fig13_smoke() {
        let pts = fig13a_points(&[50, 100], 0.04, 5);
        assert_eq!(pts.len(), 2);
        let segs = fig13b_segments(&[2, 3], 0.06, 5);
        assert_eq!(segs.len(), 2);
        let vizzes = fig13c_visualizations(&[20, 40], 5);
        assert_eq!(vizzes.len(), 2);
    }

    #[test]
    fn fig9a_smoke() {
        let rows = fig9a_scoring(16, 48, 1);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert_eq!(row.accuracy.len(), 3);
        }
    }
}
