//! Dynamic Time Warping (Rabiner et al. [36], Sakoe & Chiba [41]).
//!
//! DTW aligns two series by warping the time axis to minimize accumulated
//! point-wise cost. The paper uses it both as an effectiveness baseline
//! (§7.3: "DTW measure is poor at capturing blurry trends") and an efficiency
//! baseline (§9: "DTW's runtime is better than that of DP ... but worse by up
//! to 10X compared to SegmentTree").
//!
//! The implementation is the standard O(n·m) dynamic program with a
//! two-row rolling buffer, plus an optional Sakoe-Chiba band constraint that
//! restricts warping to a diagonal window.

/// Options controlling the DTW computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DtwOptions {
    /// Sakoe-Chiba band half-width; `None` means unconstrained warping.
    pub band: Option<usize>,
}

/// Unconstrained DTW distance between two series, using squared point cost
/// and returning the square root of the accumulated cost (the common
/// "DTW-Euclidean" convention, comparable in scale to [`crate::euclidean`]).
///
/// Returns `f64::INFINITY` when either series is empty.
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_banded(a, b, DtwOptions::default())
}

/// DTW with options (see [`DtwOptions`]).
pub fn dtw_banded(a: &[f64], b: &[f64], opts: DtwOptions) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // The band must be at least |n - m| wide for a path to exist.
    let band = opts
        .band
        .map(|w| w.max(n.abs_diff(m)))
        .unwrap_or(usize::MAX);

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        // Columns within the band around the diagonal j ≈ i·m/n.
        let center = i * m / n;
        let lo = center.saturating_sub(band).max(1);
        let hi = center.saturating_add(band).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_distance() {
        let s = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&s, &s), 0.0);
    }

    #[test]
    fn phase_shift_is_cheap_for_dtw() {
        // The same triangle, shifted by one step: Euclidean sees a large
        // difference, DTW warps it away almost completely.
        let a = [0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0, 0.0];
        let b = [0.0, 0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        let d_dtw = dtw(&a, &b);
        let d_euc = crate::euclidean(&a, &b);
        assert!(d_dtw < d_euc, "dtw {d_dtw} should be < euclidean {d_euc}");
        assert!(d_dtw < 1e-9);
    }

    #[test]
    fn unequal_lengths_supported() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 0.5, 1.0, 1.5, 2.0];
        let d = dtw(&a, &b);
        assert!(d.is_finite());
        assert!(d < 1.0);
    }

    #[test]
    fn empty_series_is_infinite() {
        assert_eq!(dtw(&[], &[1.0]), f64::INFINITY);
        assert_eq!(dtw(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn band_zero_reduces_to_euclidean_on_equal_lengths() {
        let a = [1.0, 5.0, 3.0, 8.0];
        let b = [2.0, 4.0, 4.0, 6.0];
        let banded = dtw_banded(&a, &b, DtwOptions { band: Some(0) });
        // Band 0 on equal lengths forces the diagonal path = Euclidean.
        assert!((banded - crate::euclidean(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn wider_band_never_increases_distance() {
        let a = [0.0, 2.0, 1.0, 3.0, 2.0, 4.0];
        let b = [0.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let d1 = dtw_banded(&a, &b, DtwOptions { band: Some(1) });
        let d2 = dtw_banded(&a, &b, DtwOptions { band: Some(3) });
        let d3 = dtw_banded(&a, &b, DtwOptions { band: None });
        assert!(d1 >= d2 - 1e-12);
        assert!(d2 >= d3 - 1e-12);
    }

    #[test]
    fn band_expands_to_length_difference() {
        // band=0 with different lengths would have no valid path; the
        // implementation widens it so a path always exists.
        let a = [0.0, 1.0];
        let b = [0.0, 0.5, 1.0];
        let d = dtw_banded(&a, &b, DtwOptions { band: Some(0) });
        assert!(d.is_finite());
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 3.0, 1.0, 4.0];
        let b = [1.0, 2.0, 2.0, 5.0];
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-12);
    }
}
