//! Point-wise Euclidean (L2) distance, plus linear resampling so
//! different-length series can be compared (a sketch rarely has exactly as
//! many points as the target trendline).

/// Euclidean (L2) distance between two equal-length series.
///
/// # Panics
/// Panics when the series lengths differ; callers resample first (see
/// [`resample_linear`]).
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean requires equal-length series");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Linearly resamples `values` to `target_len` points, interpolating between
/// neighbours. Degenerate inputs (empty, or target 0) return an empty vector;
/// a single input point is repeated.
pub fn resample_linear(values: &[f64], target_len: usize) -> Vec<f64> {
    if values.is_empty() || target_len == 0 {
        return Vec::new();
    }
    if values.len() == 1 {
        return vec![values[0]; target_len];
    }
    if target_len == 1 {
        return vec![values[0]];
    }
    let scale = (values.len() - 1) as f64 / (target_len - 1) as f64;
    (0..target_len)
        .map(|i| {
            let pos = i as f64 * scale;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(values.len() - 1);
            let frac = pos - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_distance_zero() {
        assert_eq!(euclidean(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pythagorean_triple() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn resample_identity() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&v, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn resample_upsamples_linearly() {
        let out = resample_linear(&[0.0, 2.0], 5);
        assert_eq!(out, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn resample_downsamples_endpoints() {
        let out = resample_linear(&[0.0, 1.0, 2.0, 3.0], 2);
        assert_eq!(out, vec![0.0, 3.0]);
    }

    #[test]
    fn resample_degenerate_cases() {
        assert!(resample_linear(&[], 5).is_empty());
        assert!(resample_linear(&[1.0], 0).is_empty());
        assert_eq!(resample_linear(&[7.0], 3), vec![7.0, 7.0, 7.0]);
        assert_eq!(resample_linear(&[1.0, 2.0], 1), vec![1.0]);
    }
}
