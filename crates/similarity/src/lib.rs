//! # shapesearch-similarity
//!
//! Time-series similarity baselines used by ShapeSearch (paper §7.3 and §9):
//!
//! * [`dtw`] — Dynamic Time Warping, the "state-of-the-art shape matching
//!   approach" ShapeSearch compares against, with an optional Sakoe-Chiba
//!   band.
//! * [`euclidean`] — point-wise L2 distance, the other measure supported by
//!   visual query systems.
//! * [`znormalize`] — z-score normalization, applied "to achieve scaling and
//!   translation invariances ... before matching" (§10) and by the GROUP
//!   operator when a ShapeQuery has no y constraints (§5.3).
//! * [`normalized_similarity`] — maps a non-negative distance into the
//!   ShapeSearch score range [−1, 1] so baselines can be ranked by the same
//!   top-k machinery (§5.2: "The L2 norm can vary from 0 to ∞, therefore we
//!   normalize the distance within [1, −1]").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dtw;
mod euclid;
mod norm;

pub use dtw::{dtw, dtw_banded, DtwOptions};
pub use euclid::{euclidean, resample_linear};
pub use norm::{normalized_similarity, znormalize, znormalize_in_place};
