//! Normalization utilities.

/// Z-score normalizes a series: subtract the mean, divide by the population
/// standard deviation. A constant (zero-variance) series maps to all zeros.
pub fn znormalize(values: &[f64]) -> Vec<f64> {
    let mut out = values.to_vec();
    znormalize_in_place(&mut out);
    out
}

/// In-place variant of [`znormalize`].
pub fn znormalize_in_place(values: &mut [f64]) {
    let n = values.len();
    if n == 0 {
        return;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    if sd == 0.0 || !sd.is_finite() {
        values.iter_mut().for_each(|v| *v = 0.0);
    } else {
        values.iter_mut().for_each(|v| *v = (*v - mean) / sd);
    }
}

/// Converts a non-negative distance into a similarity score in [−1, 1]:
/// distance 0 → 1, distance `scale` → 0, distance → ∞ → −1.
///
/// The mapping is `1 − 2·d/(d + scale)`, a smooth monotone transform that
/// preserves ranking order (the only property the top-k machinery needs).
/// `scale` defaults to the series length when callers pass the natural
/// per-point distance budget.
pub fn normalized_similarity(distance: f64, scale: f64) -> f64 {
    debug_assert!(distance >= 0.0, "distance must be non-negative");
    let scale = if scale > 0.0 { scale } else { 1.0 };
    1.0 - 2.0 * distance / (distance + scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znormalize_zero_mean_unit_sd() {
        let z = znormalize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_constant_series() {
        assert_eq!(znormalize(&[7.0, 7.0, 7.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn znormalize_empty_is_noop() {
        assert!(znormalize(&[]).is_empty());
    }

    #[test]
    fn znormalize_scale_invariance() {
        let a = znormalize(&[1.0, 3.0, 2.0]);
        let b = znormalize(&[10.0, 30.0, 20.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn similarity_endpoints() {
        assert_eq!(normalized_similarity(0.0, 10.0), 1.0);
        assert!((normalized_similarity(10.0, 10.0)).abs() < 1e-12);
        assert!(normalized_similarity(1e12, 10.0) > -1.0);
        assert!(normalized_similarity(1e12, 10.0) < -0.99);
    }

    #[test]
    fn similarity_is_monotone_decreasing() {
        let s1 = normalized_similarity(1.0, 5.0);
        let s2 = normalized_similarity(2.0, 5.0);
        let s3 = normalized_similarity(4.0, 5.0);
        assert!(s1 > s2 && s2 > s3);
    }

    #[test]
    fn similarity_guards_bad_scale() {
        // Non-positive scales fall back to 1.0 rather than dividing by zero.
        let s = normalized_similarity(1.0, 0.0);
        assert!(s.is_finite());
    }
}
