//! The five evaluation datasets of paper Table 11, rebuilt synthetically
//! with identical (#visualizations × length) shapes and comparable shape
//! mixtures, plus the exact fuzzy and non-fuzzy queries the paper issues
//! over each.
//!
//! | Name        | Visualizations | Length |
//! |-------------|---------------:|-------:|
//! | Weather     | 144            | 366    |
//! | Worms       | 258            | 900    |
//! | 50 Words    | 905            | 270    |
//! | Real Estate | 1777           | 138    |
//! | Haptics     | 463            | 1092   |
//!
//! The original UCI / Zillow data is not redistributable here; the
//! generators preserve the drivers the §9 experiments measure (collection
//! size, trendline length, and a mixture of matching/non-matching shapes —
//! each fuzzy query was chosen so at least 20 visualizations have
//! score > 0, which the mixtures guarantee; see `DESIGN.md`).

use crate::generators::{self, gauss, ChartPattern};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use shapesearch_datastore::Trendline;

/// Identifier for a Table-11 dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// 144 × 366 seasonal temperature-like curves.
    Weather,
    /// 258 × 900 motion traces (random walks + motifs).
    Worms,
    /// 905 × 270 word-profile-like piecewise shapes.
    Words50,
    /// 1777 × 138 price trajectories (aggregated from multiple listings).
    RealEstate,
    /// 463 × 1092 haptic gesture traces.
    Haptics,
}

impl DatasetId {
    /// All five datasets in the paper's order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::Weather,
        DatasetId::Worms,
        DatasetId::Words50,
        DatasetId::RealEstate,
        DatasetId::Haptics,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Weather => "Weather",
            DatasetId::Worms => "Worms",
            DatasetId::Words50 => "50Words",
            DatasetId::RealEstate => "RealEstate",
            DatasetId::Haptics => "Haptics",
        }
    }

    /// (#visualizations, length) as in Table 11.
    pub fn shape(self) -> (usize, usize) {
        match self {
            DatasetId::Weather => (144, 366),
            DatasetId::Worms => (258, 900),
            DatasetId::Words50 => (905, 270),
            DatasetId::RealEstate => (1777, 138),
            DatasetId::Haptics => (463, 1092),
        }
    }

    /// The fuzzy ShapeQueries of Table 11, in regex syntax.
    pub fn fuzzy_queries(self) -> &'static [&'static str] {
        match self {
            DatasetId::Weather => &[
                "[p=45][p=down][p=up][p=down]",
                "([p=up] | [p=down])[p=flat][p=up][p=down]",
                "[p=flat][p=up][p=down][p=flat]",
            ],
            DatasetId::Worms => &[
                "[p=down]([p=45] | [p=-20])[p=flat]",
                "[p=down][p=45][p=down]",
                "[p=up][p=down][p=up]",
            ],
            DatasetId::Words50 => &[
                "[p=down]([p=up] | ([p=flat][p=down]))",
                "[p=flat][p=up][p=down][p=flat]",
                "([p=up] | [p=down])([p=up] | [p=down])[p=flat]",
            ],
            DatasetId::RealEstate => &[
                "[p=flat][p=down][p=up][p=flat]",
                "[p=up][p=down][p=up][p=flat]",
                "[p=up][p=flat](([p=45][p=60]) | ([p=up][p=down]))",
            ],
            DatasetId::Haptics => &[
                "[p=up][p=down][p=flat][p=up]",
                "[p=down][p=up][p=down][p=flat]",
            ],
        }
    }

    /// The non-fuzzy (fully located) query of Table 11, in regex syntax.
    pub fn non_fuzzy_query(self) -> &'static str {
        match self {
            DatasetId::Weather => {
                "[p{down}, x.s=1, x.e=4][p{up}, x.s=4, x.e=10][p{down}, x.s=10, x.e=12]"
            }
            DatasetId::Worms => "[p{down}, x.s=50, x.e=100]",
            DatasetId::Words50 => "[p{down}, x.s=200, x.e=400][p{up}, x.s=800, x.e=850]",
            DatasetId::RealEstate => {
                "[p{down}, x.s=1, x.e=20][p{up}, x.s=20, x.e=60][p{down}, x.s=60, x.e=138]"
            }
            DatasetId::Haptics => "[p{up}, x.s=60, x.e=80]",
        }
    }

    /// Generates the dataset with the given seed.
    pub fn generate(self, seed: u64) -> Vec<Trendline> {
        match self {
            DatasetId::Weather => weather(seed),
            DatasetId::Worms => worms(seed),
            DatasetId::Words50 => words50(seed),
            DatasetId::RealEstate => real_estate(seed),
            DatasetId::Haptics => haptics(seed),
        }
    }
}

/// Shape motifs mixed into every dataset so each Table-11 query finds
/// matches. Each motif is a list of (width, delta) pieces.
fn motif_pool() -> Vec<Vec<(f64, f64)>> {
    vec![
        // up-down-up and inverses
        vec![(1.0, 1.0), (1.0, -1.0), (1.0, 1.0)],
        vec![(1.0, -1.0), (1.0, 1.0), (1.0, -1.0)],
        // flat-up-down-flat
        vec![(1.0, 0.0), (1.0, 1.0), (1.0, -1.0), (1.0, 0.0)],
        // 45°-down-up-down (the Weather fuzzy query)
        vec![(1.0, 1.0), (1.0, -0.8), (1.0, 0.8), (1.0, -1.0)],
        // down-45°-flat
        vec![(1.0, -1.0), (1.0, 1.0), (1.0, 0.0)],
        // down-(flat-down)
        vec![(1.0, -1.0), (1.0, 0.0), (1.0, -0.8)],
        // up-down-up-flat
        vec![(1.0, 1.0), (1.0, -1.0), (1.0, 1.0), (1.0, 0.0)],
        // flat-down-up-flat (Real Estate)
        vec![(1.0, 0.0), (1.0, -1.0), (1.0, 1.0), (1.0, 0.0)],
        // up-down-flat-up (Haptics)
        vec![(1.0, 1.0), (1.0, -1.0), (1.0, 0.0), (1.0, 1.0)],
        // down-up-down-flat (Haptics)
        vec![(1.0, -1.0), (1.0, 1.0), (1.0, -1.0), (1.0, 0.0)],
        // monotone rises/falls
        vec![(1.0, 1.5)],
        vec![(1.0, -1.5)],
        // near-flat noise
        vec![(1.0, 0.05)],
    ]
}

fn mixture(
    seed: u64,
    count: usize,
    length: usize,
    key_prefix: &str,
    x_hi: f64,
    noise: f64,
) -> Vec<Trendline> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = motif_pool();
    (0..count)
        .map(|i| {
            let motif = &pool[rng.random_range(0..pool.len())];
            // Random per-piece width jitter keeps break points diverse.
            let pieces: Vec<(f64, f64)> = motif
                .iter()
                .map(|&(w, d)| {
                    (
                        w * rng.random_range(0.6..1.6),
                        d * rng.random_range(0.7..1.3),
                    )
                })
                .collect();
            let ys = generators::piecewise(&mut rng, length, &pieces, noise);
            Trendline::from_pairs(
                format!("{key_prefix}{i}"),
                &generators::with_x_range(&ys, 0.0, x_hi),
            )
        })
        .collect()
}

/// Weather: 144 × 366, x in months `[0, 12]`; seasonal curves plus motif
/// mixtures (cities differ in phase and amplitude).
pub fn weather(seed: u64) -> Vec<Trendline> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(144);
    for i in 0..144 {
        let ys = if i % 3 == 0 {
            // Seasonal city: one annual cycle, random hemisphere phase.
            let phase = if rng.random_bool(0.5) {
                0.0
            } else {
                std::f64::consts::PI
            };
            let jitter = rng.random_range(-0.4..0.4);
            generators::seasonal(&mut rng, 366, 1.0, 10.0, phase + jitter, 0.8)
        } else {
            let pool = motif_pool();
            let motif = &pool[rng.random_range(0..pool.len())];
            generators::piecewise(&mut rng, 366, motif, 0.08)
        };
        out.push(Trendline::from_pairs(
            format!("city{i}"),
            &generators::with_x_range(&ys, 0.0, 12.0),
        ));
    }
    out
}

/// Worms: 258 × 900, x indices `[0, 899]`; random walks mixed with motifs.
pub fn worms(seed: u64) -> Vec<Trendline> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
    let mut out = mixture(seed, 172, 900, "worm", 899.0, 0.06);
    for i in 172..258 {
        let drift = rng.random_range(-0.02..0.02);
        let ys = generators::random_walk(&mut rng, 900, drift, 0.15);
        out.push(Trendline::from_pairs(
            format!("worm{i}"),
            &generators::with_index_x(&ys),
        ));
    }
    out
}

/// 50 Words: 905 × 270, x `[0, 1000]` (the paper's located query references
/// x up to 850).
pub fn words50(seed: u64) -> Vec<Trendline> {
    mixture(seed ^ 0x50, 905, 270, "word", 1000.0, 0.07)
}

/// Real Estate trendlines: 1777 × 138, x `[0, 138]` (months).
pub fn real_estate(seed: u64) -> Vec<Trendline> {
    mixture(seed ^ 0x11e, 1777, 138, "region", 138.0, 0.05)
}

/// Real Estate as a raw table with **multiple y values per x** (one row per
/// listing), exercising the aggregation path: "Real Estate dataset, unlike
/// the other dataset, has multiple y values per x coordinate, and hence
/// required aggregation (avg) before shape-matching".
pub fn real_estate_table(seed: u64, regions: usize) -> shapesearch_datastore::Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ab1e);
    let base = real_estate(seed);
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for t in base.iter().take(regions) {
        let mut rows = Vec::with_capacity(t.points.len() * 3);
        for p in &t.points {
            // 2–4 listings per month scattered around the regional level.
            for _ in 0..rng.random_range(2..=4) {
                rows.push((p.x, p.y + 0.02 * gauss(&mut rng)));
            }
        }
        series.push((t.key.clone(), rows));
    }
    shapesearch_datastore::table_from_series("region", "month", "price", &series)
}

/// Haptics: 463 × 1092, x indices.
pub fn haptics(seed: u64) -> Vec<Trendline> {
    mixture(seed ^ 0x4a7, 463, 1092, "gesture", 1091.0, 0.08)
}

/// Stock-chart dataset used by the examples and the task workloads: a mix
/// of chart patterns and random walks.
pub fn stocks(seed: u64, count: usize, length: usize) -> Vec<Trendline> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x570c);
    let patterns = [
        ChartPattern::DoubleTop,
        ChartPattern::HeadAndShoulders,
        ChartPattern::Cup,
        ChartPattern::WShape,
    ];
    (0..count)
        .map(|i| {
            let ys = if i % 2 == 0 {
                generators::chart_pattern(
                    &mut rng,
                    length,
                    patterns[(i / 2) % patterns.len()],
                    0.04,
                )
            } else {
                let drift = rng.random_range(-0.01..0.01);
                generators::random_walk(&mut rng, length, drift, 0.08)
            };
            Trendline::from_pairs(format!("stock{i}"), &generators::with_index_x(&ys))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapesearch_core::{SegmenterKind, ShapeEngine};
    use shapesearch_parser::parse_regex;

    #[test]
    fn shapes_match_table11() {
        for id in DatasetId::ALL {
            let (count, length) = id.shape();
            let data = id.generate(42);
            assert_eq!(data.len(), count, "{}", id.name());
            assert!(data.iter().all(|t| t.points.len() == length));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = weather(1);
        let b = weather(1);
        assert_eq!(a[0].points, b[0].points);
        let c = weather(2);
        assert_ne!(a[0].points, c[0].points);
    }

    #[test]
    fn queries_parse() {
        for id in DatasetId::ALL {
            for q in id.fuzzy_queries() {
                parse_regex(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
            let q = id.non_fuzzy_query();
            let parsed = parse_regex(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!parsed.is_fuzzy(), "{q} should be non-fuzzy");
        }
    }

    #[test]
    fn fuzzy_queries_have_enough_matches() {
        // The paper required ≥ 20 visualizations with score > 0 per query.
        // Check the smallest dataset (Weather) on its first query.
        let data = weather(42);
        let engine = ShapeEngine::from_trendlines(data).with_segmenter(SegmenterKind::SegmentTree);
        let q = parse_regex(DatasetId::Weather.fuzzy_queries()[0]).unwrap();
        let results = engine.top_k(&q, 144).unwrap();
        let positives = results.iter().filter(|r| r.score > 0.0).count();
        assert!(positives >= 20, "only {positives} positive matches");
    }

    #[test]
    fn real_estate_table_aggregates() {
        let table = real_estate_table(42, 5);
        // 5 regions × 138 months × 2..4 listings.
        assert!(table.num_rows() > 5 * 138);
        let spec = shapesearch_datastore::VisualSpec::new("region", "month", "price");
        let trends = shapesearch_datastore::extract(&table, &spec, &Default::default()).unwrap();
        assert_eq!(trends.len(), 5);
        assert!(trends.iter().all(|t| t.points.len() == 138));
    }

    #[test]
    fn stocks_have_chart_patterns() {
        let data = stocks(42, 20, 120);
        assert_eq!(data.len(), 20);
        let engine = ShapeEngine::from_trendlines(data);
        // W-shape query should match the W stocks strongly.
        let q = parse_regex("[p=down][p=up][p=down][p=up]").unwrap();
        let top = engine.top_k(&q, 3).unwrap();
        assert!(top[0].score > 0.4, "top score {}", top[0].score);
    }
}
