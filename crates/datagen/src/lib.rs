//! # shapesearch-datagen
//!
//! Seeded synthetic data for the ShapeSearch evaluation:
//!
//! * [`generators`] — trendline building blocks (piecewise motifs, random
//!   walks, seasonal curves, dips/ramps, chart patterns).
//! * [`table11`] — the five evaluation datasets of paper Table 11 with
//!   identical (#visualizations × length) shapes, plus the exact fuzzy and
//!   non-fuzzy queries issued over each.
//! * [`tasks`] — the seven Table-10 task categories with planted ground
//!   truth, powering the scoring-effectiveness experiment (Fig 9a, §7.3).
//!
//! All generation is deterministic given a seed; no file I/O or wall-clock
//! dependence anywhere.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generators;
pub mod table11;
pub mod tasks;

pub use table11::DatasetId;
pub use tasks::{Task, TaskKind};
