//! The seven pattern-matching task categories of paper Table 10, generated
//! with **known ground truth** so scoring effectiveness (Fig 9a's "Scoring
//! Function (DP)" series, §7.3) is measurable without human raters: each
//! task plants positives that exhibit the sought pattern and distractors
//! that do not.

use crate::generators::{self, gauss, ChartPattern};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use shapesearch_core::{Modifier, Pattern, ShapeQuery, ShapeSegment};
use shapesearch_datastore::Trendline;
use std::collections::BTreeSet;

/// Table-10 task categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// ET — exact trend matching.
    ExactTrend,
    /// SQ — sequence matching.
    Sequence,
    /// SP — sub-pattern (motif) matching.
    SubPattern,
    /// WS — width-specific matching.
    WidthSpecific,
    /// MXY — multiple x/y constraints.
    MultiConstraint,
    /// TC — trend characterization.
    TrendCharacterization,
    /// CS — complex shape matching.
    ComplexShape,
}

impl TaskKind {
    /// All seven tasks in Table-10 order.
    pub const ALL: [TaskKind; 7] = [
        TaskKind::ExactTrend,
        TaskKind::Sequence,
        TaskKind::SubPattern,
        TaskKind::WidthSpecific,
        TaskKind::MultiConstraint,
        TaskKind::TrendCharacterization,
        TaskKind::ComplexShape,
    ];

    /// The paper's symbol for the task.
    pub fn symbol(self) -> &'static str {
        match self {
            TaskKind::ExactTrend => "ET",
            TaskKind::Sequence => "SQ",
            TaskKind::SubPattern => "SP",
            TaskKind::WidthSpecific => "WS",
            TaskKind::MultiConstraint => "MXY",
            TaskKind::TrendCharacterization => "TC",
            TaskKind::ComplexShape => "CS",
        }
    }
}

/// A generated task instance: a collection, a query, and the gold positives.
#[derive(Debug, Clone)]
pub struct Task {
    /// Which Table-10 category this is.
    pub kind: TaskKind,
    /// The candidate visualizations.
    pub trendlines: Vec<Trendline>,
    /// The ShapeQuery expressing the task.
    pub query: ShapeQuery,
    /// Keys of the trendlines that truly exhibit the pattern.
    pub positives: BTreeSet<String>,
}

/// Generates one task instance. `n` is the collection size (≥ 12) and
/// `length` the trendline length.
pub fn generate(kind: TaskKind, n: usize, length: usize, seed: u64) -> Task {
    let mut rng = StdRng::seed_from_u64(seed ^ (kind.symbol().len() as u64) << 7 ^ kind as u64);
    let n = n.max(12);
    let n_pos = n / 4;
    let mut trendlines = Vec::with_capacity(n);
    let mut positives = BTreeSet::new();

    // Distractor: a drifting noisy walk, regenerated per index.
    let mut distractor = |rng: &mut StdRng, i: usize| {
        let drift = rng.random_range(-0.015..0.015);
        let ys = generators::random_walk(rng, length, drift, 0.12);
        Trendline::from_pairs(format!("neg{i}"), &generators::with_index_x(&ys))
    };

    let query: ShapeQuery = match kind {
        TaskKind::ExactTrend => {
            // Reference shape; positives are noisy clones.
            let reference = generators::piecewise(
                &mut rng,
                length,
                &[(1.0, 0.8), (1.0, -0.3), (1.0, 0.6)],
                0.0,
            );
            for i in 0..n_pos {
                let noisy: Vec<f64> = reference
                    .iter()
                    .map(|&y| y + 0.04 * gauss(&mut rng))
                    .collect();
                let key = format!("pos{i}");
                positives.insert(key.clone());
                trendlines.push(Trendline::from_pairs(
                    key,
                    &generators::with_index_x(&noisy),
                ));
            }
            for i in n_pos..n {
                trendlines.push(distractor(&mut rng, i));
            }
            ShapeQuery::Segment(ShapeSegment {
                sketch: Some(generators::with_index_x(&reference)),
                ..ShapeSegment::default()
            })
        }
        TaskKind::Sequence => {
            plant(
                &mut rng,
                &mut trendlines,
                &mut positives,
                n,
                n_pos,
                length,
                &[(1.0, 1.0), (1.0, 0.0), (1.0, -1.0)],
                &mut distractor,
            );
            shapesearch_parser::parse_regex("[p=up][p=flat][p=down]").expect("static query")
        }
        TaskKind::SubPattern => {
            // Positives contain exactly two peaks.
            for i in 0..n_pos {
                let ys = generators::piecewise(
                    &mut rng,
                    length,
                    &[(1.0, 1.0), (1.0, -1.0), (1.0, 1.0), (1.0, -1.0)],
                    0.03,
                );
                let key = format!("pos{i}");
                positives.insert(key.clone());
                trendlines.push(Trendline::from_pairs(key, &generators::with_index_x(&ys)));
            }
            // Distractors: monotone or single-peak.
            for i in n_pos..n {
                let ys = if i % 2 == 0 {
                    generators::piecewise(&mut rng, length, &[(1.0, 1.2)], 0.05)
                } else {
                    generators::piecewise(&mut rng, length, &[(1.0, 1.0), (1.0, -1.0)], 0.05)
                };
                trendlines.push(Trendline::from_pairs(
                    format!("neg{i}"),
                    &generators::with_index_x(&ys),
                ));
            }
            let peak = Pattern::Nested(Box::new(ShapeQuery::concat(vec![
                ShapeQuery::up(),
                ShapeQuery::down(),
            ])));
            ShapeQuery::Segment(ShapeSegment::pattern(peak).with_modifier(Modifier::exactly(2)))
        }
        TaskKind::WidthSpecific => {
            // Positives: a sharp ramp confined to a ~15% window.
            let w = (length as f64 * 0.15).round();
            for i in 0..n_pos {
                let mut ys = generators::random_walk(&mut rng, length, 0.0, 0.02);
                let start = rng.random_range(0.1..0.7);
                generators::inject_ramp(&mut ys, start, 0.15, 3.0);
                let key = format!("pos{i}");
                positives.insert(key.clone());
                trendlines.push(Trendline::from_pairs(key, &generators::with_index_x(&ys)));
            }
            for i in n_pos..n {
                // Slow-rise distractors: same net gain, spread out.
                let mut ys = generators::random_walk(&mut rng, length, 0.0, 0.02);
                generators::inject_ramp(&mut ys, 0.05, 0.9, 3.0);
                trendlines.push(Trendline::from_pairs(
                    format!("neg{i}"),
                    &generators::with_index_x(&ys),
                ));
            }
            ShapeQuery::Segment(ShapeSegment::pattern(Pattern::Up).with_width(w))
        }
        TaskKind::MultiConstraint => {
            // Rise in [10%, 30%] AND fall in [50%, 70%] of the x range.
            let (a, b) = (length as f64 * 0.1, length as f64 * 0.3);
            let (c, d) = (length as f64 * 0.5, length as f64 * 0.7);
            for i in 0..n_pos {
                let ys = generators::piecewise(
                    &mut rng,
                    length,
                    &[(0.1, 0.0), (0.2, 1.0), (0.2, 0.1), (0.2, -1.0), (0.3, 0.0)],
                    0.03,
                );
                let key = format!("pos{i}");
                positives.insert(key.clone());
                trendlines.push(Trendline::from_pairs(key, &generators::with_index_x(&ys)));
            }
            for i in n_pos..n {
                // Inverted placement: fall first, rise later.
                let ys = generators::piecewise(
                    &mut rng,
                    length,
                    &[(0.1, 0.0), (0.2, -1.0), (0.2, -0.1), (0.2, 1.0), (0.3, 0.0)],
                    0.03,
                );
                trendlines.push(Trendline::from_pairs(
                    format!("neg{i}"),
                    &generators::with_index_x(&ys),
                ));
            }
            ShapeQuery::concat(vec![
                ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, a, b)),
                ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Down, c, d)),
            ])
        }
        TaskKind::TrendCharacterization => {
            // A dominant "typical" seasonal shape vs outliers; the task is
            // to retrieve the typical members.
            let n_typical = (n * 7) / 10;
            for i in 0..n_typical {
                let ys = generators::piecewise(&mut rng, length, &[(1.0, 1.0), (1.0, -1.0)], 0.05);
                let key = format!("pos{i}");
                positives.insert(key.clone());
                trendlines.push(Trendline::from_pairs(key, &generators::with_index_x(&ys)));
            }
            for i in n_typical..n {
                trendlines.push(distractor(&mut rng, i));
            }
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()])
        }
        TaskKind::ComplexShape => {
            // Head-and-shoulders positives vs cup/walk distractors.
            for i in 0..n_pos {
                let ys = generators::chart_pattern(
                    &mut rng,
                    length,
                    ChartPattern::HeadAndShoulders,
                    0.03,
                );
                let key = format!("pos{i}");
                positives.insert(key.clone());
                trendlines.push(Trendline::from_pairs(key, &generators::with_index_x(&ys)));
            }
            for i in n_pos..n {
                let ys = if i % 2 == 0 {
                    generators::chart_pattern(&mut rng, length, ChartPattern::Cup, 0.03)
                } else {
                    generators::random_walk(&mut rng, length, 0.0, 0.1)
                };
                trendlines.push(Trendline::from_pairs(
                    format!("neg{i}"),
                    &generators::with_index_x(&ys),
                ));
            }
            shapesearch_parser::parse_regex("[p=up][p=down][p=up][p=down][p=up][p=down]")
                .expect("static query")
        }
    };

    Task {
        kind,
        trendlines,
        query,
        positives,
    }
}

/// Plants `n_pos` noisy instances of a piecewise motif among distractors.
#[allow(clippy::too_many_arguments)]
fn plant(
    rng: &mut StdRng,
    trendlines: &mut Vec<Trendline>,
    positives: &mut BTreeSet<String>,
    n: usize,
    n_pos: usize,
    length: usize,
    motif: &[(f64, f64)],
    distractor: &mut impl FnMut(&mut StdRng, usize) -> Trendline,
) {
    for i in 0..n_pos {
        let jittered: Vec<(f64, f64)> = motif
            .iter()
            .map(|&(w, d)| {
                (
                    w * rng.random_range(0.7..1.4),
                    d * rng.random_range(0.8..1.2),
                )
            })
            .collect();
        let ys = generators::piecewise(rng, length, &jittered, 0.04);
        let key = format!("pos{i}");
        positives.insert(key.clone());
        trendlines.push(Trendline::from_pairs(key, &generators::with_index_x(&ys)));
    }
    for i in n_pos..n {
        trendlines.push(distractor(rng, i));
    }
}

/// Precision@|positives|: the fraction of retrieved keys that are gold
/// positives when retrieving exactly as many results as there are
/// positives (the effectiveness metric for E7).
pub fn precision_at_gold(task: &Task, retrieved: &[String]) -> f64 {
    let k = task.positives.len().min(retrieved.len());
    if k == 0 {
        return 0.0;
    }
    let hits = retrieved[..k]
        .iter()
        .filter(|key| task.positives.contains(*key))
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapesearch_core::{EngineOptions, SegmenterKind, ShapeEngine};

    #[test]
    fn all_tasks_generate() {
        for kind in TaskKind::ALL {
            let t = generate(kind, 24, 64, 42);
            assert_eq!(t.trendlines.len(), 24, "{kind:?}");
            assert!(!t.positives.is_empty(), "{kind:?}");
            assert!(t.positives.len() <= t.trendlines.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TaskKind::Sequence, 20, 50, 7);
        let b = generate(TaskKind::Sequence, 20, 50, 7);
        assert_eq!(a.trendlines[0].points, b.trendlines[0].points);
    }

    #[test]
    fn dp_scoring_retrieves_sequence_positives() {
        // Single-instance precision is noisy here: under CONCAT-mean
        // scoring, DP can fit *any* trendline with a near-degenerate
        // (steep 2-point up, long flat middle, steep 2-point down)
        // segmentation scoring ≈0.9, so distractor random walks sit close
        // below the planted positives. Average over seeds and require the
        // retrieval to clearly beat the 0.25 random baseline — and check
        // that the optional minimum-segment-width term
        // (`ScoreParams::min_width_frac`), which exists precisely to
        // suppress those degenerate slivers, *widens* the score gap
        // between the planted positives and the distractors.
        let seeds = [1u64, 13, 42, 99, 123];
        let mut total = 0.0;
        let mut gap_off = 0.0;
        let mut gap_on = 0.0;
        for seed in seeds {
            let t = generate(TaskKind::Sequence, 24, 64, seed);
            let engine = ShapeEngine::from_trendlines(t.trendlines.clone())
                .with_segmenter(SegmenterKind::Dp);
            let results = engine.top_k(&t.query, t.positives.len()).unwrap();
            let keys: Vec<String> = results.into_iter().map(|r| r.key).collect();
            total += precision_at_gold(&t, &keys);

            // Positive-vs-distractor score gap, with the width term off
            // (the default) and on.
            let gap = |min_width_frac: f64| -> f64 {
                let mut options = EngineOptions {
                    segmenter: SegmenterKind::Dp,
                    ..EngineOptions::default()
                };
                options.params.min_width_frac = min_width_frac;
                let engine =
                    ShapeEngine::from_trendlines(t.trendlines.clone()).with_options(options);
                let all = engine.top_k(&t.query, t.trendlines.len()).unwrap();
                let (mut pos_sum, mut pos_n) = (0.0, 0u32);
                let (mut neg_sum, mut neg_n) = (0.0, 0u32);
                for r in &all {
                    if t.positives.contains(&r.key) {
                        pos_sum += r.score;
                        pos_n += 1;
                    } else {
                        neg_sum += r.score;
                        neg_n += 1;
                    }
                }
                pos_sum / f64::from(pos_n) - neg_sum / f64::from(neg_n)
            };
            gap_off += gap(0.0);
            gap_on += gap(0.1);
        }
        let mean = total / seeds.len() as f64;
        assert!(mean >= 0.7, "mean precision {mean}");
        let (gap_off, gap_on) = (gap_off / seeds.len() as f64, gap_on / seeds.len() as f64);
        assert!(
            gap_on > gap_off,
            "min-width term should widen the positive gap: off {gap_off:.4}, on {gap_on:.4}"
        );
    }

    #[test]
    fn dp_scoring_retrieves_width_positives() {
        let t = generate(TaskKind::WidthSpecific, 24, 80, 42);
        let engine =
            ShapeEngine::from_trendlines(t.trendlines.clone()).with_segmenter(SegmenterKind::Dp);
        let results = engine.top_k(&t.query, t.positives.len()).unwrap();
        let keys: Vec<String> = results.into_iter().map(|r| r.key).collect();
        let p = precision_at_gold(&t, &keys);
        assert!(p >= 0.6, "precision {p}");
    }

    #[test]
    fn precision_metric() {
        let t = generate(TaskKind::Sequence, 16, 40, 1);
        let all_pos: Vec<String> = t.positives.iter().cloned().collect();
        assert_eq!(precision_at_gold(&t, &all_pos), 1.0);
        let all_neg: Vec<String> = (0..t.positives.len()).map(|i| format!("neg{i}")).collect();
        assert_eq!(precision_at_gold(&t, &all_neg), 0.0);
    }
}
