//! Seeded synthetic trendline generators.
//!
//! These produce the shape vocabulary the paper's datasets exhibit:
//! piecewise-linear motifs with noise, random walks, seasonal curves,
//! luminosity-style dips, and the chart patterns the introduction motivates
//! (double top, head-and-shoulders, cup, W-shape). Everything is driven by a
//! caller-provided RNG so datasets are reproducible.

use rand::rngs::StdRng;
use rand::RngExt;

/// A standard-normal sample via Box–Muller (keeps the dependency surface to
/// `rand` alone).
pub fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A piecewise-linear series of `n` points: each `(width, delta)` piece
/// spans `width` (relative units, normalized over the total) and moves the
/// level by `delta`. Gaussian noise with standard deviation `noise` is
/// added per point.
pub fn piecewise(rng: &mut StdRng, n: usize, pieces: &[(f64, f64)], noise: f64) -> Vec<f64> {
    assert!(n >= 2 && !pieces.is_empty());
    let total_w: f64 = pieces.iter().map(|p| p.0).sum();
    let mut ys = Vec::with_capacity(n);
    let mut level = 0.0;
    // Cumulative piece boundaries in [0, 1].
    let mut bounds = Vec::with_capacity(pieces.len());
    let mut acc = 0.0;
    for &(w, _) in pieces {
        acc += w / total_w;
        bounds.push(acc);
    }
    let mut piece = 0usize;
    let mut prev_frac = 0.0;
    for i in 0..n {
        let frac = i as f64 / (n - 1) as f64;
        while piece + 1 < pieces.len() && frac > bounds[piece] {
            piece += 1;
        }
        let width_frac = if piece == 0 {
            bounds[0]
        } else {
            bounds[piece] - bounds[piece - 1]
        };
        let d_frac = frac - prev_frac;
        level += pieces[piece].1 * d_frac / width_frac.max(1e-9);
        prev_frac = frac;
        ys.push(level + noise * gauss(rng));
    }
    ys
}

/// A random walk with per-step `drift` and volatility `vol`.
pub fn random_walk(rng: &mut StdRng, n: usize, drift: f64, vol: f64) -> Vec<f64> {
    let mut ys = Vec::with_capacity(n);
    let mut level = 0.0;
    for _ in 0..n {
        ys.push(level);
        level += drift + vol * gauss(rng);
    }
    ys
}

/// A seasonal (sinusoidal) series: `cycles` full periods with the given
/// `amplitude`, `phase` (radians), and additive noise.
pub fn seasonal(
    rng: &mut StdRng,
    n: usize,
    cycles: f64,
    amplitude: f64,
    phase: f64,
    noise: f64,
) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1).max(1) as f64;
            amplitude * (2.0 * std::f64::consts::PI * cycles * t + phase).sin() + noise * gauss(rng)
        })
        .collect()
}

/// Injects a dip (e.g. a planet transit in a luminosity curve) centred at
/// `center` (fraction of the series) with the given relative `width` and
/// `depth`.
pub fn inject_dip(ys: &mut [f64], center: f64, width: f64, depth: f64) {
    let n = ys.len();
    for (i, y) in ys.iter_mut().enumerate() {
        let t = i as f64 / (n - 1).max(1) as f64;
        let d = (t - center).abs() / width.max(1e-9);
        if d < 1.0 {
            // Smooth V-shaped notch.
            *y -= depth * (1.0 - d);
        }
    }
}

/// Injects a sharp rise of `height` over `[start, start + width]`
/// (fractions of the series).
pub fn inject_ramp(ys: &mut [f64], start: f64, width: f64, height: f64) {
    let n = ys.len();
    for (i, y) in ys.iter_mut().enumerate() {
        let t = i as f64 / (n - 1).max(1) as f64;
        if t >= start {
            let progress = ((t - start) / width.max(1e-9)).min(1.0);
            *y += height * progress;
        }
    }
}

/// Chart-pattern motifs from the introduction's finance examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartPattern {
    /// Two peaks of similar height ("double top ... indicate future
    /// downtrends").
    DoubleTop,
    /// Three peaks with the middle one highest.
    HeadAndShoulders,
    /// A rounded bottom followed by recovery.
    Cup,
    /// Down-up-down-up.
    WShape,
}

/// Generates a chart-pattern series with noise.
pub fn chart_pattern(rng: &mut StdRng, n: usize, pattern: ChartPattern, noise: f64) -> Vec<f64> {
    let pieces: &[(f64, f64)] = match pattern {
        ChartPattern::DoubleTop => &[(1.0, 1.0), (1.0, -0.6), (1.0, 0.6), (1.0, -1.0)],
        ChartPattern::HeadAndShoulders => &[
            (1.0, 0.7),
            (0.7, -0.4),
            (1.0, 0.8),
            (1.0, -0.8),
            (0.7, 0.4),
            (1.0, -0.7),
        ],
        ChartPattern::Cup => &[(1.0, -0.8), (1.2, -0.15), (1.2, 0.15), (1.0, 0.8)],
        ChartPattern::WShape => &[(1.0, -0.8), (1.0, 0.5), (1.0, -0.5), (1.0, 0.8)],
    };
    piecewise(rng, n, pieces, noise)
}

/// Pairs a y series with 0-based integer x coordinates.
pub fn with_index_x(ys: &[f64]) -> Vec<(f64, f64)> {
    ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect()
}

/// Pairs a y series with x spanning `[lo, hi]` uniformly.
pub fn with_x_range(ys: &[f64], lo: f64, hi: f64) -> Vec<(f64, f64)> {
    let n = ys.len();
    ys.iter()
        .enumerate()
        .map(|(i, &y)| {
            let t = i as f64 / (n - 1).max(1) as f64;
            (lo + t * (hi - lo), y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn gauss_has_sane_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| gauss(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn piecewise_hits_target_deltas() {
        let mut r = rng();
        let ys = piecewise(&mut r, 101, &[(1.0, 2.0), (1.0, -1.0)], 0.0);
        assert_eq!(ys.len(), 101);
        assert!((ys[50] - 2.0).abs() < 0.1, "mid {}", ys[50]);
        assert!((ys[100] - 1.0).abs() < 0.1, "end {}", ys[100]);
    }

    #[test]
    fn piecewise_is_deterministic_per_seed() {
        let a = piecewise(&mut rng(), 50, &[(1.0, 1.0)], 0.2);
        let b = piecewise(&mut rng(), 50, &[(1.0, 1.0)], 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn random_walk_drift() {
        let mut r = rng();
        let ys = random_walk(&mut r, 2000, 0.5, 0.1);
        assert!(ys[1999] > 800.0, "end {}", ys[1999]);
    }

    #[test]
    fn seasonal_oscillates() {
        let mut r = rng();
        let ys = seasonal(&mut r, 200, 2.0, 1.0, 0.0, 0.0);
        let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 0.9 && min < -0.9);
    }

    #[test]
    fn dip_lowers_center() {
        let mut ys = vec![1.0; 101];
        inject_dip(&mut ys, 0.5, 0.1, 0.8);
        assert!((ys[50] - 0.2).abs() < 0.05);
        assert_eq!(ys[0], 1.0);
        assert_eq!(ys[100], 1.0);
    }

    #[test]
    fn ramp_raises_tail() {
        let mut ys = vec![0.0; 101];
        inject_ramp(&mut ys, 0.5, 0.2, 2.0);
        assert_eq!(ys[40], 0.0);
        assert!((ys[100] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn chart_patterns_have_expected_turning_points() {
        let mut r = rng();
        let w = chart_pattern(&mut r, 101, ChartPattern::WShape, 0.0);
        // W: low points near 25% and 75%.
        assert!(w[25] < w[0] && w[25] < w[50]);
        assert!(w[75] < w[50] && w[75] < w[100]);
        let dt = chart_pattern(&mut r, 101, ChartPattern::DoubleTop, 0.0);
        assert!(dt[25] > dt[0] && dt[25] > dt[50]);
        assert!(dt[75] > dt[50] && dt[75] > dt[100]);
    }

    #[test]
    fn x_pairing_helpers() {
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(with_index_x(&ys)[2], (2.0, 3.0));
        let ranged = with_x_range(&ys, 10.0, 20.0);
        assert_eq!(ranged[0].0, 10.0);
        assert_eq!(ranged[2].0, 20.0);
        assert_eq!(ranged[1].0, 15.0);
    }
}
