//! # shapesearch-crf
//!
//! A from-scratch **linear-chain conditional random field** (Lafferty et
//! al., the paper's reference \[25\]) plus a small rule-based
//! part-of-speech tagger. This is the machine
//! learning substrate behind ShapeSearch's natural-language parser (paper
//! §4): "given a sequence of non-noise words, we use a linear-chain
//! conditional-random field model (CRF) to predict their corresponding
//! entities".
//!
//! The paper used the Python CRF-Suite library; here the model family is
//! reimplemented natively:
//!
//! * sparse string features per token (interned into a [`Vocab`]),
//! * unary (feature × label), transition (label × label), and start/end
//!   potentials,
//! * exact inference via **forward–backward** in log space,
//! * maximum-likelihood training with **L2-regularised SGD** (the paper's
//!   L1/L2 settings are mirrored by [`TrainConfig`]), and an
//!   **averaged-perceptron** alternative,
//! * **Viterbi** decoding,
//! * evaluation helpers (token accuracy, per-label precision/recall/F1,
//!   k-fold cross-validation) used to reproduce the paper's reported
//!   F1 = 81% (P = 73%, R = 90%).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod eval;
mod model;
pub mod pos;
mod train;
mod vocab;

pub use eval::{cross_validate, evaluate, EvalReport, LabelMetrics};
pub use model::CrfModel;
pub use train::{train, TrainConfig, TrainMethod};
pub use vocab::Vocab;

/// A single training/decoding sequence: per-token sparse feature lists and
/// (for training) the gold label per token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    /// For each token, the list of active feature strings.
    pub features: Vec<Vec<String>>,
    /// Gold labels, one per token (empty for decode-only sequences).
    pub labels: Vec<String>,
}

impl Sequence {
    /// Creates a labeled sequence; feature and label lengths must match.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn new(features: Vec<Vec<String>>, labels: Vec<String>) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "feature rows and labels must align"
        );
        Self { features, labels }
    }

    /// Creates an unlabeled sequence for decoding.
    pub fn unlabeled(features: Vec<Vec<String>>) -> Self {
        Self {
            features,
            labels: Vec::new(),
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the sequence has no tokens.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_construction() {
        let s = Sequence::new(
            vec![vec!["w=a".into()], vec!["w=b".into()]],
            vec!["X".into(), "Y".into()],
        );
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        Sequence::new(vec![vec![]], vec![]);
    }
}
