//! A small rule-based part-of-speech tagger.
//!
//! The paper's NL parser classifies words as noise / non-noise "based on the
//! Part-of-Speech (POS) tags and word-level features" (§4) and uses POS tags
//! of neighbouring words as CRF features (Table 3). A full statistical POS
//! tagger is unnecessary for the shape-query vocabulary; a lexicon plus
//! suffix heuristics reproduces the behaviour the parser relies on
//! (determiner/preposition/stop-word detection, `ends(ing)` / `ends(ly)`
//! style cues, number detection).

/// Coarse POS tags, modeled after the Penn Treebank classes the paper's
/// feature table references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Noun.
    Noun,
    /// Verb (including gerunds like "rising").
    Verb,
    /// Adjective.
    Adjective,
    /// Adverb.
    Adverb,
    /// Cardinal number.
    Number,
    /// Determiner (a, the, ...).
    Determiner,
    /// Preposition (from, to, between, ...).
    Preposition,
    /// Conjunction / transition word (and, then, or, ...).
    Conjunction,
    /// Pronoun (me, that, ...).
    Pronoun,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl PosTag {
    /// Short name used when embedding the tag into CRF feature strings.
    pub fn name(self) -> &'static str {
        match self {
            PosTag::Noun => "NN",
            PosTag::Verb => "VB",
            PosTag::Adjective => "JJ",
            PosTag::Adverb => "RB",
            PosTag::Number => "CD",
            PosTag::Determiner => "DT",
            PosTag::Preposition => "IN",
            PosTag::Conjunction => "CC",
            PosTag::Pronoun => "PRP",
            PosTag::Punct => "PUNCT",
            PosTag::Other => "XX",
        }
    }
}

const DETERMINERS: &[&str] = &[
    "a", "an", "the", "this", "these", "those", "some", "any", "each", "every",
];
const PREPOSITIONS: &[&str] = &[
    "from", "to", "at", "in", "on", "of", "over", "within", "between", "during", "by", "until",
    "till", "after", "before", "around", "near", "above", "below", "across", "for", "with",
];
const CONJUNCTIONS: &[&str] = &[
    "and",
    "or",
    "then",
    "but",
    "followed",
    "next",
    "afterwards",
    "afterward",
    "finally",
    "later",
];
const PRONOUNS: &[&str] = &[
    "i", "me", "my", "we", "us", "our", "you", "your", "it", "its", "that", "which", "who", "them",
    "they",
];
const COMMON_VERBS: &[&str] = &[
    "show", "find", "search", "get", "give", "want", "is", "are", "was", "were", "be", "been",
    "has", "have", "had", "look", "display", "see", "going", "goes", "go", "stay", "stays",
    "remain", "remains", "start", "starts", "end", "ends",
];
const COMMON_ADJECTIVES: &[&str] = &[
    "sharp", "steep", "gradual", "slow", "fast", "rapid", "sudden", "high", "low", "flat",
    "stable", "steady", "constant", "maximum", "minimum", "double", "triple", "similar",
];
const COMMON_NOUNS: &[&str] = &[
    "peak",
    "peaks",
    "valley",
    "valleys",
    "trend",
    "trends",
    "pattern",
    "patterns",
    "shape",
    "shapes",
    "stock",
    "stocks",
    "gene",
    "genes",
    "city",
    "cities",
    "month",
    "months",
    "week",
    "weeks",
    "day",
    "days",
    "year",
    "years",
    "point",
    "points",
    "slope",
    "top",
    "bottom",
    "head",
    "shoulder",
    "shoulders",
    "cup",
    "dip",
    "dips",
    "spike",
    "spikes",
    "times",
    "time",
];

/// Tags a single lowercase token.
pub fn tag_word(word: &str) -> PosTag {
    let w = word.to_ascii_lowercase();
    if w.is_empty() {
        return PosTag::Other;
    }
    if w.chars().all(|c| c.is_ascii_punctuation()) {
        return PosTag::Punct;
    }
    if w.parse::<f64>().is_ok()
        || w.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '-')
    {
        return PosTag::Number;
    }
    let w = w.as_str();
    if DETERMINERS.contains(&w) {
        return PosTag::Determiner;
    }
    if PREPOSITIONS.contains(&w) {
        return PosTag::Preposition;
    }
    if CONJUNCTIONS.contains(&w) {
        return PosTag::Conjunction;
    }
    if PRONOUNS.contains(&w) {
        return PosTag::Pronoun;
    }
    if COMMON_VERBS.contains(&w) {
        return PosTag::Verb;
    }
    if COMMON_ADJECTIVES.contains(&w) {
        return PosTag::Adjective;
    }
    if COMMON_NOUNS.contains(&w) {
        return PosTag::Noun;
    }
    // Suffix heuristics.
    if w.ends_with("ing") {
        return PosTag::Verb;
    }
    if w.ends_with("ly") {
        return PosTag::Adverb;
    }
    if w.ends_with("ed") {
        return PosTag::Verb;
    }
    if w.ends_with("er") || w.ends_with("est") || w.ends_with("ous") || w.ends_with("ive") {
        return PosTag::Adjective;
    }
    if w.ends_with('s') || w.ends_with("ion") || w.ends_with("ity") || w.ends_with("ness") {
        return PosTag::Noun;
    }
    PosTag::Noun
}

/// Tags every token of a sentence.
pub fn tag_sentence(tokens: &[String]) -> Vec<PosTag> {
    tokens.iter().map(|t| tag_word(t)).collect()
}

/// True when the tag is one of the likely-noise classes the paper filters
/// out: "words ∈ {determiner, preposition, stop-words} are more likely to be
/// noise". Prepositions are *kept* despite being listed, because the paper's
/// own feature table uses space/time prepositions; the noise filter here
/// matches the entity classes that never carry entity information.
pub fn is_noise_tag(tag: PosTag) -> bool {
    matches!(tag, PosTag::Determiner | PosTag::Pronoun | PosTag::Punct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_hits() {
        assert_eq!(tag_word("the"), PosTag::Determiner);
        assert_eq!(tag_word("from"), PosTag::Preposition);
        assert_eq!(tag_word("and"), PosTag::Conjunction);
        assert_eq!(tag_word("me"), PosTag::Pronoun);
        assert_eq!(tag_word("show"), PosTag::Verb);
        assert_eq!(tag_word("sharp"), PosTag::Adjective);
        assert_eq!(tag_word("peak"), PosTag::Noun);
    }

    #[test]
    fn numbers() {
        assert_eq!(tag_word("42"), PosTag::Number);
        assert_eq!(tag_word("3.5"), PosTag::Number);
        assert_eq!(tag_word("-7"), PosTag::Number);
    }

    #[test]
    fn suffix_rules() {
        assert_eq!(tag_word("rising"), PosTag::Verb);
        assert_eq!(tag_word("sharply"), PosTag::Adverb);
        assert_eq!(tag_word("dropped"), PosTag::Verb);
        assert_eq!(tag_word("expressions"), PosTag::Noun);
    }

    #[test]
    fn punctuation_and_case() {
        assert_eq!(tag_word(","), PosTag::Punct);
        assert_eq!(tag_word("..."), PosTag::Punct);
        assert_eq!(tag_word("The"), PosTag::Determiner);
    }

    #[test]
    fn noise_classes() {
        assert!(is_noise_tag(PosTag::Determiner));
        assert!(is_noise_tag(PosTag::Punct));
        assert!(!is_noise_tag(PosTag::Verb));
        assert!(!is_noise_tag(PosTag::Preposition));
    }

    #[test]
    fn sentence_tagging() {
        let tokens: Vec<String> = ["show", "me", "genes", "rising", "sharply"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let tags = tag_sentence(&tokens);
        assert_eq!(
            tags,
            vec![
                PosTag::Verb,
                PosTag::Pronoun,
                PosTag::Noun,
                PosTag::Verb,
                PosTag::Adverb
            ]
        );
    }

    #[test]
    fn tag_names_are_stable() {
        assert_eq!(PosTag::Noun.name(), "NN");
        assert_eq!(PosTag::Number.name(), "CD");
    }
}
