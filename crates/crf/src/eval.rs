//! Evaluation: token accuracy, per-label precision/recall/F1, and k-fold
//! cross-validation — used to reproduce the paper's reported tagging quality
//! ("On cross-validation, the model had an F1 score of 81% (precision = 73%,
//! recall = 90%)").

use crate::model::CrfModel;
use crate::train::{train, TrainConfig};
use crate::Sequence;
use std::collections::BTreeMap;

/// Precision/recall/F1 for one label.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LabelMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl LabelMetrics {
    /// Precision = tp / (tp + fp); 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = tp / (tp + fn); 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Aggregate evaluation report.
#[derive(Debug, Clone, Default)]
pub struct EvalReport {
    /// Correct tokens.
    pub correct: usize,
    /// Total tokens.
    pub total: usize,
    /// Per-label counts, keyed by label name.
    pub per_label: BTreeMap<String, LabelMetrics>,
}

impl EvalReport {
    /// Token-level accuracy.
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct, self.total)
    }

    /// Macro-averaged precision over labels.
    pub fn macro_precision(&self) -> f64 {
        self.macro_avg(LabelMetrics::precision)
    }

    /// Macro-averaged recall over labels.
    pub fn macro_recall(&self) -> f64 {
        self.macro_avg(LabelMetrics::recall)
    }

    /// Macro-averaged F1 over labels.
    pub fn macro_f1(&self) -> f64 {
        self.macro_avg(LabelMetrics::f1)
    }

    fn macro_avg(&self, f: impl Fn(&LabelMetrics) -> f64) -> f64 {
        if self.per_label.is_empty() {
            return 0.0;
        }
        self.per_label.values().map(f).sum::<f64>() / self.per_label.len() as f64
    }

    fn merge(&mut self, other: &EvalReport) {
        self.correct += other.correct;
        self.total += other.total;
        for (label, m) in &other.per_label {
            let e = self.per_label.entry(label.clone()).or_default();
            e.tp += m.tp;
            e.fp += m.fp;
            e.fn_ += m.fn_;
        }
    }
}

/// Decodes each test sequence with `model` and scores against gold labels.
pub fn evaluate(model: &CrfModel, test: &[Sequence]) -> EvalReport {
    let mut report = EvalReport::default();
    for seq in test {
        let predicted = model.decode(seq);
        for (gold, pred) in seq.labels.iter().zip(&predicted) {
            report.total += 1;
            if gold == pred {
                report.correct += 1;
                report.per_label.entry(gold.clone()).or_default().tp += 1;
            } else {
                report.per_label.entry(pred.clone()).or_default().fp += 1;
                report.per_label.entry(gold.clone()).or_default().fn_ += 1;
            }
        }
    }
    report
}

/// K-fold cross-validation: trains on k−1 folds, evaluates on the held-out
/// fold, and merges the per-fold reports.
///
/// # Panics
/// Panics when `k < 2` or there are fewer sequences than folds.
pub fn cross_validate(data: &[Sequence], k: usize, config: TrainConfig) -> EvalReport {
    assert!(k >= 2, "cross-validation needs k >= 2");
    assert!(data.len() >= k, "need at least k sequences");
    let mut merged = EvalReport::default();
    for fold in 0..k {
        let mut train_set = Vec::new();
        let mut test_set = Vec::new();
        for (i, s) in data.iter().enumerate() {
            if i % k == fold {
                test_set.push(s.clone());
            } else {
                train_set.push(s.clone());
            }
        }
        let model = train(&train_set, config);
        merged.merge(&evaluate(&model, &test_set));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_arithmetic() {
        let m = LabelMetrics {
            tp: 8,
            fp: 2,
            fn_: 4,
        };
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 12.0).abs() < 1e-12);
        let f1 = m.f1();
        assert!(f1 > 0.72 && f1 < 0.73);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let m = LabelMetrics::default();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    fn corpus() -> Vec<Sequence> {
        // "up"-words are UP, "down"-words are DOWN — easily learnable.
        let mk = |words: &[&str], labels: &[&str]| {
            Sequence::new(
                words.iter().map(|w| vec![format!("w={w}")]).collect(),
                labels.iter().map(|s| (*s).to_owned()).collect(),
            )
        };
        vec![
            mk(&["rising", "falling"], &["UP", "DOWN"]),
            mk(&["increasing", "decreasing"], &["UP", "DOWN"]),
            mk(&["rising", "decreasing"], &["UP", "DOWN"]),
            mk(&["increasing", "falling"], &["UP", "DOWN"]),
            mk(&["falling", "rising"], &["DOWN", "UP"]),
            mk(&["decreasing", "increasing"], &["DOWN", "UP"]),
        ]
    }

    #[test]
    fn evaluate_perfect_model() {
        let model = train(&corpus(), TrainConfig::default());
        let report = evaluate(&model, &corpus());
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.macro_f1(), 1.0);
    }

    #[test]
    fn cross_validation_generalizes_on_easy_data() {
        let report = cross_validate(&corpus(), 3, TrainConfig::default());
        assert!(report.accuracy() >= 0.8, "accuracy {}", report.accuracy());
        assert_eq!(report.total, 12);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn cross_validation_rejects_k1() {
        cross_validate(&corpus(), 1, TrainConfig::default());
    }
}
