//! The linear-chain CRF model: parameters, log-space inference
//! (forward–backward), and Viterbi decoding.

use crate::vocab::Vocab;
use crate::Sequence;

/// A trained linear-chain CRF.
///
/// Scores factor as
/// `score(y | x) = start[y₀] + Σₜ unary(xₜ, yₜ) + Σₜ trans[yₜ][yₜ₊₁] + end[yₙ₋₁]`
/// with `unary(xₜ, y) = Σ_{f ∈ feats(xₜ)} w[f·L + y]`.
#[derive(Debug, Clone)]
pub struct CrfModel {
    pub(crate) features: Vocab,
    pub(crate) labels: Vocab,
    /// Unary weights, indexed `[feature_id * num_labels + label_id]`.
    pub(crate) unary: Vec<f64>,
    /// Transition weights, `[prev * num_labels + next]`.
    pub(crate) transition: Vec<f64>,
    /// Start-of-sequence weights per label.
    pub(crate) start: Vec<f64>,
    /// End-of-sequence weights per label.
    pub(crate) end: Vec<f64>,
}

impl CrfModel {
    pub(crate) fn new(features: Vocab, labels: Vocab) -> Self {
        let nl = labels.len();
        let nf = features.len();
        Self {
            features,
            labels,
            unary: vec![0.0; nf * nl],
            transition: vec![0.0; nl * nl],
            start: vec![0.0; nl],
            end: vec![0.0; nl],
        }
    }

    /// Number of labels the model predicts.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct unary features seen during training.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// The label names, in id order.
    pub fn label_names(&self) -> Vec<&str> {
        (0..self.labels.len() as u32)
            .map(|i| self.labels.name(i))
            .collect()
    }

    /// Maps a token's feature strings to known feature ids (unknown features
    /// are silently dropped — they carry zero weight anyway).
    pub(crate) fn feature_ids(&self, token: &[String]) -> Vec<u32> {
        token.iter().filter_map(|f| self.features.get(f)).collect()
    }

    /// Unary log-potential for a token (given resolved feature ids).
    pub(crate) fn unary_score(&self, feat_ids: &[u32], label: usize) -> f64 {
        let nl = self.num_labels();
        feat_ids
            .iter()
            .map(|&f| self.unary[f as usize * nl + label])
            .sum()
    }

    /// Per-token unary score matrix for a sequence, row-major `[t][label]`.
    pub(crate) fn unary_matrix(&self, seq: &Sequence) -> Vec<Vec<f64>> {
        seq.features
            .iter()
            .map(|tok| {
                let ids = self.feature_ids(tok);
                (0..self.num_labels())
                    .map(|l| self.unary_score(&ids, l))
                    .collect()
            })
            .collect()
    }

    /// Viterbi-decodes the most likely label sequence for `seq`.
    /// Returns an empty vector for an empty sequence.
    #[allow(clippy::needless_range_loop)] // indices span several DP tables
    pub fn decode(&self, seq: &Sequence) -> Vec<String> {
        let n = seq.len();
        let nl = self.num_labels();
        if n == 0 || nl == 0 {
            return Vec::new();
        }
        let unary = self.unary_matrix(seq);
        // delta[t][y]: best score of any path ending at label y at time t.
        let mut delta = vec![vec![f64::NEG_INFINITY; nl]; n];
        let mut back = vec![vec![0usize; nl]; n];
        for y in 0..nl {
            delta[0][y] = self.start[y] + unary[0][y];
        }
        for t in 1..n {
            for y in 0..nl {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                for prev in 0..nl {
                    let s = delta[t - 1][prev] + self.transition[prev * nl + y];
                    if s > best {
                        best = s;
                        arg = prev;
                    }
                }
                delta[t][y] = best + unary[t][y];
                back[t][y] = arg;
            }
        }
        let mut last = 0usize;
        let mut best = f64::NEG_INFINITY;
        for y in 0..nl {
            let s = delta[n - 1][y] + self.end[y];
            if s > best {
                best = s;
                last = y;
            }
        }
        let mut path = vec![0usize; n];
        path[n - 1] = last;
        for t in (1..n).rev() {
            path[t - 1] = back[t][path[t]];
        }
        path.iter()
            .map(|&y| self.labels.name(y as u32).to_owned())
            .collect()
    }

    /// Forward–backward pass. Returns (log α, log β, log Z).
    #[allow(clippy::needless_range_loop)] // indices span several DP tables
    pub(crate) fn forward_backward(
        &self,
        unary: &[Vec<f64>],
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, f64) {
        let n = unary.len();
        let nl = self.num_labels();
        let mut alpha = vec![vec![f64::NEG_INFINITY; nl]; n];
        let mut beta = vec![vec![f64::NEG_INFINITY; nl]; n];

        for y in 0..nl {
            alpha[0][y] = self.start[y] + unary[0][y];
        }
        let mut scratch = vec![0.0; nl];
        for t in 1..n {
            for y in 0..nl {
                for (prev, s) in scratch.iter_mut().enumerate() {
                    *s = alpha[t - 1][prev] + self.transition[prev * nl + y];
                }
                alpha[t][y] = log_sum_exp(&scratch) + unary[t][y];
            }
        }
        for y in 0..nl {
            beta[n - 1][y] = self.end[y];
        }
        for t in (0..n - 1).rev() {
            for y in 0..nl {
                for (next, s) in scratch.iter_mut().enumerate() {
                    *s = self.transition[y * nl + next] + unary[t + 1][next] + beta[t + 1][next];
                }
                beta[t][y] = log_sum_exp(&scratch);
            }
        }
        let log_z = log_sum_exp(
            &(0..nl)
                .map(|y| alpha[n - 1][y] + self.end[y])
                .collect::<Vec<_>>(),
        );
        (alpha, beta, log_z)
    }

    /// Log-likelihood of a labeled sequence under the model (label ids in
    /// model order). Useful for monitoring convergence and for tests.
    pub fn log_likelihood(&self, seq: &Sequence, label_ids: &[usize]) -> f64 {
        let unary = self.unary_matrix(seq);
        let (_, _, log_z) = self.forward_backward(&unary);
        let nl = self.num_labels();
        let n = seq.len();
        let mut score = self.start[label_ids[0]] + unary[0][label_ids[0]];
        for t in 1..n {
            score += self.transition[label_ids[t - 1] * nl + label_ids[t]] + unary[t][label_ids[t]];
        }
        score += self.end[label_ids[n - 1]];
        score - log_z
    }
}

/// Numerically stable log(Σ exp(xᵢ)).
pub(crate) fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> CrfModel {
        // Two labels A(0), B(1); two features f0, f1.
        let mut feats = Vocab::new();
        feats.intern("f0");
        feats.intern("f1");
        let mut labels = Vocab::new();
        labels.intern("A");
        labels.intern("B");
        let mut m = CrfModel::new(feats, labels);
        // f0 prefers A strongly; f1 prefers B.
        m.unary[0] = 2.0; // f0,A
        m.unary[1] = -1.0; // f0,B
        m.unary[2] = -1.0; // f1,A
        m.unary[3] = 2.0; // f1,B
        m
    }

    fn seq(tokens: &[&str]) -> Sequence {
        Sequence::unlabeled(tokens.iter().map(|t| vec![(*t).to_owned()]).collect())
    }

    #[test]
    fn decode_follows_unary_evidence() {
        let m = toy_model();
        let out = m.decode(&seq(&["f0", "f1", "f0"]));
        assert_eq!(out, vec!["A", "B", "A"]);
    }

    #[test]
    fn decode_empty_sequence() {
        let m = toy_model();
        assert!(m.decode(&Sequence::unlabeled(vec![])).is_empty());
    }

    #[test]
    fn unknown_features_are_ignored() {
        let m = toy_model();
        let out = m.decode(&seq(&["zzz"]));
        // With all-zero scores the argmax is the first label.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn transitions_can_override_unary() {
        let mut m = toy_model();
        let nl = 2;
        // Make A→B transition extremely unlikely.
        m.transition[nl] = 0.0; // B->A
        m.transition[1] = -100.0; // A->B
        let out = m.decode(&seq(&["f0", "f1"]));
        // Unary wants [A, B] but the transition forbids it; with f1's B
        // preference (+2) vs the -100 penalty, [A, A] wins.
        assert_eq!(out, vec!["A", "A"]);
    }

    #[test]
    fn log_z_upper_bounds_any_path_score() {
        let m = toy_model();
        let s = seq(&["f0", "f1"]);
        let unary = m.unary_matrix(&s);
        let (_, _, log_z) = m.forward_backward(&unary);
        let ll = m.log_likelihood(&s, &[0, 1]);
        assert!(ll <= 0.0, "log-likelihood must be non-positive, got {ll}");
        assert!(log_z.is_finite());
    }

    #[test]
    fn forward_backward_marginals_sum_to_one() {
        let m = toy_model();
        let s = seq(&["f0", "f1", "f0"]);
        let unary = m.unary_matrix(&s);
        let (alpha, beta, log_z) = m.forward_backward(&unary);
        for t in 0..3 {
            let total: f64 = (0..2)
                .map(|y| (alpha[t][y] + beta[t][y] - log_z).exp())
                .sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "marginals at t={t} sum to {total}"
            );
        }
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        // Huge magnitudes must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
    }
}
