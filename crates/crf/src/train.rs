//! CRF training: maximum likelihood with L2-regularised SGD (gradients via
//! forward–backward), or the simpler averaged structured perceptron.
//!
//! The paper trained with CRF-Suite using "L1 penalty: 1.0, L2 penalty:
//! 0.001, max iterations: 50". [`TrainConfig::default`] mirrors the L2 and
//! iteration settings (L1 is approximated by the truncated-gradient clip
//! in [`TrainConfig::l1`]).

use crate::model::CrfModel;
use crate::vocab::Vocab;
use crate::Sequence;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Optimisation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainMethod {
    /// L2-regularised stochastic gradient descent on the negative
    /// log-likelihood (exact gradients via forward–backward).
    #[default]
    Sgd,
    /// Averaged structured perceptron (Viterbi-based updates).
    Perceptron,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the data (paper: 50).
    pub max_iterations: usize,
    /// Initial SGD learning rate, decayed as `lr / (1 + epoch)`.
    pub learning_rate: f64,
    /// L2 regularisation strength (paper: 0.001).
    pub l2: f64,
    /// L1 truncation strength applied once per epoch (paper: 1.0; scaled by
    /// the learning rate internally).
    pub l1: f64,
    /// RNG seed for shuffling (training is fully deterministic given this).
    pub seed: u64,
    /// Optimiser.
    pub method: TrainMethod,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            learning_rate: 0.2,
            l2: 0.001,
            l1: 0.0,
            seed: 0x5ea9c4,
            method: TrainMethod::Sgd,
        }
    }
}

/// Trains a CRF on labeled sequences.
///
/// # Panics
/// Panics when `data` is empty or contains an empty/unlabeled sequence.
pub fn train(data: &[Sequence], config: TrainConfig) -> CrfModel {
    assert!(!data.is_empty(), "training data must be non-empty");
    for s in data {
        assert!(!s.is_empty(), "training sequences must be non-empty");
        assert_eq!(
            s.features.len(),
            s.labels.len(),
            "training sequences must be fully labeled"
        );
    }

    // Build vocabularies from the training data.
    let mut features = Vocab::new();
    let mut labels = Vocab::new();
    for s in data {
        for tok in &s.features {
            for f in tok {
                features.intern(f);
            }
        }
        for l in &s.labels {
            labels.intern(l);
        }
    }
    let mut model = CrfModel::new(features, labels);

    // Pre-intern per-sequence feature ids and label ids.
    let interned: Vec<(Vec<Vec<u32>>, Vec<usize>)> = data
        .iter()
        .map(|s| {
            let feats = s
                .features
                .iter()
                .map(|tok| model.feature_ids(tok))
                .collect();
            let labs = s
                .labels
                .iter()
                .map(|l| model.labels.get(l).expect("interned above") as usize)
                .collect();
            (feats, labs)
        })
        .collect();

    match config.method {
        TrainMethod::Sgd => train_sgd(&mut model, &interned, config),
        TrainMethod::Perceptron => train_perceptron(&mut model, &interned, config),
    }
    model
}

fn train_sgd(model: &mut CrfModel, data: &[(Vec<Vec<u32>>, Vec<usize>)], config: TrainConfig) {
    let nl = model.num_labels();
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);

    for epoch in 0..config.max_iterations {
        let lr = config.learning_rate / (1.0 + epoch as f64 * 0.1);
        order.shuffle(&mut rng);
        for &idx in &order {
            let (feats, labs) = &data[idx];
            sgd_step(model, feats, labs, lr, config.l2);
        }
        if config.l1 > 0.0 {
            // Truncated-gradient L1: clip weights toward zero once per epoch.
            let clip = config.l1 * lr / data.len() as f64;
            for w in model
                .unary
                .iter_mut()
                .chain(model.transition.iter_mut())
                .chain(model.start.iter_mut())
                .chain(model.end.iter_mut())
            {
                *w = if *w > clip {
                    *w - clip
                } else if *w < -clip {
                    *w + clip
                } else {
                    0.0
                };
            }
        }
        let _ = nl; // nl used below in sgd_step; silence unused in release
    }
}

/// One SGD step on a single sequence: gradient of the log-likelihood is
/// (empirical feature counts) − (expected feature counts under the model).
#[allow(clippy::needless_range_loop)] // indices span several DP tables
fn sgd_step(model: &mut CrfModel, feats: &[Vec<u32>], labs: &[usize], lr: f64, l2: f64) {
    let n = feats.len();
    let nl = model.num_labels();
    // Unary score matrix from interned ids.
    let unary: Vec<Vec<f64>> = feats
        .iter()
        .map(|ids| (0..nl).map(|l| model.unary_score(ids, l)).collect())
        .collect();
    let (alpha, beta, log_z) = model.forward_backward(&unary);

    // Per-token marginals P(yₜ = y).
    // Empirical − expected, applied directly with learning rate.
    for t in 0..n {
        for y in 0..nl {
            let marginal = (alpha[t][y] + beta[t][y] - log_z).exp();
            let empirical = if labs[t] == y { 1.0 } else { 0.0 };
            let g = empirical - marginal;
            if g == 0.0 {
                continue;
            }
            for &f in &feats[t] {
                let w = &mut model.unary[f as usize * nl + y];
                *w += lr * g;
            }
            if t == 0 {
                model.start[y] += lr * g;
            }
            if t == n - 1 {
                model.end[y] += lr * g;
            }
        }
    }
    // Pairwise marginals P(yₜ = a, yₜ₊₁ = b) for transitions.
    for t in 0..n.saturating_sub(1) {
        for a in 0..nl {
            for b in 0..nl {
                let lp =
                    alpha[t][a] + model.transition[a * nl + b] + unary[t + 1][b] + beta[t + 1][b]
                        - log_z;
                let marginal = lp.exp();
                let empirical = if labs[t] == a && labs[t + 1] == b {
                    1.0
                } else {
                    0.0
                };
                let g = empirical - marginal;
                if g != 0.0 {
                    model.transition[a * nl + b] += lr * g;
                }
            }
        }
    }
    // L2 shrinkage (proportional, applied per step scaled down by n to keep
    // the effective strength comparable across sequence lengths).
    if l2 > 0.0 {
        let shrink = 1.0 - lr * l2;
        for w in model
            .unary
            .iter_mut()
            .chain(model.transition.iter_mut())
            .chain(model.start.iter_mut())
            .chain(model.end.iter_mut())
        {
            *w *= shrink;
        }
    }
}

fn train_perceptron(
    model: &mut CrfModel,
    data: &[(Vec<Vec<u32>>, Vec<usize>)],
    config: TrainConfig,
) {
    let nl = model.num_labels();
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Averaged weights accumulate (weight * remaining updates) implicitly via
    // the "lazy" trick: keep a running sum of weights at each update.
    let mut sum_unary = vec![0.0; model.unary.len()];
    let mut sum_trans = vec![0.0; model.transition.len()];
    let mut sum_start = vec![0.0; model.start.len()];
    let mut sum_end = vec![0.0; model.end.len()];
    let mut updates = 0usize;

    for _ in 0..config.max_iterations {
        order.shuffle(&mut rng);
        for &idx in &order {
            let (feats, labs) = &data[idx];
            let predicted = viterbi_ids(model, feats);
            if &predicted != labs {
                // Promote gold path, demote predicted path.
                apply_path(model, feats, labs, 1.0);
                apply_path(model, feats, &predicted, -1.0);
            }
            // Accumulate for averaging.
            for (s, w) in sum_unary.iter_mut().zip(&model.unary) {
                *s += w;
            }
            for (s, w) in sum_trans.iter_mut().zip(&model.transition) {
                *s += w;
            }
            for (s, w) in sum_start.iter_mut().zip(&model.start) {
                *s += w;
            }
            for (s, w) in sum_end.iter_mut().zip(&model.end) {
                *s += w;
            }
            updates += 1;
        }
    }
    if updates > 0 {
        let inv = 1.0 / updates as f64;
        for (w, s) in model.unary.iter_mut().zip(&sum_unary) {
            *w = s * inv;
        }
        for (w, s) in model.transition.iter_mut().zip(&sum_trans) {
            *w = s * inv;
        }
        for (w, s) in model.start.iter_mut().zip(&sum_start) {
            *w = s * inv;
        }
        for (w, s) in model.end.iter_mut().zip(&sum_end) {
            *w = s * inv;
        }
    }
    let _ = nl;
}

/// Adds `sign` times the feature vector of a labeled path into the weights.
fn apply_path(model: &mut CrfModel, feats: &[Vec<u32>], labs: &[usize], sign: f64) {
    let nl = model.num_labels();
    let n = feats.len();
    for t in 0..n {
        for &f in &feats[t] {
            model.unary[f as usize * nl + labs[t]] += sign;
        }
    }
    for t in 0..n.saturating_sub(1) {
        model.transition[labs[t] * nl + labs[t + 1]] += sign;
    }
    model.start[labs[0]] += sign;
    model.end[labs[n - 1]] += sign;
}

/// Viterbi over interned feature ids, returning label ids.
#[allow(clippy::needless_range_loop)] // indices span several DP tables
fn viterbi_ids(model: &CrfModel, feats: &[Vec<u32>]) -> Vec<usize> {
    let n = feats.len();
    let nl = model.num_labels();
    if n == 0 {
        return Vec::new();
    }
    let unary: Vec<Vec<f64>> = feats
        .iter()
        .map(|ids| (0..nl).map(|l| model.unary_score(ids, l)).collect())
        .collect();
    let mut delta = vec![vec![f64::NEG_INFINITY; nl]; n];
    let mut back = vec![vec![0usize; nl]; n];
    for y in 0..nl {
        delta[0][y] = model.start[y] + unary[0][y];
    }
    for t in 1..n {
        for y in 0..nl {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0;
            for prev in 0..nl {
                let s = delta[t - 1][prev] + model.transition[prev * nl + y];
                if s > best {
                    best = s;
                    arg = prev;
                }
            }
            delta[t][y] = best + unary[t][y];
            back[t][y] = arg;
        }
    }
    let (mut last, mut best) = (0usize, f64::NEG_INFINITY);
    for y in 0..nl {
        let s = delta[n - 1][y] + model.end[y];
        if s > best {
            best = s;
            last = y;
        }
    }
    let mut path = vec![0usize; n];
    path[n - 1] = last;
    for t in (1..n).rev() {
        path[t - 1] = back[t][path[t]];
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy language: tokens "a" are labeled A, "b" labeled B, except a "b"
    /// right after an "a" is labeled "AB" — learnable only with transitions
    /// plus context features.
    fn toy_corpus() -> Vec<Sequence> {
        let mk = |words: &[&str], labels: &[&str]| {
            let feats = words
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let mut f = vec![format!("w={w}")];
                    if i > 0 {
                        f.push(format!("w-1={}", words[i - 1]));
                    }
                    f
                })
                .collect();
            Sequence::new(feats, labels.iter().map(|s| (*s).to_owned()).collect())
        };
        vec![
            mk(&["a", "b", "b"], &["A", "AB", "B"]),
            mk(&["b", "a", "b"], &["B", "A", "AB"]),
            mk(&["a", "a", "b"], &["A", "A", "AB"]),
            mk(&["b", "b", "a"], &["B", "B", "A"]),
            mk(&["a", "b", "a", "b"], &["A", "AB", "A", "AB"]),
        ]
    }

    #[test]
    fn sgd_learns_contextual_labels() {
        let model = train(&toy_corpus(), TrainConfig::default());
        let seq = Sequence::unlabeled(vec![
            vec!["w=a".into()],
            vec!["w=b".into(), "w-1=a".into()],
            vec!["w=b".into(), "w-1=b".into()],
        ]);
        assert_eq!(model.decode(&seq), vec!["A", "AB", "B"]);
    }

    #[test]
    fn perceptron_learns_contextual_labels() {
        let cfg = TrainConfig {
            method: TrainMethod::Perceptron,
            max_iterations: 20,
            ..TrainConfig::default()
        };
        let model = train(&toy_corpus(), cfg);
        let seq = Sequence::unlabeled(vec![
            vec!["w=b".into()],
            vec!["w=a".into(), "w-1=b".into()],
            vec!["w=b".into(), "w-1=a".into()],
        ]);
        assert_eq!(model.decode(&seq), vec!["B", "A", "AB"]);
    }

    #[test]
    fn training_is_deterministic() {
        let m1 = train(&toy_corpus(), TrainConfig::default());
        let m2 = train(&toy_corpus(), TrainConfig::default());
        assert_eq!(m1.unary, m2.unary);
        assert_eq!(m1.transition, m2.transition);
    }

    #[test]
    fn log_likelihood_improves_with_training() {
        let corpus = toy_corpus();
        let untrained = train(
            &corpus,
            TrainConfig {
                max_iterations: 0,
                ..TrainConfig::default()
            },
        );
        let trained = train(&corpus, TrainConfig::default());
        let labels: Vec<usize> = corpus[0]
            .labels
            .iter()
            .map(|l| trained.labels.get(l).unwrap() as usize)
            .collect();
        let ll_before = untrained.log_likelihood(&corpus[0], &labels);
        let ll_after = trained.log_likelihood(&corpus[0], &labels);
        assert!(
            ll_after > ll_before,
            "training should raise log-likelihood: {ll_before} -> {ll_after}"
        );
    }

    #[test]
    fn l1_clip_produces_sparser_weights() {
        let dense = train(&toy_corpus(), TrainConfig::default());
        let sparse = train(
            &toy_corpus(),
            TrainConfig {
                l1: 50.0,
                ..TrainConfig::default()
            },
        );
        let nnz = |w: &[f64]| w.iter().filter(|v| v.abs() > 1e-12).count();
        assert!(nnz(&sparse.unary) <= nnz(&dense.unary));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        train(&[], TrainConfig::default());
    }
}
