//! String interning for features and labels.

use std::collections::HashMap;

/// A bidirectional string ↔ id mapping. Ids are dense and start at 0.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Looks up an existing id without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        assert_ne!(a, b);
        assert_eq!(v.intern("alpha"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_without_insert() {
        let mut v = Vocab::new();
        v.intern("x");
        assert_eq!(v.get("x"), Some(0));
        assert_eq!(v.get("y"), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn name_round_trip() {
        let mut v = Vocab::new();
        let id = v.intern("hello");
        assert_eq!(v.name(id), "hello");
    }
}
