//! CRF crate integration tests: optimizer comparison, robustness to label
//! noise, and scaling behaviour of training.

use shapesearch_crf::{cross_validate, evaluate, train, Sequence, TrainConfig, TrainMethod};

/// A synthetic BIO-less tagging task: color words are COLOR, number words
/// NUM, everything else OTHER; a number after a color is SIZE (contextual).
fn corpus(n: usize, seed: u64) -> Vec<Sequence> {
    let colors = ["red", "green", "blue", "amber"];
    let numbers = ["one", "two", "three", "nine"];
    let fillers = ["the", "box", "holds", "very", "shiny", "things"];
    let mut out = Vec::new();
    let mut state = seed;
    let mut next = |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    for _ in 0..n {
        let len = 3 + next(5);
        let mut tokens: Vec<&str> = Vec::new();
        let mut labels: Vec<&str> = Vec::new();
        for _ in 0..len {
            match next(4) {
                0 => {
                    tokens.push(colors[next(colors.len())]);
                    labels.push("COLOR");
                }
                1 => {
                    let num = numbers[next(numbers.len())];
                    let after_color = labels.last() == Some(&"COLOR");
                    tokens.push(num);
                    labels.push(if after_color { "SIZE" } else { "NUM" });
                }
                _ => {
                    tokens.push(fillers[next(fillers.len())]);
                    labels.push("OTHER");
                }
            }
        }
        let feats = tokens
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let mut f = vec![format!("w={w}")];
                if i > 0 {
                    f.push(format!("w-1={}", tokens[i - 1]));
                }
                f
            })
            .collect();
        out.push(Sequence::new(
            feats,
            labels.into_iter().map(str::to_owned).collect(),
        ));
    }
    out
}

#[test]
fn sgd_and_perceptron_both_learn_contextual_task() {
    let data = corpus(120, 5);
    for method in [TrainMethod::Sgd, TrainMethod::Perceptron] {
        let cfg = TrainConfig {
            method,
            max_iterations: 30,
            ..TrainConfig::default()
        };
        let report = cross_validate(&data, 4, cfg);
        assert!(
            report.accuracy() > 0.9,
            "{method:?} accuracy {}",
            report.accuracy()
        );
    }
}

#[test]
fn training_tolerates_label_noise() {
    let mut data = corpus(150, 11);
    // Corrupt 10% of labels.
    let mut state = 77u64;
    for s in data.iter_mut() {
        for l in s.labels.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (state >> 33).is_multiple_of(10) {
                *l = "OTHER".into();
            }
        }
    }
    let clean_test = corpus(40, 123);
    let model = train(&data, TrainConfig::default());
    let report = evaluate(&model, &clean_test);
    assert!(
        report.accuracy() > 0.8,
        "noisy-trained accuracy {}",
        report.accuracy()
    );
}

#[test]
fn more_data_does_not_hurt() {
    let small = corpus(20, 3);
    let large = corpus(200, 3);
    let test = corpus(50, 999);
    let cfg = TrainConfig::default();
    let acc_small = evaluate(&train(&small, cfg), &test).accuracy();
    let acc_large = evaluate(&train(&large, cfg), &test).accuracy();
    assert!(
        acc_large >= acc_small - 0.05,
        "small {acc_small} vs large {acc_large}"
    );
    assert!(acc_large > 0.9);
}

#[test]
fn model_introspection() {
    let data = corpus(30, 1);
    let model = train(&data, TrainConfig::default());
    assert_eq!(model.num_labels(), 4);
    assert!(model.num_features() > 10);
    let mut names = model.label_names();
    names.sort_unstable();
    assert_eq!(names, vec!["COLOR", "NUM", "OTHER", "SIZE"]);
}
