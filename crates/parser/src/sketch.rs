//! The sketch parser (paper §2 "Sketching on Canvas" and §3 SKETCH):
//! converts a user-drawn stroke (pixel coordinates) into either a precise
//! ShapeQuery (`v=` vector matching) or a blurry pattern sequence
//! ("complex non-linear shapes [are represented] using multiple line
//! segments that ShapeSearch can automatically infer from the user-drawn
//! sketch").

use shapesearch_core::{Pattern, ShapeQuery, ShapeSegment};

/// The drawing canvas geometry and the data-domain ranges it maps onto.
#[derive(Debug, Clone, Copy)]
pub struct Canvas {
    /// Canvas width in pixels.
    pub width: f64,
    /// Canvas height in pixels.
    pub height: f64,
    /// Data-domain x range displayed on the canvas.
    pub x_domain: (f64, f64),
    /// Data-domain y range displayed on the canvas.
    pub y_domain: (f64, f64),
}

impl Canvas {
    /// Maps a pixel coordinate (origin top-left, y growing downward, the
    /// browser convention) into domain coordinates.
    pub fn to_domain(&self, px: f64, py: f64) -> (f64, f64) {
        let fx = (px / self.width).clamp(0.0, 1.0);
        let fy = 1.0 - (py / self.height).clamp(0.0, 1.0);
        (
            self.x_domain.0 + fx * (self.x_domain.1 - self.x_domain.0),
            self.y_domain.0 + fy * (self.y_domain.1 - self.y_domain.0),
        )
    }
}

/// Translates pixel points into domain points, dropping strokes that go
/// backwards in x (a trendline is a function of x).
pub fn pixels_to_domain(pixels: &[(f64, f64)], canvas: &Canvas) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(pixels.len());
    for &(px, py) in pixels {
        let (x, y) = canvas.to_domain(px, py);
        if out.last().is_none_or(|&(lx, _)| x > lx) {
            out.push((x, y));
        }
    }
    out
}

/// Builds a *precise* ShapeQuery from a sketch: the drawn vector is matched
/// by normalized L2 distance (§5.2).
pub fn sketch_to_precise_query(pixels: &[(f64, f64)], canvas: &Canvas) -> Option<ShapeQuery> {
    let points = pixels_to_domain(pixels, canvas);
    if points.len() < 2 {
        return None;
    }
    Some(ShapeQuery::Segment(ShapeSegment {
        sketch: Some(points),
        ..ShapeSegment::default()
    }))
}

/// A fitted line piece of the sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchPiece {
    /// Start index into the domain points.
    pub start: usize,
    /// End index (inclusive).
    pub end: usize,
    /// Fitted slope in canvas-normalized coordinates.
    pub slope: f64,
}

/// Builds a *blurry* ShapeQuery from a sketch: the stroke is simplified
/// into line pieces (bottom-up merging while the regression error stays
/// under `tolerance`, as a fraction of the y extent), and each piece maps
/// to up / down / flat by its canvas slope.
pub fn sketch_to_pattern_query(
    pixels: &[(f64, f64)],
    canvas: &Canvas,
    tolerance: f64,
) -> Option<ShapeQuery> {
    let domain = pixels_to_domain(pixels, canvas);
    let pieces = simplify(&domain, tolerance)?;
    let flat_band = 0.25; // |slope| below this (canvas units) reads as flat
    let parts: Vec<ShapeQuery> = pieces
        .iter()
        .map(|p| {
            let pattern = if p.slope > flat_band {
                Pattern::Up
            } else if p.slope < -flat_band {
                Pattern::Down
            } else {
                Pattern::Flat
            };
            ShapeQuery::pattern(pattern)
        })
        .collect();
    // Collapse adjacent identical patterns.
    let mut dedup: Vec<ShapeQuery> = Vec::with_capacity(parts.len());
    for p in parts {
        if dedup.last() != Some(&p) {
            dedup.push(p);
        }
    }
    Some(ShapeQuery::concat(dedup))
}

/// Bottom-up piecewise-linear simplification on canvas-normalized
/// coordinates. Starts from single intervals and repeatedly merges the
/// adjacent pair whose merged regression error is smallest, while that
/// error stays under `tolerance`.
pub fn simplify(domain_points: &[(f64, f64)], tolerance: f64) -> Option<Vec<SketchPiece>> {
    let n = domain_points.len();
    if n < 2 {
        return None;
    }
    // Normalize to the unit canvas so slopes and errors are perceptual.
    let (xs, ys) = normalize(domain_points);

    #[derive(Clone, Copy)]
    struct Piece {
        start: usize,
        end: usize,
    }
    let mut pieces: Vec<Piece> = (0..n - 1)
        .map(|i| Piece {
            start: i,
            end: i + 1,
        })
        .collect();

    let err_of = |start: usize, end: usize| -> f64 {
        // Max residual of the least-squares fit over [start, end].
        let pts: Vec<(f64, f64)> = (start..=end).map(|i| (xs[i], ys[i])).collect();
        let stats = shapesearch_core::SummaryStats::from_points(&pts);
        let (a, b) = (stats.slope(), stats.intercept());
        pts.iter()
            .map(|&(x, y)| (y - (a * x + b)).abs())
            .fold(0.0, f64::max)
    };

    loop {
        if pieces.len() <= 1 {
            break;
        }
        // Find the cheapest adjacent merge.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..pieces.len() - 1 {
            let e = err_of(pieces[i].start, pieces[i + 1].end);
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((i, e));
            }
        }
        let (i, e) = best.expect("non-empty");
        if e > tolerance {
            break;
        }
        pieces[i].end = pieces[i + 1].end;
        pieces.remove(i + 1);
    }

    Some(
        pieces
            .iter()
            .map(|p| {
                let pts: Vec<(f64, f64)> = (p.start..=p.end).map(|i| (xs[i], ys[i])).collect();
                SketchPiece {
                    start: p.start,
                    end: p.end,
                    slope: shapesearch_core::SummaryStats::from_points(&pts).slope(),
                }
            })
            .collect(),
    )
}

fn normalize(points: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    let xs = (x_hi - x_lo).max(f64::MIN_POSITIVE);
    let ys = (y_hi - y_lo).max(f64::MIN_POSITIVE);
    (
        points.iter().map(|&(x, _)| (x - x_lo) / xs).collect(),
        points.iter().map(|&(_, y)| (y - y_lo) / ys).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> Canvas {
        Canvas {
            width: 100.0,
            height: 100.0,
            x_domain: (0.0, 10.0),
            y_domain: (0.0, 1000.0),
        }
    }

    #[test]
    fn pixel_mapping_flips_y() {
        let c = canvas();
        // Top-left pixel = (x min, y max).
        assert_eq!(c.to_domain(0.0, 0.0), (0.0, 1000.0));
        assert_eq!(c.to_domain(100.0, 100.0), (10.0, 0.0));
        assert_eq!(c.to_domain(50.0, 50.0), (5.0, 500.0));
    }

    #[test]
    fn backwards_strokes_are_dropped() {
        let c = canvas();
        let stroke = [(0.0, 50.0), (10.0, 40.0), (5.0, 30.0), (20.0, 20.0)];
        let pts = pixels_to_domain(&stroke, &c);
        assert_eq!(pts.len(), 3); // the x-backwards point is removed
        assert!(pts.windows(2).all(|w| w[1].0 > w[0].0));
    }

    #[test]
    fn precise_query_carries_vector() {
        let c = canvas();
        let q = sketch_to_precise_query(&[(0.0, 100.0), (50.0, 0.0), (100.0, 100.0)], &c).unwrap();
        let ShapeQuery::Segment(s) = q else { panic!() };
        let v = s.sketch.unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], (5.0, 1000.0));
    }

    #[test]
    fn too_short_sketch_is_none() {
        let c = canvas();
        assert!(sketch_to_precise_query(&[(0.0, 0.0)], &c).is_none());
        assert!(sketch_to_pattern_query(&[], &c, 0.1).is_none());
    }

    #[test]
    fn v_stroke_becomes_down_up() {
        let c = canvas();
        // Pixel y grows downward: a "V" on screen.
        let stroke: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let x = i as f64 * 10.0;
                let y = if i <= 5 {
                    i as f64 * 18.0
                } else {
                    (10 - i) as f64 * 18.0
                };
                (x, y)
            })
            .collect();
        let q = sketch_to_pattern_query(&stroke, &c, 0.12).unwrap();
        assert_eq!(q.to_string(), "[p=down][p=up]");
    }

    #[test]
    fn rising_line_becomes_up() {
        let c = canvas();
        let stroke: Vec<(f64, f64)> = (0..=10)
            .map(|i| (i as f64 * 10.0, 100.0 - i as f64 * 10.0))
            .collect();
        let q = sketch_to_pattern_query(&stroke, &c, 0.1).unwrap();
        assert_eq!(q.to_string(), "[p=up]");
    }

    #[test]
    fn plateau_detected_as_flat() {
        let c = canvas();
        // Rise, then flat plateau.
        let mut stroke: Vec<(f64, f64)> = (0..=5)
            .map(|i| (i as f64 * 10.0, 100.0 - i as f64 * 18.0))
            .collect();
        stroke.extend((6..=10).map(|i| (i as f64 * 10.0, 10.0 + (i % 2) as f64)));
        let q = sketch_to_pattern_query(&stroke, &c, 0.15).unwrap();
        assert_eq!(q.to_string(), "[p=up][p=flat]");
    }

    #[test]
    fn simplify_fits_exact_lines() {
        let pts: Vec<(f64, f64)> = (0..=8)
            .map(|i| {
                let x = i as f64;
                let y = if i <= 4 { x } else { 8.0 - x };
                (x, y)
            })
            .collect();
        let pieces = simplify(&pts, 0.05).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].start, 0);
        assert_eq!(pieces[0].end, 4);
        assert_eq!(pieces[1].end, 8);
        assert!(pieces[0].slope > 0.0);
        assert!(pieces[1].slope < 0.0);
    }
}
