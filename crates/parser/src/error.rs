//! Parser error types.

use std::fmt;

/// Result alias for parsing operations.
pub type Result<T> = std::result::Result<T, ParseError>;

/// A parse failure with position information for front-end highlighting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Character offset where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
    /// The offending input (echoed for context).
    pub input: String,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(position: usize, message: String, input: String) -> Self {
        Self {
            position,
            message,
            input,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at position {}: {} (input: `{}`)",
            self.position, self.message, self.input
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_input() {
        let e = ParseError::new(3, "expected `]`".into(), "[p=".into());
        let s = e.to_string();
        assert!(s.contains("position 3"));
        assert!(s.contains("expected `]`"));
        assert!(s.contains("[p="));
    }
}
