//! # shapesearch-parser
//!
//! The three ShapeSearch query front-ends (paper §2), all producing
//! [`ShapeQuery`](shapesearch_core::ShapeQuery) ASTs:
//!
//! * [`parse_regex`] — the visual regular-expression language that "directly
//!   maps to the structured internal representation" (§3, Table 2 grammar).
//! * [`parse_natural_language`] — the NL pipeline of §4: POS-based noise
//!   filtering, CRF entity tagging (Table 3 features), synonym and
//!   semantic-similarity value resolution, CFG tree generation, and Table-4
//!   ambiguity resolution.
//! * [`sketch`] — pixel strokes to precise (`v=`) or blurry pattern queries.
//!
//! "The three interfaces can be used simultaneously and interchangeably, as
//! user needs and pattern complexities evolve."

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
pub mod nl;
mod regex;
pub mod sketch;

pub use error::{ParseError, Result};
pub use nl::{cross_validate_corpus, parse_natural_language, NlParser, ParsedNl};
pub use regex::parse_regex;
pub use sketch::{sketch_to_pattern_query, sketch_to_precise_query, Canvas};
