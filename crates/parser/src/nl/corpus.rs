//! Synthetic training corpus for the NL entity tagger.
//!
//! The paper "collected and tagged 250 natural language queries via
//! Mechanical Turk, where crowd workers were asked to describe patterns in
//! trendline visualizations using at most three sentences". That corpus is
//! not public; this module generates a comparable seeded corpus from
//! compositional templates over the same vocabulary (pattern clauses with
//! modifiers, location constraints, widths, counts, and operator
//! connectives), tagged with gold entity labels per token. The substitution
//! preserves the code path and the measurable: the CRF trains on noisy
//! paraphrased sentences and is cross-validated exactly as in §4.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// A gold-tagged sentence: tokens with one label each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedSentence {
    /// Lowercased tokens.
    pub tokens: Vec<String>,
    /// Gold label per token (`O` for noise).
    pub labels: Vec<String>,
}

impl TaggedSentence {
    fn push(&mut self, token: &str, label: &str) {
        self.tokens.push(token.to_owned());
        self.labels.push(label.to_owned());
    }

    fn push_noise(&mut self, phrase: &str) {
        for tok in phrase.split_whitespace() {
            self.push(tok, "O");
        }
    }
}

const LEADS: &[&str] = &[
    "show me",
    "find",
    "find me",
    "search for",
    "get",
    "display",
    "i want",
    "give me",
    "",
];
const SUBJECTS: &[&str] = &[
    "genes",
    "stocks",
    "cities",
    "products",
    "objects",
    "trendlines",
    "companies",
    "patients",
    "stars",
];
const LINKS: &[&str] = &["that are", "which are", "that", "with trends", ""];

const UP_WORDS: &[&str] = &[
    "rising",
    "increasing",
    "growing",
    "climbing",
    "going up",
    "improving",
];
const DOWN_WORDS: &[&str] = &[
    "falling",
    "decreasing",
    "declining",
    "dropping",
    "going down",
];
const FLAT_WORDS: &[&str] = &["flat", "stable", "steady", "constant", "plateauing"];
const SHARP_WORDS: &[&str] = &["sharply", "steeply", "rapidly", "quickly", "suddenly"];
const GRADUAL_WORDS: &[&str] = &["gradually", "slowly", "gently"];
const CONCATS: &[&str] = &[
    "then",
    "and then",
    "followed by",
    "next",
    "and later",
    "and",
];
const UNITS: &[&str] = &["months", "weeks", "days", "hours", "points"];

/// Generates `count` tagged sentences with the given seed.
pub fn generate(count: usize, seed: u64) -> Vec<TaggedSentence> {
    generate_noisy(count, seed, 0.08)
}

/// Generates `count` tagged sentences, perturbing a `typo_rate` fraction of
/// entity-bearing words with character-level typos and inserting occasional
/// filler words — approximating the messiness of the crowd-sourced queries
/// the paper's CRF was trained on.
pub fn generate_noisy(count: usize, seed: u64, typo_rate: f64) -> Vec<TaggedSentence> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut s = generate_one(&mut rng);
            perturb(&mut s, &mut rng, typo_rate);
            s
        })
        .collect()
}

const FILLERS: &[&str] = &[
    "really",
    "kind",
    "basically",
    "like",
    "maybe",
    "somewhat",
    "overall",
];

/// Pattern words deliberately absent from the synonym lexicon: the tagger
/// must label them from context alone (crowd workers used vocabulary far
/// beyond any fixed list).
const RARE_PATTERNS: &[&str] = &[
    "rebounding",
    "tumbling",
    "cresting",
    "sliding",
    "spiking",
    "moderating",
    "escalating",
    "collapsing",
    "drifting",
    "strengthening",
    "weakening",
    "flattening",
];

/// Applies typos to non-numeric tokens, swaps some pattern words for
/// out-of-lexicon vocabulary, and inserts fillers (labeled `O`).
fn perturb(s: &mut TaggedSentence, rng: &mut StdRng, typo_rate: f64) {
    for (tok, label) in s.tokens.iter_mut().zip(&s.labels) {
        if label == "PATTERN" && rng.random_bool(0.18) {
            *tok = (*RARE_PATTERNS.choose(rng).expect("non-empty")).to_owned();
        }
    }
    for tok in s.tokens.iter_mut() {
        if tok.len() >= 4 && tok.parse::<f64>().is_err() && rng.random_bool(typo_rate) {
            let mut chars: Vec<char> = tok.chars().collect();
            let i = rng.random_range(1..chars.len());
            match rng.random_range(0..3) {
                0 => {
                    chars.remove(i); // deletion
                }
                1 => chars.insert(i, chars[i - 1]), // duplication
                _ => chars.swap(i - 1, i),          // transposition
            }
            *tok = chars.into_iter().collect();
        }
    }
    if rng.random_bool(0.3) && !s.tokens.is_empty() {
        let pos = rng.random_range(0..=s.tokens.len());
        s.tokens
            .insert(pos, (*FILLERS.choose(rng).expect("non-empty")).to_owned());
        s.labels.insert(pos, "O".to_owned());
    }
}

fn generate_one(rng: &mut StdRng) -> TaggedSentence {
    let mut s = TaggedSentence {
        tokens: Vec::new(),
        labels: Vec::new(),
    };
    s.push_noise(LEADS.choose(rng).expect("non-empty"));
    s.push_noise(SUBJECTS.choose(rng).expect("non-empty"));
    s.push_noise(LINKS.choose(rng).expect("non-empty"));

    let clauses = rng.random_range(1..=3);
    for c in 0..clauses {
        if c > 0 {
            // Connective between clauses.
            let roll: f64 = rng.random();
            if roll < 0.72 {
                let conn = CONCATS.choose(rng).expect("non-empty");
                // Multi-word connectives: only the head word carries the label.
                let mut first = true;
                for tok in conn.split_whitespace() {
                    if first
                        && (tok == "then"
                            || tok == "followed"
                            || tok == "next"
                            || tok == "later"
                            || tok == "and")
                    {
                        // "and then": label "then", leave "and" as noise.
                        if conn.starts_with("and ") && tok == "and" {
                            s.push(tok, "O");
                        } else {
                            s.push(tok, "CONCAT");
                            first = false;
                        }
                    } else if first {
                        s.push(tok, "CONCAT");
                        first = false;
                    } else if tok == "then" || tok == "later" {
                        s.push(tok, "CONCAT");
                    } else {
                        s.push(tok, "O");
                    }
                }
            } else if roll < 0.88 {
                s.push("or", "OR");
            } else {
                s.push("while", "AND");
            }
        }
        clause(rng, &mut s);
    }
    s
}

/// One pattern clause: optional NOT, pattern word, optional modifier,
/// optional location/width/count attachments.
fn clause(rng: &mut StdRng, s: &mut TaggedSentence) {
    if rng.random_bool(0.08) {
        s.push("not", "NOT");
    }
    // Count prefix: "2 peaks" / "at least 2 peaks".
    if rng.random_bool(0.12) {
        if rng.random_bool(0.5) {
            s.push_noise(if rng.random_bool(0.5) {
                "at least"
            } else {
                "at most"
            });
        }
        let n: i32 = rng.random_range(2..=4);
        s.push(&n.to_string(), "COUNT");
        s.push(
            if rng.random_bool(0.5) {
                "peaks"
            } else {
                "dips"
            },
            "PATTERN",
        );
        return;
    }

    // Modifier before or after the pattern word.
    let modifier = if rng.random_bool(0.35) {
        Some(
            *(if rng.random_bool(0.6) {
                SHARP_WORDS
            } else {
                GRADUAL_WORDS
            })
            .choose(rng)
            .expect("non-empty"),
        )
    } else {
        None
    };
    let before = rng.random_bool(0.4);
    if let (Some(m), true) = (modifier, before) {
        s.push(m, "MODIFIER");
    }
    let pat = *[UP_WORDS, DOWN_WORDS, FLAT_WORDS]
        .choose(rng)
        .expect("non-empty")
        .choose(rng)
        .expect("non-empty");
    for (i, tok) in pat.split_whitespace().enumerate() {
        // "going up": the head verb is noise, the direction word carries it.
        if pat.contains(' ') && i == 0 {
            s.push(tok, "O");
        } else {
            s.push(tok, "PATTERN");
        }
    }
    if let (Some(m), false) = (modifier, before) {
        s.push(m, "MODIFIER");
    }

    // Optional attachments.
    match rng.random_range(0..10) {
        0 | 1 => {
            // x range: "from 2 to 5".
            let a: i32 = rng.random_range(0..50);
            let b: i32 = a + rng.random_range(1..50);
            s.push("from", "O");
            if rng.random_bool(0.3) {
                s.push("x", "O");
                s.push("=", "O");
            }
            s.push(&a.to_string(), "XS");
            s.push("to", "O");
            s.push(&b.to_string(), "XE");
        }
        2 => {
            // y range: "from y = 10 to y = 50".
            let a: i32 = rng.random_range(0..100);
            let b: i32 = rng.random_range(0..100);
            s.push("from", "O");
            s.push("y", "O");
            s.push("=", "O");
            s.push(&a.to_string(), "YS");
            s.push("to", "O");
            s.push("y", "O");
            s.push("=", "O");
            s.push(&b.to_string(), "YE");
        }
        3 => {
            // Width: "over 3 months" / "within a span of 6 weeks".
            let w: i32 = rng.random_range(2..12);
            if rng.random_bool(0.5) {
                s.push("over", "O");
            } else {
                s.push_noise("within a span of");
            }
            s.push(&w.to_string(), "WIDTH");
            s.push(UNITS.choose(rng).expect("non-empty"), "O");
        }
        4 => {
            // Count suffix: "twice" / "3 times".
            if rng.random_bool(0.5) {
                s.push("twice", "COUNT");
            } else {
                let n: i32 = rng.random_range(2..5);
                s.push(&n.to_string(), "COUNT");
                s.push("times", "O");
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(20, 7), generate(20, 7));
        assert_ne!(generate(20, 7), generate(20, 8));
    }

    #[test]
    fn tokens_and_labels_align() {
        for s in generate(100, 42) {
            assert_eq!(s.tokens.len(), s.labels.len());
            assert!(!s.tokens.is_empty());
        }
    }

    #[test]
    fn corpus_covers_all_entity_types() {
        let labels: BTreeSet<String> = generate(250, 42)
            .into_iter()
            .flat_map(|s| s.labels)
            .collect();
        for want in [
            "PATTERN", "MODIFIER", "CONCAT", "OR", "AND", "NOT", "XS", "XE", "YS", "YE", "WIDTH",
            "COUNT", "O",
        ] {
            assert!(labels.contains(want), "label {want} missing from corpus");
        }
    }

    #[test]
    fn every_sentence_has_a_pattern() {
        for s in generate(100, 1) {
            assert!(
                s.labels.iter().any(|l| l == "PATTERN"),
                "sentence without pattern: {:?}",
                s.tokens
            );
        }
    }
}
