//! ShapeQuery tree generation from tagged entities (paper §4), including
//! the Table-4 ambiguity resolution rules:
//!
//! 1. *Multiple `p` in one segment* → move one to an adjacent segment
//!    missing `p`, else split into two OR-ed segments.
//! 2. *Segment with `m` but no `p`* → move the `m` to an adjacent segment
//!    with `p` but no `m`, else drop it.
//! 3. *Conflicting `l` and `p`* → reinterpret the axis (x ↔ y) or swap the
//!    endpoints.
//! 4. *Overlapping segments under ⊗* → move x to y if free, else turn the
//!    CONCAT into an AND.

use crate::nl::lexicon::{resolve_modifier, resolve_pattern, ModifierWord, PatternWord};
use shapesearch_core::{Modifier, Pattern, ShapeQuery, ShapeSegment};

/// One tagged (token, label) pair from the CRF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// The surface token.
    pub token: String,
    /// The predicted entity label.
    pub label: String,
}

/// Operators between segment groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Concat,
    Or,
    And,
}

/// Intermediate segment under construction.
#[derive(Debug, Clone, Default)]
struct Draft {
    patterns: Vec<PatternWord>,
    modifier: Option<ModifierWord>,
    count: Option<(u32, CountKind)>,
    x_start: Option<f64>,
    x_end: Option<f64>,
    y_start: Option<f64>,
    y_end: Option<f64>,
    width: Option<f64>,
    negated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CountKind {
    Exact,
    AtLeast,
    AtMost,
}

impl Draft {
    fn is_empty(&self) -> bool {
        self.patterns.is_empty()
            && self.modifier.is_none()
            && self.count.is_none()
            && self.x_start.is_none()
            && self.x_end.is_none()
            && self.y_start.is_none()
            && self.y_end.is_none()
            && self.width.is_none()
    }
}

/// Output of translation: the query plus human-readable resolution notes
/// (surfaced in the correction panel, Figure 2 Box 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// The generated ShapeQuery.
    pub query: ShapeQuery,
    /// Notes describing each ambiguity resolution applied.
    pub notes: Vec<String>,
}

/// Translates a tagged entity sequence into a ShapeQuery.
///
/// Returns `None` when no pattern-bearing content is found.
pub fn translate(entities: &[Entity], raw_tokens: &[String]) -> Option<Translation> {
    let mut notes = Vec::new();

    // --- Group primitives between operators into draft segments.
    let mut groups: Vec<Draft> = vec![Draft::default()];
    let mut ops: Vec<Op> = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        let current = groups.last_mut().expect("non-empty");
        match e.label.as_str() {
            "PATTERN" => {
                if let Some(p) = resolve_pattern(&e.token) {
                    current.patterns.push(p);
                }
            }
            "MODIFIER" => {
                if let Some(m) = resolve_modifier(&e.token) {
                    match m {
                        ModifierWord::Count(n) => current.count = Some((n, CountKind::Exact)),
                        other => current.modifier = Some(other),
                    }
                }
            }
            "COUNT" => {
                let n = e
                    .token
                    .parse::<u32>()
                    .ok()
                    .or_else(|| match resolve_modifier(&e.token) {
                        Some(ModifierWord::Count(n)) => Some(n),
                        _ => None,
                    });
                if let Some(n) = n {
                    current.count = Some((n, count_kind(raw_tokens, &e.token)));
                }
            }
            "XS" => current.x_start = e.token.parse().ok(),
            "XE" => current.x_end = e.token.parse().ok(),
            "YS" => current.y_start = e.token.parse().ok(),
            "YE" => current.y_end = e.token.parse().ok(),
            "WIDTH" => current.width = e.token.parse().ok(),
            "NOT" => current.negated = true,
            "CONCAT" | "OR" | "AND" => {
                let op = match e.label.as_str() {
                    "OR" => Op::Or,
                    "AND" => Op::And,
                    _ => Op::Concat,
                };
                // Operators only split when the current group has content
                // ("either rising or falling": the leading OR-word opens
                // nothing).
                if !groups.last().expect("non-empty").is_empty() {
                    ops.push(op);
                    groups.push(Draft::default());
                } else {
                    let _ = i;
                }
            }
            _ => {}
        }
    }
    // Drop a trailing empty group from a dangling operator.
    while groups.len() > 1 && groups.last().is_some_and(Draft::is_empty) {
        groups.pop();
        ops.pop();
        notes.push("dropped dangling operator at end of query".into());
    }

    // --- Table-4 rule 1: multiple patterns in one segment. Runs before
    // rule 2 so an extra pattern can migrate into a modifier-only group
    // (the paper's "[increasing ... decreasing] next [sharply]" example).
    let mut i = 0;
    while i < groups.len() {
        while groups[i].patterns.len() > 1 {
            let extra = groups[i].patterns.pop().expect("len > 1");
            if i + 1 < groups.len() && groups[i + 1].patterns.is_empty() {
                groups[i + 1].patterns.push(extra);
                notes.push(format!(
                    "moved extra pattern from segment {} to segment {}",
                    i + 1,
                    i + 2
                ));
            } else {
                // Split: same constraints, alternative pattern, OR between.
                let mut alt = groups[i].clone();
                alt.patterns = vec![extra];
                groups.insert(i + 1, alt);
                ops.insert(i, Op::Or);
                notes.push(format!("split multi-pattern segment {} with OR", i + 1));
            }
        }
        i += 1;
    }

    // --- Table-4 rule 2: modifier with no pattern → move to a neighbour.
    // Counts are modifiers too ("3 times" without a pattern word).
    for i in 0..groups.len() {
        if groups[i].count.is_some() && groups[i].patterns.is_empty() {
            let c = groups[i].count.take().expect("checked");
            let neighbour = if i + 1 < groups.len()
                && !groups[i + 1].patterns.is_empty()
                && groups[i + 1].count.is_none()
            {
                Some(i + 1)
            } else if i > 0 && !groups[i - 1].patterns.is_empty() && groups[i - 1].count.is_none() {
                Some(i - 1)
            } else {
                None
            };
            match neighbour {
                Some(j) => {
                    groups[j].count = Some(c);
                    notes.push(format!("moved dangling count to segment {}", j + 1));
                }
                None => notes.push("ignored count without a pattern".into()),
            }
        }
        if groups[i].modifier.is_some() && groups[i].patterns.is_empty() {
            let m = groups[i].modifier.take().expect("checked");
            let neighbour = if i + 1 < groups.len()
                && !groups[i + 1].patterns.is_empty()
                && groups[i + 1].modifier.is_none()
            {
                Some(i + 1)
            } else if i > 0
                && !groups[i - 1].patterns.is_empty()
                && groups[i - 1].modifier.is_none()
            {
                Some(i - 1)
            } else {
                None
            };
            match neighbour {
                Some(j) => {
                    groups[j].modifier = Some(m);
                    notes.push(format!("moved dangling modifier to segment {}", j + 1));
                }
                None => notes.push("ignored modifier without a pattern".into()),
            }
        }
    }

    // Remove groups that remained entirely empty.
    let mut g = 0;
    while g < groups.len() {
        if groups[g].is_empty() && groups.len() > 1 {
            groups.remove(g);
            let op_idx = g.min(ops.len().saturating_sub(1));
            if !ops.is_empty() {
                ops.remove(op_idx);
            }
        } else {
            g += 1;
        }
    }

    // --- Table-4 rule 3: conflicting location and pattern.
    for (gi, d) in groups.iter_mut().enumerate() {
        if let (Some(a), Some(b)) = (d.x_start, d.x_end) {
            if a > b {
                let dir = d.patterns.first().copied();
                let y_free = d.y_start.is_none() && d.y_end.is_none();
                if y_free && matches!(dir, Some(PatternWord::Down)) {
                    // "decreasing from 8 to 0": those were y values.
                    d.y_start = Some(a);
                    d.y_end = Some(b);
                    d.x_start = None;
                    d.x_end = None;
                    notes.push(format!(
                        "reinterpreted inverted x range of segment {} as y values",
                        gi + 1
                    ));
                } else {
                    d.x_start = Some(b);
                    d.x_end = Some(a);
                    notes.push(format!("swapped inverted x range of segment {}", gi + 1));
                }
            }
        }
        if let (Some(a), Some(b)) = (d.y_start, d.y_end) {
            let conflict = match d.patterns.first() {
                Some(PatternWord::Up) => a > b,
                Some(PatternWord::Down) => a < b,
                _ => false,
            };
            if conflict {
                if d.x_start.is_none() && d.x_end.is_none() && a < b {
                    // Rising x-looking values mis-tagged as y.
                    d.x_start = Some(a);
                    d.x_end = Some(b);
                    d.y_start = None;
                    d.y_end = None;
                    notes.push(format!(
                        "reinterpreted conflicting y range of segment {} as x values",
                        gi + 1
                    ));
                } else {
                    d.y_start = Some(b);
                    d.y_end = Some(a);
                    notes.push(format!(
                        "swapped conflicting y endpoints of segment {}",
                        gi + 1
                    ));
                }
            }
        }
    }

    // --- Table-4 rule 4: overlapping CONCAT segments.
    for gi in 0..groups.len().saturating_sub(1) {
        if ops.get(gi) != Some(&Op::Concat) {
            continue;
        }
        let (Some(e1), Some(s2)) = (groups[gi].x_end, groups[gi + 1].x_start) else {
            continue;
        };
        if s2 < e1 {
            if groups[gi + 1].y_start.is_none() && groups[gi + 1].y_end.is_none() {
                let (a, b) = (groups[gi + 1].x_start.take(), groups[gi + 1].x_end.take());
                groups[gi + 1].y_start = a;
                groups[gi + 1].y_end = b;
                notes.push(format!(
                    "reinterpreted overlapping x range of segment {} as y values",
                    gi + 2
                ));
            } else {
                ops[gi] = Op::And;
                notes.push(format!(
                    "replaced CONCAT between overlapping segments {} and {} with AND",
                    gi + 1,
                    gi + 2
                ));
            }
        }
    }

    // --- Build the AST: fold groups left-to-right; OR binds loosest.
    let built: Vec<(Option<Op>, ShapeQuery)> = groups
        .iter()
        .enumerate()
        .filter_map(|(gi, d)| build_segment(d).map(|q| (gi.checked_sub(1).map(|j| ops[j]), q)))
        .collect();
    if built.is_empty() {
        return None;
    }

    // Split on OR into alternatives of CONCAT/AND runs.
    let mut alternatives: Vec<Vec<(Op, ShapeQuery)>> = vec![Vec::new()];
    for (op, q) in built {
        match op {
            Some(Op::Or) => alternatives.push(vec![(Op::Concat, q)]),
            Some(o) => alternatives.last_mut().expect("non-empty").push((o, q)),
            None => alternatives
                .last_mut()
                .expect("non-empty")
                .push((Op::Concat, q)),
        }
    }
    let alt_queries: Vec<ShapeQuery> = alternatives
        .into_iter()
        .filter(|run| !run.is_empty())
        .map(|run| {
            // Fold a run: AND joins the previous element, CONCAT appends.
            let mut parts: Vec<ShapeQuery> = Vec::new();
            for (op, q) in run {
                if op == Op::And && !parts.is_empty() {
                    let prev = parts.pop().expect("non-empty");
                    parts.push(ShapeQuery::And(vec![prev, q]));
                } else {
                    parts.push(q);
                }
            }
            ShapeQuery::concat(parts)
        })
        .collect();

    let query = if alt_queries.len() == 1 {
        alt_queries.into_iter().next().expect("one")
    } else {
        ShapeQuery::Or(alt_queries)
    };
    Some(Translation { query, notes })
}

/// Determines the quantifier kind by scanning the raw sentence for
/// "least"/"most" near the count word.
fn count_kind(raw_tokens: &[String], count_token: &str) -> CountKind {
    if let Some(i) = raw_tokens.iter().position(|t| t == count_token) {
        let lo = i.saturating_sub(3);
        for t in &raw_tokens[lo..i] {
            if t == "least" || t == "minimum" {
                return CountKind::AtLeast;
            }
            if t == "most" || t == "maximum" {
                return CountKind::AtMost;
            }
        }
    }
    CountKind::Exact
}

/// Materializes a draft into a ShapeQuery node.
fn build_segment(d: &Draft) -> Option<ShapeQuery> {
    if d.is_empty() {
        return None;
    }
    let pattern: Option<Pattern> = d.patterns.first().map(|p| match p {
        PatternWord::Up => Pattern::Up,
        PatternWord::Down => Pattern::Down,
        PatternWord::Flat => Pattern::Flat,
        PatternWord::Peak => Pattern::Nested(Box::new(ShapeQuery::concat(vec![
            ShapeQuery::up(),
            ShapeQuery::down(),
        ]))),
        PatternWord::Valley => Pattern::Nested(Box::new(ShapeQuery::concat(vec![
            ShapeQuery::down(),
            ShapeQuery::up(),
        ]))),
    });

    let modifier = match (d.count, d.modifier) {
        (Some((n, kind)), _) => Some(match kind {
            CountKind::Exact => Modifier::exactly(n),
            CountKind::AtLeast => Modifier::at_least(n),
            CountKind::AtMost => Modifier::at_most(n),
        }),
        (None, Some(ModifierWord::Sharp)) => Some(Modifier::MuchMore),
        (None, Some(ModifierWord::Gradual)) => Some(Modifier::More(None)),
        (None, Some(ModifierWord::Count(n))) => Some(Modifier::exactly(n)),
        (None, None) => None,
    };

    let mut seg = ShapeSegment {
        pattern,
        modifier,
        ..ShapeSegment::default()
    };
    seg.location.x_start = d.x_start;
    seg.location.x_end = d.x_end;
    seg.location.y_start = d.y_start;
    seg.location.y_end = d.y_end;
    if let Some(w) = d.width {
        seg.iterator = Some(shapesearch_core::IteratorSpec { width: w });
    }
    let q = ShapeQuery::Segment(seg);
    Some(if d.negated {
        ShapeQuery::Not(Box::new(q))
    } else {
        q
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(pairs: &[(&str, &str)]) -> Vec<Entity> {
        pairs
            .iter()
            .map(|&(t, l)| Entity {
                token: t.into(),
                label: l.into(),
            })
            .collect()
    }

    fn raw(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn simple_sequence() {
        let t = translate(
            &ent(&[
                ("rising", "PATTERN"),
                ("then", "CONCAT"),
                ("falling", "PATTERN"),
            ]),
            &raw(&["rising", "then", "falling"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=up][p=down]");
        assert!(t.notes.is_empty());
    }

    #[test]
    fn modifier_attaches() {
        let t = translate(
            &ent(&[("rising", "PATTERN"), ("sharply", "MODIFIER")]),
            &raw(&["rising", "sharply"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=up, m=>>]");
    }

    #[test]
    fn locations_and_width() {
        let t = translate(
            &ent(&[("rising", "PATTERN"), ("2", "XS"), ("5", "XE")]),
            &raw(&["rising", "from", "2", "to", "5"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[x.s=2, x.e=5, p=up]");
        let t = translate(
            &ent(&[("rising", "PATTERN"), ("3", "WIDTH")]),
            &raw(&["rising", "over", "3", "months"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[x.s=., x.e=.+3, p=up]");
    }

    #[test]
    fn counts_with_kinds() {
        let t = translate(
            &ent(&[("2", "COUNT"), ("peaks", "PATTERN")]),
            &raw(&["at", "least", "2", "peaks"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=[[p=up][p=down]], m={2,}]");
        let t = translate(
            &ent(&[("2", "COUNT"), ("peaks", "PATTERN")]),
            &raw(&["2", "peaks"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=[[p=up][p=down]], m=2]");
    }

    #[test]
    fn or_and_not() {
        let t = translate(
            &ent(&[("rising", "PATTERN"), ("or", "OR"), ("falling", "PATTERN")]),
            &raw(&["rising", "or", "falling"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=up] | [p=down]");
        let t = translate(
            &ent(&[("not", "NOT"), ("flat", "PATTERN")]),
            &raw(&["not", "flat"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "![p=flat]");
    }

    #[test]
    fn rule1_multiple_patterns_move_to_empty_neighbour() {
        // [rising falling] [then sharply]: the second group has a modifier
        // but no pattern — rule 1 moves "falling" right, rule 2 is then
        // unnecessary.
        let t = translate(
            &ent(&[
                ("rising", "PATTERN"),
                ("falling", "PATTERN"),
                ("then", "CONCAT"),
                ("sharply", "MODIFIER"),
            ]),
            &raw(&["rising", "falling", "then", "sharply"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=up][p=down, m=>>]");
        assert!(!t.notes.is_empty());
    }

    #[test]
    fn rule1_split_with_or_when_no_neighbour() {
        let t = translate(
            &ent(&[("rising", "PATTERN"), ("falling", "PATTERN")]),
            &raw(&["rising", "falling"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[p=up] | [p=down]");
        assert!(t.notes.iter().any(|n| n.contains("OR")));
    }

    #[test]
    fn rule2_dangling_modifier_dropped_when_no_home() {
        let t = translate(&ent(&[("sharply", "MODIFIER")]), &raw(&["sharply"]));
        // A modifier alone yields no usable segment.
        assert!(t.is_none() || t.unwrap().query.segments().is_empty());
    }

    #[test]
    fn rule3_inverted_x_range() {
        // "decreasing from 8 to 0": inverted x with a down pattern → y.
        let t = translate(
            &ent(&[("decreasing", "PATTERN"), ("8", "XS"), ("0", "XE")]),
            &raw(&["decreasing", "from", "8", "to", "0"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[y.s=8, y.e=0, p=down]");
        // Inverted x with an up pattern → swap instead.
        let t = translate(
            &ent(&[("rising", "PATTERN"), ("9", "XS"), ("4", "XE")]),
            &raw(&["rising", "from", "9", "to", "4"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[x.s=4, x.e=9, p=up]");
    }

    #[test]
    fn rule3_conflicting_y_direction() {
        // "increasing from y=10 to y=5" (the paper's semantic ambiguity
        // example): y endpoints conflict with up → swap.
        let t = translate(
            &ent(&[("increasing", "PATTERN"), ("10", "YS"), ("5", "YE")]),
            &raw(&["increasing", "from", "y", "10", "to", "y", "5"]),
        )
        .unwrap();
        assert_eq!(t.query.to_string(), "[y.s=5, y.e=10, p=up]");
    }

    #[test]
    fn rule4_overlapping_concat() {
        // up [4,8] then down [8,0]: rule 3 first turns the inverted second
        // range into y values; rule 4 checks the survivors.
        let t = translate(
            &ent(&[
                ("increasing", "PATTERN"),
                ("4", "XS"),
                ("8", "XE"),
                ("then", "CONCAT"),
                ("decreasing", "PATTERN"),
                ("8", "XS"),
                ("0", "XE"),
            ]),
            &raw(&[
                "increasing",
                "from",
                "4",
                "to",
                "8",
                "then",
                "decreasing",
                "from",
                "8",
                "to",
                "0",
            ]),
        )
        .unwrap();
        let s = t.query.to_string();
        assert!(
            s.contains("y.s=8, y.e=0") || s.contains("&"),
            "expected rule-3/4 rewrite, got {s}"
        );
    }

    #[test]
    fn empty_entities_yield_none() {
        assert!(translate(&[], &raw(&[])).is_none());
    }
}
