//! The shape-query lexicon: synonyms for each pattern / modifier / operator
//! value, normalized edit distance, and a semantic-similarity fallback.
//!
//! Mirrors §4 "Identifying Pattern and Modifier Value": "ShapeSearch first
//! calculates the normalized edit distance ... between the word and each of
//! the synonyms of a supported value, and takes the minimum. If the lowest
//! edit distance across all values is more than a threshold (.1 as default),
//! ShapeSearch further calculates the average semantic similarity (using
//! wordnet synset) ... and finally selects the value with highest similarity
//! score." WordNet is replaced by a curated relatedness list plus a
//! character-bigram similarity over stems (documented substitution).

/// Resolved pattern vocabulary values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternWord {
    /// Rising trend.
    Up,
    /// Falling trend.
    Down,
    /// Stable trend.
    Flat,
    /// A peak (rise then fall).
    Peak,
    /// A valley / dip (fall then rise).
    Valley,
}

/// Resolved modifier vocabulary values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModifierWord {
    /// Sharp / steep (`m = >>`).
    Sharp,
    /// Gradual / slow (`m = >` in its intensity reading).
    Gradual,
    /// A spelled-out count ("twice" → 2).
    Count(u32),
}

const UP_WORDS: &[&str] = &[
    "up",
    "increase",
    "increasing",
    "increased",
    "rise",
    "rising",
    "rose",
    "grow",
    "growing",
    "climb",
    "climbing",
    "gain",
    "gaining",
    "upward",
    "improve",
    "improving",
    "recover",
    "recovering",
    "surge",
    "surging",
    "ascend",
    "ascending",
    "expressed",
    "expressing",
];
const DOWN_WORDS: &[&str] = &[
    "down",
    "decrease",
    "decreasing",
    "decreased",
    "fall",
    "falling",
    "fell",
    "drop",
    "dropping",
    "dropped",
    "decline",
    "declining",
    "shrink",
    "shrinking",
    "lose",
    "losing",
    "downward",
    "plunge",
    "plunging",
    "descend",
    "descending",
    "reduce",
    "reducing",
    "suppress",
    "suppressed",
    "dip",
    "dipping",
];
const FLAT_WORDS: &[&str] = &[
    "flat",
    "stable",
    "stabilize",
    "stabilized",
    "constant",
    "steady",
    "unchanged",
    "plateau",
    "level",
    "stagnant",
    "still",
];
const PEAK_WORDS: &[&str] = &[
    "peak", "peaks", "spike", "spikes", "bump", "bumps", "top", "tops", "maximum", "maxima",
];
const VALLEY_WORDS: &[&str] = &[
    "valley", "valleys", "trough", "troughs", "bottom", "bottoms", "minimum", "minima",
];

const SHARP_WORDS: &[&str] = &[
    "sharp",
    "sharply",
    "steep",
    "steeply",
    "quickly",
    "rapidly",
    "rapid",
    "suddenly",
    "sudden",
    "dramatically",
    "fast",
    "abruptly",
    "abrupt",
];
const GRADUAL_WORDS: &[&str] = &[
    "gradual",
    "gradually",
    "slowly",
    "slow",
    "gently",
    "gentle",
    "mildly",
    "mild",
    "softly",
];

/// Curated relatedness lists standing in for WordNet synsets: words that are
/// semantically close to a value without being spelled like its synonyms.
const UP_RELATED: &[&str] = &["bullish", "rally", "boom", "soar", "soaring", "upturn"];
const DOWN_RELATED: &[&str] = &[
    "bearish", "crash", "slump", "sink", "sinking", "downturn", "tank",
];
const FLAT_WORDS_RELATED: &[&str] = &["sideways", "quiet", "calm"];

/// Words mapping to CONCAT.
pub const CONCAT_WORDS: &[&str] = &[
    "then",
    "next",
    "followed",
    "after",
    "afterwards",
    "afterward",
    "later",
    "subsequently",
    "finally",
    "and",
];
/// Words mapping to OR.
pub const OR_WORDS: &[&str] = &["or", "alternatively", "either"];
/// Words mapping to AND (simultaneous patterns).
pub const AND_WORDS: &[&str] = &["while", "simultaneously", "meanwhile", "also"];
/// Words mapping to OPPOSITE.
pub const NOT_WORDS: &[&str] = &["not", "never", "no", "without", "isnt", "arent"];

/// Levenshtein edit distance.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Edit distance divided by the average length of the two words (§4).
pub fn normalized_edit_distance(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let avg = (a.chars().count() + b.chars().count()) as f64 / 2.0;
    edit_distance(a, b) as f64 / avg
}

/// A crude stemmer: strips common inflection suffixes.
pub fn stem(word: &str) -> &str {
    for suffix in ["ingly", "edly", "ing", "ed", "ly", "es", "s"] {
        if let Some(base) = word.strip_suffix(suffix) {
            if base.len() >= 3 {
                return base;
            }
        }
    }
    word
}

/// Character-bigram Dice similarity over stems — the semantic-similarity
/// fallback standing in for WordNet synset similarity.
pub fn semantic_similarity(a: &str, b: &str) -> f64 {
    let bigrams = |w: &str| -> Vec<(char, char)> {
        let chars: Vec<char> = stem(w).chars().collect();
        chars.windows(2).map(|p| (p[0], p[1])).collect()
    };
    let (ba, bb) = (bigrams(a), bigrams(b));
    if ba.is_empty() || bb.is_empty() {
        return if stem(a) == stem(b) { 1.0 } else { 0.0 };
    }
    let mut shared = 0usize;
    let mut used = vec![false; bb.len()];
    for g in &ba {
        if let Some(i) = bb.iter().enumerate().position(|(i, h)| h == g && !used[i]) {
            used[i] = true;
            shared += 1;
        }
    }
    2.0 * shared as f64 / (ba.len() + bb.len()) as f64
}

/// Resolves a word to a pattern value using the §4 two-step procedure.
pub fn resolve_pattern(word: &str) -> Option<PatternWord> {
    let word = word.to_ascii_lowercase();
    let candidates: [(&[&str], &[&str], PatternWord); 5] = [
        (UP_WORDS, UP_RELATED, PatternWord::Up),
        (DOWN_WORDS, DOWN_RELATED, PatternWord::Down),
        (FLAT_WORDS, FLAT_WORDS_RELATED, PatternWord::Flat),
        (PEAK_WORDS, &[], PatternWord::Peak),
        (VALLEY_WORDS, &[], PatternWord::Valley),
    ];
    // Step 1: normalized edit distance to synonyms, minimum per value.
    let mut best: Option<(f64, PatternWord)> = None;
    for (syns, _, value) in candidates {
        for syn in syns {
            let d = normalized_edit_distance(&word, syn);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, value));
            }
        }
    }
    if let Some((d, value)) = best {
        if d <= 0.1 {
            return Some(value);
        }
    }
    // Step 2: semantic similarity fallback (average over synonyms + related).
    let mut best: Option<(f64, PatternWord)> = None;
    for (syns, related, value) in [
        (UP_WORDS, UP_RELATED, PatternWord::Up),
        (DOWN_WORDS, DOWN_RELATED, PatternWord::Down),
        (FLAT_WORDS, FLAT_WORDS_RELATED, PatternWord::Flat),
        (PEAK_WORDS, &[] as &[&str], PatternWord::Peak),
        (VALLEY_WORDS, &[], PatternWord::Valley),
    ] {
        let mut sims: Vec<f64> = syns
            .iter()
            .chain(related.iter())
            .map(|s| semantic_similarity(&word, s))
            .collect();
        sims.sort_by(|a, b| b.total_cmp(a));
        // Average the 3 closest synonyms rather than all (long synonym lists
        // would dilute good matches).
        let top: f64 = sims.iter().take(3).sum::<f64>() / sims.len().clamp(1, 3) as f64;
        if best.is_none_or(|(bs, _)| top > bs) {
            best = Some((top, value));
        }
    }
    // 0.6 keeps inflections of known stems ("soaring" → "soar") while
    // rejecting incidental overlaps ("brown" vs "down" scores 0.57).
    match best {
        Some((sim, value)) if sim >= 0.6 => Some(value),
        _ => None,
    }
}

/// Resolves a word to a modifier value.
pub fn resolve_modifier(word: &str) -> Option<ModifierWord> {
    let word = word.to_ascii_lowercase();
    match word.as_str() {
        "once" => return Some(ModifierWord::Count(1)),
        "twice" => return Some(ModifierWord::Count(2)),
        "thrice" => return Some(ModifierWord::Count(3)),
        _ => {}
    }
    let mut best: Option<(f64, ModifierWord)> = None;
    for (syns, value) in [
        (SHARP_WORDS, ModifierWord::Sharp),
        (GRADUAL_WORDS, ModifierWord::Gradual),
    ] {
        for syn in syns {
            let d = normalized_edit_distance(&word, syn);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, value));
            }
        }
    }
    match best {
        Some((d, value)) if d <= 0.34 => Some(value),
        _ => None,
    }
}

/// True when `word` is a likely synonym match for *any* entity class —
/// produces the `predicted-entity` CRF feature (§4's weakly-supervised
/// bootstrapping).
pub fn predicted_entity(word: &str) -> Option<&'static str> {
    let w = word.to_ascii_lowercase();
    // Short words only tolerate one edit ("the" must not match "top").
    let close = |syns: &[&str]| {
        let max_d = if w.chars().count() <= 4 { 1 } else { 2 };
        w.len() >= 3 && syns.iter().any(|s| edit_distance(&w, s) <= max_d)
    };
    if CONCAT_WORDS.contains(&w.as_str()) {
        return Some("CONCAT");
    }
    if OR_WORDS.contains(&w.as_str()) {
        return Some("OR");
    }
    if AND_WORDS.contains(&w.as_str()) {
        return Some("AND");
    }
    if NOT_WORDS.contains(&w.as_str()) {
        return Some("NOT");
    }
    if w.parse::<f64>().is_ok() {
        return Some("NUMBER");
    }
    if matches!(w.as_str(), "once" | "twice" | "thrice") {
        return Some("COUNT");
    }
    if close(UP_WORDS)
        || close(DOWN_WORDS)
        || close(FLAT_WORDS)
        || close(PEAK_WORDS)
        || close(VALLEY_WORDS)
    {
        return Some("PATTERN");
    }
    if close(SHARP_WORDS) || close(GRADUAL_WORDS) {
        return Some("MODIFIER");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }

    #[test]
    fn normalized_distance() {
        assert_eq!(normalized_edit_distance("same", "same"), 0.0);
        assert!(normalized_edit_distance("rise", "rose") > 0.0);
    }

    #[test]
    fn exact_synonyms_resolve() {
        assert_eq!(resolve_pattern("increasing"), Some(PatternWord::Up));
        assert_eq!(resolve_pattern("falling"), Some(PatternWord::Down));
        assert_eq!(resolve_pattern("stable"), Some(PatternWord::Flat));
        assert_eq!(resolve_pattern("peaks"), Some(PatternWord::Peak));
        assert_eq!(resolve_pattern("dip"), Some(PatternWord::Down));
        assert_eq!(resolve_pattern("trough"), Some(PatternWord::Valley));
    }

    #[test]
    fn typos_resolve_via_edit_distance() {
        // "increasng" is 1 edit from "increasing": normalized ≈ 0.105 — just
        // over the .1 threshold, recovered by the similarity fallback.
        assert_eq!(resolve_pattern("increasng"), Some(PatternWord::Up));
        assert_eq!(resolve_pattern("fallling"), Some(PatternWord::Down));
    }

    #[test]
    fn related_words_resolve_via_similarity() {
        assert_eq!(resolve_pattern("soaring"), Some(PatternWord::Up));
        assert_eq!(resolve_pattern("sinking"), Some(PatternWord::Down));
    }

    #[test]
    fn unrelated_words_do_not_resolve() {
        assert_eq!(resolve_pattern("banana"), None);
        assert_eq!(resolve_pattern("the"), None);
    }

    #[test]
    fn modifiers_resolve() {
        assert_eq!(resolve_modifier("sharply"), Some(ModifierWord::Sharp));
        assert_eq!(resolve_modifier("rapidly"), Some(ModifierWord::Sharp));
        assert_eq!(resolve_modifier("gradually"), Some(ModifierWord::Gradual));
        assert_eq!(resolve_modifier("twice"), Some(ModifierWord::Count(2)));
        assert_eq!(resolve_modifier("banana"), None);
    }

    #[test]
    fn stemming() {
        assert_eq!(stem("rising"), "ris");
        assert_eq!(stem("sharply"), "sharp");
        assert_eq!(stem("dropped"), "dropp");
        assert_eq!(stem("up"), "up");
    }

    #[test]
    fn semantic_similarity_orders_sensibly() {
        let s_close = semantic_similarity("soaring", "soar");
        let s_far = semantic_similarity("soaring", "falling");
        assert!(s_close > s_far);
    }

    #[test]
    fn predicted_entities() {
        assert_eq!(predicted_entity("then"), Some("CONCAT"));
        assert_eq!(predicted_entity("or"), Some("OR"));
        assert_eq!(predicted_entity("rising"), Some("PATTERN"));
        assert_eq!(predicted_entity("sharply"), Some("MODIFIER"));
        assert_eq!(predicted_entity("42"), Some("NUMBER"));
        assert_eq!(predicted_entity("twice"), Some("COUNT"));
        assert_eq!(predicted_entity("zzz"), None);
    }
}
