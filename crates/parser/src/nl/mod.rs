//! The natural-language front-end (paper §4): tokenization, noise
//! filtering, CRF entity tagging, value resolution, tree generation, and
//! ambiguity resolution.

pub mod corpus;
pub mod features;
pub mod lexicon;
pub mod translate;

use crate::error::{ParseError, Result};
use features::{analyze, non_noise_features, Tokenized};
use shapesearch_core::ShapeQuery;
use shapesearch_crf::{train, CrfModel, EvalReport, Sequence, TrainConfig};
use std::sync::OnceLock;
use translate::{Entity, Translation};

/// Result of parsing a natural-language query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedNl {
    /// The generated ShapeQuery.
    pub query: ShapeQuery,
    /// The tagged entities (shown in the correction panel).
    pub entities: Vec<Entity>,
    /// Ambiguity-resolution notes (Table 4 rules applied).
    pub notes: Vec<String>,
}

/// A trained natural-language parser.
#[derive(Debug)]
pub struct NlParser {
    model: CrfModel,
}

/// Default corpus size, mirroring the paper's 250 MTurk queries.
pub const DEFAULT_CORPUS_SIZE: usize = 250;
/// Default training seed.
pub const DEFAULT_SEED: u64 = 0x5ea6c4;

impl NlParser {
    /// Trains a parser on the synthetic corpus.
    pub fn train_default() -> Self {
        Self::train_with(DEFAULT_CORPUS_SIZE, DEFAULT_SEED)
    }

    /// Trains on `corpus_size` generated sentences with the given seed.
    pub fn train_with(corpus_size: usize, seed: u64) -> Self {
        let sentences = corpus::generate(corpus_size, seed);
        let data = to_sequences(&sentences);
        let config = TrainConfig {
            max_iterations: 24,
            seed,
            ..TrainConfig::default()
        };
        Self {
            model: train(&data, config),
        }
    }

    /// Tags the non-noise tokens of a sentence with entity labels.
    pub fn tag(&self, text: &str) -> Vec<Entity> {
        let analyzed = analyze(text);
        let (feats, idx) = non_noise_features(&analyzed);
        if feats.is_empty() {
            return Vec::new();
        }
        let labels = self.model.decode(&Sequence::unlabeled(feats));
        idx.iter()
            .zip(labels)
            .map(|(&i, label)| Entity {
                token: analyzed.tokens[i].clone(),
                label,
            })
            .collect()
    }

    /// Parses a natural-language query into a ShapeQuery.
    ///
    /// # Errors
    /// Fails when no shape content can be recognized.
    pub fn parse(&self, text: &str) -> Result<ParsedNl> {
        let analyzed = analyze(text);
        let entities = self.tag(text);
        let Some(Translation { query, notes }) = translate::translate(&entities, &analyzed.tokens)
        else {
            return Err(ParseError::new(
                0,
                "no shape patterns recognized in the query".into(),
                text.to_owned(),
            ));
        };
        Ok(ParsedNl {
            query,
            entities,
            notes,
        })
    }
}

/// Converts gold-tagged sentences into CRF training sequences over their
/// non-noise tokens.
pub fn to_sequences(sentences: &[corpus::TaggedSentence]) -> Vec<Sequence> {
    sentences
        .iter()
        .filter_map(|s| {
            let analyzed = Tokenized {
                tokens: s.tokens.clone(),
                tags: s
                    .tokens
                    .iter()
                    .map(|t| shapesearch_crf::pos::tag_word(t))
                    .collect(),
                noise: {
                    let a = analyze(&s.tokens.join(" "));
                    // Token streams may differ if joining re-tokenizes; fall
                    // back to per-token analysis.
                    if a.tokens == s.tokens {
                        a.noise
                    } else {
                        s.tokens
                            .iter()
                            .map(|t| analyze(t).noise.first().copied().unwrap_or(false))
                            .collect()
                    }
                },
            };
            let (feats, idx) = non_noise_features(&analyzed);
            if feats.is_empty() {
                return None;
            }
            let labels: Vec<String> = idx.iter().map(|&i| s.labels[i].clone()).collect();
            Some(Sequence::new(feats, labels))
        })
        .collect()
}

/// Cross-validates the entity tagger on the synthetic corpus — the
/// experiment behind the paper's "F1 score of 81% (precision = 73%,
/// recall = 90%)".
pub fn cross_validate_corpus(corpus_size: usize, folds: usize, seed: u64) -> EvalReport {
    let sentences = corpus::generate(corpus_size, seed);
    let data = to_sequences(&sentences);
    let config = TrainConfig {
        max_iterations: 24,
        seed,
        ..TrainConfig::default()
    };
    shapesearch_crf::cross_validate(&data, folds, config)
}

static GLOBAL: OnceLock<NlParser> = OnceLock::new();

/// Parses a natural-language query with a lazily trained global parser.
///
/// # Errors
/// Fails when no shape content can be recognized.
pub fn parse_natural_language(text: &str) -> Result<ParsedNl> {
    GLOBAL.get_or_init(NlParser::train_default).parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> &'static NlParser {
        GLOBAL.get_or_init(NlParser::train_default)
    }

    #[test]
    fn paper_example_genomics() {
        // "show me genes that are rising, then going down, and then
        // increasing" (Figure 2).
        let p = parser()
            .parse("show me genes that are rising, then going down, and then increasing")
            .unwrap();
        assert_eq!(p.query.to_string(), "[p=up][p=down][p=up]");
    }

    #[test]
    fn sharp_peak_luminosity() {
        // "find me objects with a sharp peak in luminosity" (§2).
        let p = parser()
            .parse("find me objects with a sharp peak in luminosity")
            .unwrap();
        let s = p.query.to_string();
        assert!(
            s.contains("p=[[p=up][p=down]]"),
            "expected a peak pattern, got {s}"
        );
    }

    #[test]
    fn location_query() {
        let p = parser()
            .parse("stocks increasing from 2 to 5 then falling")
            .unwrap();
        let s = p.query.to_string();
        assert!(s.contains("x.s=2"), "got {s}");
        assert!(s.contains("x.e=5"), "got {s}");
        assert!(s.contains("[p=down]"), "got {s}");
    }

    #[test]
    fn or_query() {
        let p = parser()
            .parse("genes that are either rising or falling")
            .unwrap();
        assert_eq!(p.query.to_string(), "[p=up] | [p=down]");
    }

    #[test]
    fn modifier_query() {
        let p = parser()
            .parse("cities with temperature rising sharply")
            .unwrap();
        assert_eq!(p.query.to_string(), "[p=up, m=>>]");
    }

    #[test]
    fn unintelligible_query_errors() {
        assert!(parser().parse("purple monkey dishwasher").is_err());
        assert!(parser().parse("").is_err());
    }

    #[test]
    fn tagging_quality_on_corpus() {
        // In-sample tagging should be strong; cross-validation quality is
        // measured by the `figures -- crf` experiment (E9).
        let report = cross_validate_corpus(120, 4, 7);
        assert!(
            report.accuracy() > 0.85,
            "token accuracy {}",
            report.accuracy()
        );
        assert!(report.macro_f1() > 0.6, "macro F1 {}", report.macro_f1());
    }
}
