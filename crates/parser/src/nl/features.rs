//! CRF feature extraction (paper Table 3).
//!
//! For each token the extractor emits sparse string features: POS tags of
//! the token and its neighbours, surrounding words, synonym-predicted
//! entities with distances, time/space preposition contexts, punctuation and
//! conjunction distances, and the miscellaneous cues (`d(x)`, `d(y)`,
//! `d(next)`, `ends(ing)`, `ends(ly)`, `length(query)`).
//!
//! Features are computed over the **full** token sequence (noise words "are
//! still used for deriving features for the non-noise words", §4), while the
//! CRF itself runs over the non-noise subsequence.

use crate::nl::lexicon::predicted_entity;
use shapesearch_crf::pos::{is_noise_tag, tag_word, PosTag};

const TIME_PREPOSITIONS: &[&str] = &[
    "during", "until", "till", "when", "while", "before", "after",
];
const SPACE_PREPOSITIONS: &[&str] = &[
    "from", "to", "between", "at", "over", "within", "above", "below", "around",
];
const STOPWORDS: &[&str] = &[
    "me", "i", "we", "that", "which", "who", "a", "an", "the", "of", "for", "with", "are", "is",
    "was", "were", "be", "been", "it", "its", "in", "on",
];

/// A tokenized sentence with POS tags and the noise mask.
#[derive(Debug, Clone)]
pub struct Tokenized {
    /// Lowercased tokens (words, numbers, punctuation).
    pub tokens: Vec<String>,
    /// POS tag per token.
    pub tags: Vec<PosTag>,
    /// True when the token is classified as noise (never an entity).
    pub noise: Vec<bool>,
}

/// Splits text into lowercase word / number / punctuation tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric()
            || c == '.' && current.chars().all(|d| d.is_ascii_digit()) && !current.is_empty()
        {
            current.push(c.to_ascii_lowercase());
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizes and classifies noise (step 1 of §4: "based on the
/// Part-of-Speech (POS) tags and word-level features, we classify each word
/// in the query as either noise or non-noise").
pub fn analyze(text: &str) -> Tokenized {
    let tokens = tokenize(text);
    let tags: Vec<PosTag> = tokens.iter().map(|t| tag_word(t)).collect();
    let noise = tokens
        .iter()
        .zip(&tags)
        .map(|(tok, &tag)| {
            if predicted_entity(tok).is_some() {
                return false; // synonym-matched words are never noise
            }
            is_noise_tag(tag) || STOPWORDS.contains(&tok.as_str())
        })
        .collect();
    Tokenized {
        tokens,
        tags,
        noise,
    }
}

/// Buckets a distance for use as a discrete feature value.
fn bucket(d: usize) -> &'static str {
    match d {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        _ => "4+",
    }
}

/// Distance (in tokens) from `i` to the nearest later token satisfying
/// `pred`, if any.
fn dist_fwd(tokens: &[String], i: usize, pred: impl Fn(&str) -> bool) -> Option<usize> {
    tokens[i + 1..].iter().position(|t| pred(t)).map(|d| d + 1)
}

/// Distance to the nearest earlier token satisfying `pred`.
fn dist_bwd(tokens: &[String], i: usize, pred: impl Fn(&str) -> bool) -> Option<usize> {
    tokens[..i]
        .iter()
        .rev()
        .position(|t| pred(t))
        .map(|d| d + 1)
}

/// Extracts the Table-3 feature vector for token `i` of the full sequence.
pub fn token_features(t: &Tokenized, i: usize) -> Vec<String> {
    let tokens = &t.tokens;
    let tags = &t.tags;
    let n = tokens.len();
    let word = |j: i64| -> &str {
        if j < 0 || j as usize >= n {
            "<pad>"
        } else {
            &tokens[j as usize]
        }
    };
    let tag = |j: i64| -> &str {
        if j < 0 || j as usize >= n {
            "<pad>"
        } else {
            tags[j as usize].name()
        }
    };
    let i64i = i as i64;

    let mut f: Vec<String> = Vec::with_capacity(24);
    // Current word (surface + stem) and POS context.
    f.push(format!("w={}", tokens[i]));
    f.push(format!("stem={}", crate::nl::lexicon::stem(&tokens[i])));
    f.push(format!("pos={}", tag(i64i)));
    f.push(format!("pos-1={}", tag(i64i - 1)));
    f.push(format!("pos+1={}", tag(i64i + 1)));
    // Word context.
    f.push(format!("w-1={}", word(i64i - 1)));
    f.push(format!("w+1={}", word(i64i + 1)));
    f.push(format!("w-2={}", word(i64i - 2)));
    f.push(format!("w+2={}", word(i64i + 2)));
    // Predicted entities (bootstrapping).
    if let Some(e) = predicted_entity(&tokens[i]) {
        f.push(format!("pred={e}"));
    }
    if let Some(d) = dist_fwd(tokens, i, |t| predicted_entity(t).is_some()) {
        let j = i + d;
        f.push(format!(
            "pred+1={}",
            predicted_entity(&tokens[j]).expect("found")
        ));
        f.push(format!("d(pred+)={}", bucket(d)));
    }
    if let Some(d) = dist_bwd(tokens, i, |t| predicted_entity(t).is_some()) {
        let j = i - d;
        f.push(format!(
            "pred-1={}",
            predicted_entity(&tokens[j]).expect("found")
        ));
        f.push(format!("d(pred-)={}", bucket(d)));
    }
    // Time and space prepositions.
    if let Some(d) = dist_bwd(tokens, i, |t| TIME_PREPOSITIONS.contains(&t)) {
        f.push(format!("d(timeprep-)={}", bucket(d)));
        f.push(format!("timeprep-={}", word(i64i - d as i64)));
    }
    if let Some(d) = dist_fwd(tokens, i, |t| TIME_PREPOSITIONS.contains(&t)) {
        f.push(format!("d(timeprep+)={}", bucket(d)));
    }
    if let Some(d) = dist_bwd(tokens, i, |t| SPACE_PREPOSITIONS.contains(&t)) {
        f.push(format!("d(spaceprep-)={}", bucket(d)));
        f.push(format!("spaceprep-={}", word(i64i - d as i64)));
    }
    if let Some(d) = dist_fwd(tokens, i, |t| SPACE_PREPOSITIONS.contains(&t)) {
        f.push(format!("d(spaceprep+)={}", bucket(d)));
    }
    // Punctuation distances.
    for (name, ch) in [("comma", ","), ("semi", ";"), ("dot", ".")] {
        if let Some(d) = dist_fwd(tokens, i, |t| t == ch) {
            f.push(format!("d({name}+)={}", bucket(d)));
        }
        if let Some(d) = dist_bwd(tokens, i, |t| t == ch) {
            f.push(format!("d({name}-)={}", bucket(d)));
        }
    }
    // Conjunction distances.
    if let Some(d) = dist_fwd(tokens, i, |t| t == "and") {
        f.push(format!("d(and+)={}", bucket(d)));
    }
    if let Some(d) = dist_bwd(tokens, i, |t| t == "or") {
        f.push(format!("d(or-)={}", bucket(d)));
    }
    // Miscellaneous.
    if let Some(d) = dist_bwd(tokens, i, |t| t == "x") {
        f.push(format!("d(x)={}", bucket(d)));
    }
    if let Some(d) = dist_bwd(tokens, i, |t| t == "y") {
        f.push(format!("d(y)={}", bucket(d)));
    }
    if let Some(d) = dist_fwd(tokens, i, |t| t == "next" || t == "then") {
        f.push(format!("d(next)={}", bucket(d)));
    }
    if tokens[i].ends_with("ing") {
        f.push("ends(ing)".into());
    }
    if tokens[i].ends_with("ly") {
        f.push("ends(ly)".into());
    }
    if tokens[i].parse::<f64>().is_ok() {
        f.push("is-number".into());
        // A number's role depends on the word before it.
        f.push(format!("num-lead={}", word(i64i - 1)));
        f.push(format!("num-next={}", word(i64i + 1)));
    }
    f.push(format!("len={}", bucket(n / 4)));
    f
}

/// Features for the non-noise subsequence: returns `(features, indices)`
/// where `indices[j]` is the original token position of CRF item `j`.
pub fn non_noise_features(t: &Tokenized) -> (Vec<Vec<String>>, Vec<usize>) {
    let mut feats = Vec::new();
    let mut idx = Vec::new();
    for i in 0..t.tokens.len() {
        if !t.noise[i] {
            feats.push(token_features(t, i));
            idx.push(i);
        }
    }
    (feats, idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_words_numbers_punct() {
        assert_eq!(
            tokenize("Rising from 2.5 to 10, then falling!"),
            vec!["rising", "from", "2.5", "to", "10", ",", "then", "falling", "!"]
        );
    }

    #[test]
    fn tokenizer_handles_empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn noise_classification() {
        let t = analyze("show me the genes that are rising sharply");
        let noise_of = |w: &str| {
            let i = t.tokens.iter().position(|x| x == w).unwrap();
            t.noise[i]
        };
        assert!(noise_of("the"));
        assert!(noise_of("me"));
        assert!(!noise_of("rising"));
        assert!(!noise_of("sharply"));
        assert!(!noise_of("genes")); // noun, kept (entity-adjacent)
    }

    #[test]
    fn synonym_words_are_never_noise() {
        // "then" could be filtered as a transition word, but it maps to
        // CONCAT and must be kept.
        let t = analyze("rising then falling");
        assert_eq!(t.noise, vec![false, false, false]);
    }

    #[test]
    fn features_include_context() {
        let t = analyze("rising from 2 to 5");
        let i = t.tokens.iter().position(|x| x == "2").unwrap();
        let f = token_features(&t, i);
        assert!(f.contains(&"is-number".to_string()));
        assert!(f.contains(&"num-lead=from".to_string()));
        assert!(f.iter().any(|x| x.starts_with("d(spaceprep-)")));
        let i = t.tokens.iter().position(|x| x == "rising").unwrap();
        let f = token_features(&t, i);
        assert!(f.contains(&"ends(ing)".to_string()));
        assert!(f.contains(&"pred=PATTERN".to_string()));
    }

    #[test]
    fn boundary_tokens_use_padding() {
        let t = analyze("rising");
        let f = token_features(&t, 0);
        assert!(f.contains(&"w-1=<pad>".to_string()));
        assert!(f.contains(&"w+1=<pad>".to_string()));
    }

    #[test]
    fn non_noise_projection_keeps_indices() {
        let t = analyze("show me stocks rising then falling");
        let (feats, idx) = non_noise_features(&t);
        assert_eq!(feats.len(), idx.len());
        for (f, &i) in feats.iter().zip(&idx) {
            assert!(f.contains(&format!("w={}", t.tokens[i])));
        }
    }
}
