//! The visual regular expression parser (paper §2, "Regular Expression
//! (regex)"): a textual syntax that "directly maps to the structured
//! internal representation", parsed with the context-free grammar of
//! Table 2.
//!
//! Syntax accepted (ASCII spellings, with the paper's Unicode operators as
//! aliases):
//!
//! ```text
//! query   := or
//! or      := and ( ('|' | '⊕') and )*
//! and     := concat ( ('&' | '⊙') concat )*
//! concat  := unary ( '⊗'? unary )*        (adjacency is CONCAT)
//! unary   := ('!' unary) | segment | '(' query ')'
//! segment := '[' part (',' part)* ']'
//! part    := 'x.s' '=' (num | '.')
//!          | 'x.e' '=' (num | '.' '+' num)
//!          | 'y.s' '=' num | 'y.e' '=' num
//!          | 'p' '=' (up|down|flat|'*'|num|'$'ref|'udp:'name|'['query']')
//!          | 'm' '=' ('>>'|'<<'|'>'num?|'<'num?|'='|num|'{'n?','n?'}')
//!          | 'v' '=' '(' num ':' num (',' num ':' num)* ')'
//! ```
//!
//! `ShapeQuery`'s `Display` emits this syntax, so parsing round-trips.

use crate::error::{ParseError, Result};
use shapesearch_core::{IteratorSpec, Modifier, Pattern, PosRef, ShapeQuery, ShapeSegment};

/// Parses a visual-regex string into a ShapeQuery.
///
/// # Errors
/// Returns a [`ParseError`] with a byte position and message on malformed
/// input.
pub fn parse_regex(input: &str) -> Result<ShapeQuery> {
    let mut c = Cursor::new(input);
    let q = c.parse_query()?;
    c.skip_ws();
    if !c.eof() {
        return Err(c.err("unexpected trailing input"));
    }
    Ok(q)
}

struct Cursor<'a> {
    input: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            chars: input.chars().collect(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message.into(), self.input.to_owned())
    }

    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        let mut p = self.pos;
        for want in s.chars() {
            if self.chars.get(p) != Some(&want) {
                return false;
            }
            p += 1;
        }
        self.pos = p;
        true
    }

    // query := or
    fn parse_query(&mut self) -> Result<ShapeQuery> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<ShapeQuery> {
        let first = self.parse_and()?;
        let mut parts = vec![first];
        loop {
            self.skip_ws();
            if self.eat('|') || self.eat('⊕') {
                parts.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            ShapeQuery::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<ShapeQuery> {
        let first = self.parse_concat()?;
        let mut parts = vec![first];
        loop {
            self.skip_ws();
            if self.eat('&') || self.eat('⊙') {
                parts.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            ShapeQuery::And(parts)
        })
    }

    fn parse_concat(&mut self) -> Result<ShapeQuery> {
        let mut parts = vec![self.parse_unary()?];
        loop {
            self.skip_ws();
            let _ = self.eat('⊗'); // optional explicit CONCAT
            self.skip_ws();
            match self.peek() {
                Some('[') | Some('(') | Some('!') => parts.push(self.parse_unary()?),
                _ => break,
            }
        }
        Ok(ShapeQuery::concat(parts))
    }

    fn parse_unary(&mut self) -> Result<ShapeQuery> {
        self.skip_ws();
        if self.eat('!') {
            return Ok(ShapeQuery::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat('(') {
            let q = self.parse_query()?;
            self.expect(')')?;
            return Ok(q);
        }
        self.parse_segment().map(ShapeQuery::Segment)
    }

    fn parse_segment(&mut self) -> Result<ShapeSegment> {
        self.expect('[')?;
        let mut seg = ShapeSegment::default();
        loop {
            self.skip_ws();
            if self.eat(']') {
                return Ok(seg);
            }
            self.parse_part(&mut seg)?;
            self.skip_ws();
            let _ = self.eat(',');
        }
    }

    fn parse_part(&mut self, seg: &mut ShapeSegment) -> Result<()> {
        self.skip_ws();
        if self.eat_str("x.s") {
            self.expect('=')?;
            self.skip_ws();
            if self.eat('.') {
                // ITERATOR start: width set by the matching `x.e = .+w`.
                return Ok(());
            }
            seg.location.x_start = Some(self.parse_number()?);
            return Ok(());
        }
        if self.eat_str("x.e") {
            self.expect('=')?;
            self.skip_ws();
            if self.eat('.') {
                self.expect('+')?;
                let w = self.parse_number()?;
                seg.iterator = Some(IteratorSpec { width: w });
                return Ok(());
            }
            seg.location.x_end = Some(self.parse_number()?);
            return Ok(());
        }
        if self.eat_str("y.s") {
            self.expect('=')?;
            seg.location.y_start = Some(self.parse_number()?);
            return Ok(());
        }
        if self.eat_str("y.e") {
            self.expect('=')?;
            seg.location.y_end = Some(self.parse_number()?);
            return Ok(());
        }
        if self.eat_str("p{") {
            // Table-11 shorthand: p{up} etc.
            let p = self.parse_pattern_value()?;
            self.expect('}')?;
            seg.pattern = Some(p);
            return Ok(());
        }
        if self.eat_str("v") {
            self.expect('=')?;
            seg.sketch = Some(self.parse_sketch_vector()?);
            return Ok(());
        }
        if self.eat_str("p") {
            self.expect('=')?;
            seg.pattern = Some(self.parse_pattern_value()?);
            return Ok(());
        }
        if self.eat_str("m") {
            self.expect('=')?;
            seg.modifier = Some(self.parse_modifier_value()?);
            return Ok(());
        }
        Err(self.err("expected segment part (x.s, x.e, y.s, y.e, p, m, v)"))
    }

    fn parse_pattern_value(&mut self) -> Result<Pattern> {
        self.skip_ws();
        if self.eat_str("up") {
            return Ok(Pattern::Up);
        }
        if self.eat_str("down") {
            return Ok(Pattern::Down);
        }
        if self.eat_str("flat") {
            return Ok(Pattern::Flat);
        }
        if self.eat('*') {
            return Ok(Pattern::Any);
        }
        if self.eat_str("udp:") {
            let name = self.parse_ident()?;
            return Ok(Pattern::Udp(name));
        }
        if self.eat('$') {
            if self.eat('-') {
                return Ok(Pattern::Position(PosRef::Prev));
            }
            if self.eat('+') {
                return Ok(Pattern::Position(PosRef::Next));
            }
            let n = self.parse_number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(self.err("position reference must be a non-negative integer"));
            }
            return Ok(Pattern::Position(PosRef::Absolute(n as usize)));
        }
        if self.peek() == Some('[') {
            // Nested query as pattern value.
            let q = self.parse_nested_query()?;
            return Ok(Pattern::Nested(Box::new(q)));
        }
        let n = self.parse_number()?;
        Ok(Pattern::Slope(n))
    }

    /// A nested query pattern value. Two spellings exist: a wrapper bracket
    /// around a whole query (`p=[[p=up][p=down]]`) or a single bare segment
    /// (`p=[x.s=., x.e=.+4, p=...]`). Distinguished by what follows the
    /// first `[`.
    fn parse_nested_query(&mut self) -> Result<ShapeQuery> {
        let save = self.pos;
        self.expect('[')?;
        self.skip_ws();
        let is_wrapper = matches!(self.peek(), Some('[') | Some('(') | Some('!'));
        if is_wrapper {
            let q = self.parse_query()?;
            self.expect(']')?;
            Ok(q)
        } else {
            self.pos = save;
            self.parse_segment().map(ShapeQuery::Segment)
        }
    }

    fn parse_modifier_value(&mut self) -> Result<Modifier> {
        self.skip_ws();
        if self.eat_str(">>") {
            return Ok(Modifier::MuchMore);
        }
        if self.eat_str("<<") {
            return Ok(Modifier::MuchLess);
        }
        if self.eat('>') {
            let f = self.try_parse_number();
            return Ok(Modifier::More(f));
        }
        if self.eat('<') {
            let f = self.try_parse_number();
            return Ok(Modifier::Less(f));
        }
        if self.eat('=') {
            return Ok(Modifier::Similar);
        }
        if self.eat('{') {
            self.skip_ws();
            let min = self.try_parse_number().map(|v| v as u32);
            self.expect(',')?;
            self.skip_ws();
            let max = self.try_parse_number().map(|v| v as u32);
            self.expect('}')?;
            return Ok(Modifier::Quantifier { min, max });
        }
        let n = self.parse_number()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(self.err("count modifier must be a non-negative integer"));
        }
        Ok(Modifier::exactly(n as u32))
    }

    fn parse_sketch_vector(&mut self) -> Result<Vec<(f64, f64)>> {
        self.expect('(')?;
        let mut points = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(')') {
                break;
            }
            let x = self.parse_number()?;
            self.expect(':')?;
            let y = self.parse_number()?;
            points.push((x, y));
            self.skip_ws();
            let _ = self.eat(',');
        }
        if points.len() < 2 {
            return Err(self.err("sketch vector needs at least 2 points"));
        }
        Ok(points)
    }

    fn parse_ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn try_parse_number(&mut self) -> Option<f64> {
        let save = self.pos;
        match self.parse_number() {
            Ok(v) => Some(v),
            Err(_) => {
                self.pos = save;
                None
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.peek(), Some('-') | Some('+')) {
            self.pos += 1;
        }
        let mut seen_digit = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                seen_digit = true;
                self.pos += 1;
            } else if c == '.' {
                // A '.' not followed by a digit belongs to the iterator
                // syntax, not the number.
                if matches!(self.chars.get(self.pos + 1), Some(d) if d.is_ascii_digit()) {
                    self.pos += 1;
                } else {
                    break;
                }
            } else if c == '/' && seen_digit {
                // Fractions like 1/2.
                self.pos += 1;
            } else {
                break;
            }
        }
        if !seen_digit {
            self.pos = start;
            return Err(self.err("expected number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if let Some((num, den)) = text.split_once('/') {
            let n: f64 = num.parse().map_err(|_| self.err("bad fraction"))?;
            let d: f64 = den.parse().map_err(|_| self.err("bad fraction"))?;
            if d == 0.0 {
                return Err(self.err("fraction with zero denominator"));
            }
            return Ok(n / d);
        }
        text.parse().map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sequence() {
        let q = parse_regex("[p=up][p=down][p=up]").unwrap();
        assert_eq!(q.chain_len(), 3);
    }

    #[test]
    fn whitespace_and_explicit_concat() {
        let a = parse_regex("[p=up] ⊗ [p=down]").unwrap();
        let b = parse_regex("[p=up][p=down]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn locations_and_slope() {
        let q = parse_regex("[x.s=2, x.e=10, y.s=10, y.e=100]").unwrap();
        let ShapeQuery::Segment(s) = &q else {
            panic!("expected segment")
        };
        assert_eq!(s.location.x_start, Some(2.0));
        assert_eq!(s.location.x_end, Some(10.0));
        assert_eq!(s.location.y_start, Some(10.0));
        assert_eq!(s.location.y_end, Some(100.0));
        let q = parse_regex("[p=45]").unwrap();
        assert!(matches!(
            q,
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Slope(v)),
                ..
            }) if v == 45.0
        ));
    }

    #[test]
    fn negative_slope() {
        let q = parse_regex("[p=-20]").unwrap();
        assert!(matches!(
            q,
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Slope(v)),
                ..
            }) if v == -20.0
        ));
    }

    #[test]
    fn or_and_not_precedence() {
        // [a][b] | [c] parses as ([a][b]) | [c].
        let q = parse_regex("[p=up][p=down] | [p=flat]").unwrap();
        let ShapeQuery::Or(parts) = &q else {
            panic!("expected or, got {q:?}")
        };
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].chain_len(), 2);
        // & binds tighter than |.
        let q = parse_regex("[p=up] & [p=flat] | [p=down]").unwrap();
        assert!(matches!(q, ShapeQuery::Or(_)));
        let q = parse_regex("![p=flat]").unwrap();
        assert!(matches!(q, ShapeQuery::Not(_)));
    }

    #[test]
    fn unicode_operators() {
        let a = parse_regex("[p=up] ⊕ [p=down]").unwrap();
        let b = parse_regex("[p=up] | [p=down]").unwrap();
        assert_eq!(a, b);
        let a = parse_regex("[p=up] ⊙ [p=flat]").unwrap();
        let b = parse_regex("[p=up] & [p=flat]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn grouping_example_from_paper() {
        // [p=up]⊗([p=flat] ⊕ ([p=down] ⊗ [p=up]))
        let q = parse_regex("[p=up]([p=flat] | ([p=down][p=up]))").unwrap();
        let ShapeQuery::Concat(parts) = &q else {
            panic!("expected concat")
        };
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[1], ShapeQuery::Or(_)));
    }

    #[test]
    fn modifiers() {
        let cases = [
            ("[p=up, m=>>]", Modifier::MuchMore),
            ("[p=up, m=>]", Modifier::More(None)),
            ("[p=up, m=>2]", Modifier::More(Some(2.0))),
            ("[p=$0, m=<1/2]", Modifier::Less(Some(0.5))),
            ("[p=up, m=<<]", Modifier::MuchLess),
            ("[p=$0, m==]", Modifier::Similar),
            ("[p=up, m=2]", Modifier::exactly(2)),
            (
                "[p=up, m={2,5}]",
                Modifier::Quantifier {
                    min: Some(2),
                    max: Some(5),
                },
            ),
            ("[p=up, m={2,}]", Modifier::at_least(2)),
            ("[p=up, m={,2}]", Modifier::at_most(2)),
        ];
        for (text, want) in cases {
            let q = parse_regex(text).unwrap();
            let ShapeQuery::Segment(s) = q else {
                panic!("expected segment for {text}")
            };
            assert_eq!(s.modifier, Some(want), "{text}");
        }
    }

    #[test]
    fn position_references() {
        let q = parse_regex("[p=up][p=$0, m=<]").unwrap();
        let ShapeQuery::Concat(parts) = &q else {
            panic!()
        };
        assert!(matches!(
            &parts[1],
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Position(PosRef::Absolute(0))),
                ..
            })
        ));
        let q = parse_regex("[p=$-][p=$+]").unwrap();
        let segs = q.segments();
        assert!(matches!(
            segs[0].pattern,
            Some(Pattern::Position(PosRef::Prev))
        ));
        assert!(matches!(
            segs[1].pattern,
            Some(Pattern::Position(PosRef::Next))
        ));
    }

    #[test]
    fn iterator_window() {
        // Paper: [x.s = ., x.e = (.+3), p=up]
        let q = parse_regex("[x.s=., x.e=.+3, p=up]").unwrap();
        let ShapeQuery::Segment(s) = q else { panic!() };
        assert_eq!(s.iterator, Some(IteratorSpec { width: 3.0 }));
        assert_eq!(s.pattern, Some(Pattern::Up));
    }

    #[test]
    fn nested_pattern() {
        // Paper: [x.s=2, x.e=10, p=[x.s=., x.e=.+4, p=[[p=up][p=down]]]]
        let q = parse_regex("[x.s=2, x.e=10, p=[x.s=., x.e=.+4, p=[[p=up][p=down]]]]").unwrap();
        let ShapeQuery::Segment(s) = &q else { panic!() };
        let Some(Pattern::Nested(inner)) = &s.pattern else {
            panic!("expected nested pattern")
        };
        let ShapeQuery::Segment(inner_seg) = inner.as_ref() else {
            panic!()
        };
        assert_eq!(inner_seg.iterator, Some(IteratorSpec { width: 4.0 }));
        assert!(matches!(&inner_seg.pattern, Some(Pattern::Nested(_))));
    }

    #[test]
    fn sketch_vector() {
        let q = parse_regex("[v=(2:10, 3:14, 10:100)]").unwrap();
        let ShapeQuery::Segment(s) = q else { panic!() };
        assert_eq!(
            s.sketch.unwrap(),
            vec![(2.0, 10.0), (3.0, 14.0), (10.0, 100.0)]
        );
    }

    #[test]
    fn udp_and_any() {
        let q = parse_regex("[p=udp:my_pattern]").unwrap();
        assert!(matches!(
            q,
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Udp(ref n)),
                ..
            }) if n == "my_pattern"
        ));
        let q = parse_regex("[p=*]").unwrap();
        assert!(matches!(
            q,
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Any),
                ..
            })
        ));
    }

    #[test]
    fn table11_shorthand() {
        // Table 11 writes [p{down}, x.s=50, x.e=100].
        let q = parse_regex("[p{down}, x.s=50, x.e=100]").unwrap();
        let ShapeQuery::Segment(s) = q else { panic!() };
        assert_eq!(s.pattern, Some(Pattern::Down));
        assert_eq!(s.location.x_start, Some(50.0));
    }

    #[test]
    fn errors_carry_position() {
        for bad in [
            "[p=up",
            "[q=up]",
            "[p=up]]",
            "",
            "[p=up] extra",
            "[m={2 5}]",
            "[v=(1:2)]",
        ] {
            let e = parse_regex(bad);
            assert!(e.is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn display_round_trip() {
        let cases = [
            "[p=up][p=down]",
            "[x.s=2, x.e=5, p=up, m=>>]",
            "[p=up]([p=flat] | ([p=down][p=up]))",
            "![p=flat]",
            "[p=up] & [p=down]",
            "[x.s=., x.e=.+3, p=up]",
            "[p=up][p=$0, m=<]",
            "[p=up, m={2,}]",
            "[p=[[p=up][p=down]], m={2,}]",
            "[x.s=2, x.e=10, p=[x.s=., x.e=.+4, p=[[p=up][p=down]]]]",
            "[v=(2:10, 3:14, 10:100)]",
            "[y.s=10, y.e=100, p=up]",
        ];
        for text in cases {
            let q = parse_regex(text).unwrap();
            let rendered = q.to_string();
            let re = parse_regex(&rendered)
                .unwrap_or_else(|e| panic!("reparse of `{rendered}` failed: {e}"));
            assert_eq!(q, re, "round trip of {text} via {rendered}");
        }
    }
}
