//! Property tests for the columnar GROUP arenas and batched scoring
//! kernels: every batched path must reproduce the retained scalar
//! reference **bit for bit** — across random trendlines, constant and
//! two-point series, NaN poisoning, all six segmenters, and sharded
//! execution with pruning on and off. Byte-identity is the tentpole's
//! contract: the columnar engine is a pure layout/throughput change.

use proptest::prelude::*;
use shapesearch_core::{
    slope_leaf, EngineOptions, Evaluator, PruningMode, ScoreParams, SegmenterKind, ShapeQuery,
    ShardedEngine, SharedThresholds, StatsIndex, UdpRegistry, VizData,
};
use shapesearch_datastore::Trendline;

/// Strategy: one series of (x, y) pairs, covering the shapes that break
/// naive kernels — random walks, constant series (zero y-span), minimal
/// two-point series, and a NaN dropped mid-walk.
fn series_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop_oneof![
        // Random walk on an integer grid.
        proptest::collection::vec(-1e3f64..1e3, 2..24)
            .prop_map(|ys| { ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect() }),
        // Constant: zero y-span stresses normalization and flat slopes.
        (2usize..16, -5f64..5.0).prop_map(|(n, c)| (0..n).map(|i| (i as f64, c)).collect()),
        // Two points: the smallest viz GROUP accepts.
        (-5f64..5.0, -5f64..5.0).prop_map(|(a, b)| vec![(0.0, a), (1.0, b)]),
        // NaN poisoning: both paths must propagate the same bits.
        (proptest::collection::vec(-1e2f64..1e2, 3..16), 0usize..16).prop_map(|(ys, pos)| {
            let mut pts: Vec<(f64, f64)> =
                ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
            let p = pos % pts.len();
            pts[p].1 = f64::NAN;
            pts
        }),
    ]
}

fn collection_strategy() -> impl Strategy<Value = Vec<Trendline>> {
    proptest::collection::vec(series_strategy(), 1..10).prop_map(|all| {
        all.into_iter()
            .enumerate()
            .map(|(i, pairs)| Trendline::from_pairs(format!("t{i}"), &pairs))
            .collect()
    })
}

/// The slope-leaf query shapes the batched kernels fast-path.
fn leaf_queries() -> Vec<ShapeQuery> {
    vec![
        ShapeQuery::up(),
        ShapeQuery::down(),
        ShapeQuery::flat(),
        ShapeQuery::pattern(shapesearch_core::Pattern::Any),
        ShapeQuery::pattern(shapesearch_core::Pattern::Slope(30.0)),
        ShapeQuery::pattern(shapesearch_core::Pattern::Slope(-60.0)),
    ]
}

/// Composite queries exercising every segmenter through the engine.
fn engine_queries() -> Vec<ShapeQuery> {
    vec![
        ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
        ShapeQuery::up(),
        ShapeQuery::Or(vec![ShapeQuery::flat(), ShapeQuery::down()]),
        ShapeQuery::concat(vec![
            ShapeQuery::down(),
            ShapeQuery::up(),
            ShapeQuery::flat(),
        ]),
    ]
}

/// NaN-safe canonical rendering: scores compared by bit pattern.
fn render(results: &[shapesearch_core::TopKResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{}:{}:{}:{:?}",
                r.key,
                r.viz_index,
                r.score.to_bits(),
                r.ranges
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The arena's range stats, pairwise slopes, interval-slope kernel,
    /// and anchored window kernel all equal the scalar [`StatsIndex`]
    /// reference bit for bit on the normalized canvas.
    #[test]
    fn kernels_match_scalar_reference_bit_for_bit(pairs in series_strategy()) {
        let t = Trendline::from_pairs("t", &pairs);
        let Some(v) = VizData::from_trendline(&t, 0, 1) else {
            return Ok(()); // GROUP rejected (fewer than two canvas points)
        };
        let idx = StatsIndex::new(v.xs(), v.ys());
        let n = v.n();
        prop_assert_eq!(idx.len(), n);

        for i in 0..n {
            for j in i..n {
                let got = v.slope(i, j);
                let want = idx.slope(i, j);
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "slope [{}, {}]: {} vs {}", i, j, got, want
                );
            }
        }

        let mut out = Vec::new();
        v.arena().interval_slopes(v.slot(), &mut out);
        prop_assert_eq!(out.len(), n - 1);
        for (t0, &s) in out.iter().enumerate() {
            prop_assert_eq!(s.to_bits(), idx.slope(t0, t0 + 1).to_bits());
        }

        for s in 0..n - 1 {
            v.arena().window_slopes(v.slot(), s, s + 1, n - 1, &mut out);
            prop_assert_eq!(out.len(), n - 1 - s);
            for (off, &slope) in out.iter().enumerate() {
                let e = s + 1 + off;
                prop_assert_eq!(
                    slope.to_bits(), idx.slope(s, e).to_bits(),
                    "window [{}, {}]", s, e
                );
            }
        }
    }

    /// The slope-leaf fast path (`eval_unit` / `eval_leaf_run`) returns
    /// exactly what the general `eval_node` tree walk returns, for every
    /// slope-pattern query over every range.
    #[test]
    fn slope_leaf_fast_path_matches_eval_node(pairs in series_strategy()) {
        let t = Trendline::from_pairs("t", &pairs);
        let Some(v) = VizData::from_trendline(&t, 0, 1) else { return Ok(()); };
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        let n = v.n();
        let mut run = Vec::new();
        for q in leaf_queries() {
            let leaf = slope_leaf(&q);
            prop_assert!(leaf.is_some(), "{} must be a slope leaf", q);
            for i in 0..n {
                for j in (i + 1)..n {
                    let fast = ev.eval_unit(leaf, &q, i, j);
                    let general = ev.eval_node(&q, i, j, None);
                    prop_assert_eq!(
                        fast.to_bits(), general.to_bits(),
                        "{} over [{}, {}]: {} vs {}", q, i, j, fast, general
                    );
                }
            }
            for s in 0..n - 1 {
                ev.eval_leaf_run(leaf.unwrap(), s, s + 1, n - 1, &mut run);
                for (off, &score) in run.iter().enumerate() {
                    let e = s + 1 + off;
                    prop_assert_eq!(
                        score.to_bits(),
                        ev.eval_node(&q, s, e, None).to_bits(),
                        "{} run [{}, {}]", q, s, e
                    );
                }
            }
        }
    }

    /// End to end: for every segmenter, sharding {1, 2, 7} × pruning
    /// {on, off} returns byte-identical top-k answers.
    #[test]
    fn engine_is_byte_identical_across_shards_and_pruning(tls in collection_strategy()) {
        let k = 3;
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
            SegmenterKind::Dtw,
            SegmenterKind::Euclidean,
        ] {
            for query in engine_queries() {
                let reference = {
                    let options = EngineOptions {
                        segmenter: kind,
                        pruning_mode: PruningMode::Off,
                        ..EngineOptions::default()
                    };
                    let engine = ShardedEngine::from_trendlines(tls.clone(), 1)
                        .with_options(options);
                    let shared = SharedThresholds::new(1);
                    render(
                        &engine
                            .top_k_batch_shared(&[(&query, k)], engine.options(), &shared)
                            .pop()
                            .unwrap()
                            .unwrap(),
                    )
                };
                for shards in [1usize, 2, 7] {
                    for mode in [PruningMode::Off, PruningMode::Auto] {
                        let options = EngineOptions {
                            segmenter: kind,
                            pruning_mode: mode,
                            ..EngineOptions::default()
                        };
                        let engine = ShardedEngine::from_trendlines(tls.clone(), shards)
                            .with_options(options);
                        let shared = SharedThresholds::new(1);
                        let got = render(
                            &engine
                                .top_k_batch_shared(&[(&query, k)], engine.options(), &shared)
                                .pop()
                                .unwrap()
                                .unwrap(),
                        );
                        prop_assert_eq!(
                            &got, &reference,
                            "{:?} shards={} pruning={:?} diverged on {}",
                            kind, shards, mode, query
                        );
                    }
                }
            }
        }
    }
}
