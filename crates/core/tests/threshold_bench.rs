//! The `parallel_threshold` measurement harness (ROADMAP
//! "Engine-level parallelism by default"): times a collection just above
//! the default threshold (1024 trendlines) sequentially vs auto-fanned,
//! and a 4-shard fan-out on top, so the default can be judged on real
//! hardware. `#[ignore]`d — it is a measurement, not an assertion; CI
//! machines with one core have nothing to win and everything to time
//! out on.
//!
//! Run with:
//! ```sh
//! cargo test --release -p shapesearch-core --test threshold_bench -- --ignored --nocapture
//! ```
//!
//! Recorded runs live in ROADMAP.md next to the open item.

use shapesearch_core::{EngineOptions, ShapeEngine, ShapeQuery, ShardedEngine};
use shapesearch_datastore::Trendline;
use std::time::{Duration, Instant};

fn collection(n: usize, points: usize) -> Vec<Trendline> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
    };
    (0..n)
        .map(|i| {
            let mut y = 0.0;
            let pairs: Vec<(f64, f64)> = (0..points)
                .map(|t| {
                    y += next() + ((i % 3) as f64 - 1.0) * 0.1;
                    (t as f64, y)
                })
                .collect();
            Trendline::from_pairs(format!("t{i}"), &pairs)
        })
        .collect()
}

fn best_of_3(mut run: impl FnMut() -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut len = 0;
    for _ in 0..3 {
        let started = Instant::now();
        len = run();
        best = best.min(started.elapsed());
    }
    (best, len)
}

#[test]
#[ignore = "measurement harness, not an assertion — run with --ignored --nocapture"]
fn measure_parallel_threshold_default() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Just above the 1024 default, so the auto-fan policy triggers.
    let tls = collection(1200, 48);
    let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);

    let sequential_opts = EngineOptions {
        parallel: false,
        parallel_threshold: usize::MAX,
        ..EngineOptions::default()
    };
    let engine = ShapeEngine::from_trendlines(tls.clone());
    let (t_seq, n_seq) = best_of_3(|| {
        engine
            .top_k_with_options(&q, 10, &sequential_opts)
            .unwrap()
            .len()
    });
    // Default options: 1200 ≥ 1024 ⇒ the engine auto-parallelizes.
    let (t_auto, n_auto) = best_of_3(|| engine.top_k(&q, 10).unwrap().len());
    assert_eq!(n_seq, n_auto);

    let sharded = ShardedEngine::from_trendlines(tls, cores.max(2));
    let (t_shard, n_shard) = best_of_3(|| sharded.top_k(&q, 10).unwrap().len());
    assert_eq!(n_seq, n_shard);

    println!(
        "parallel_threshold bench: cores={cores} trendlines=1200 points=48 \
         sequential={}µs auto-fan(default opts)={}µs sharded({} shards, auto)={}µs",
        t_seq.as_micros(),
        t_auto.as_micros(),
        sharded.shard_count(),
        t_shard.as_micros(),
    );
}
