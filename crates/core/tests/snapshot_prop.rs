//! Property tests for the on-disk snapshot path: an engine assembled
//! from mapped snapshot partitions must return **byte-identical** top-k
//! answers to the eager in-memory engine — across random collections
//! (including NaN-poisoned, constant, and two-point series), shard
//! counts {1, 2, 4}, pruning on and off, and both the seeded bin width
//! and a re-GROUPed one. Byte-identity is the snapshot contract: a cold
//! load is a layout change, never a result change.

use proptest::prelude::*;
use shapesearch_core::{
    snapshot, EngineOptions, PruningMode, ShapeEngine, ShapeQuery, ShardedEngine, SharedThresholds,
    Snapshot,
};
use shapesearch_datastore::Trendline;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Strategy: one series, covering the shapes that break naive readers —
/// random walks, constants, minimal two-point series, sub-canvas series
/// GROUP rejects, and a NaN dropped mid-walk.
fn series_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop_oneof![
        proptest::collection::vec(-1e3f64..1e3, 2..24)
            .prop_map(|ys| { ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect() }),
        (2usize..16, -5f64..5.0).prop_map(|(n, c)| (0..n).map(|i| (i as f64, c)).collect()),
        (-5f64..5.0, -5f64..5.0).prop_map(|(a, b)| vec![(0.0, a), (1.0, b)]),
        // One point: GROUP rejects it, exercising the slot-gap encoding.
        (-5f64..5.0).prop_map(|a| vec![(0.0, a)]),
        (proptest::collection::vec(-1e2f64..1e2, 3..16), 0usize..16).prop_map(|(ys, pos)| {
            let mut pts: Vec<(f64, f64)> =
                ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
            let p = pos % pts.len();
            pts[p].1 = f64::NAN;
            pts
        }),
    ]
}

fn collection_strategy() -> impl Strategy<Value = Vec<Trendline>> {
    proptest::collection::vec(series_strategy(), 1..10).prop_map(|all| {
        all.into_iter()
            .enumerate()
            .map(|(i, pairs)| Trendline::from_pairs(format!("t{i}"), &pairs))
            .collect()
    })
}

fn queries() -> Vec<ShapeQuery> {
    vec![
        ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
        ShapeQuery::up(),
        ShapeQuery::Or(vec![ShapeQuery::flat(), ShapeQuery::down()]),
    ]
}

/// NaN-safe canonical rendering: scores compared by bit pattern.
fn render(results: &[shapesearch_core::TopKResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{}:{}:{}:{:?}",
                r.key,
                r.viz_index,
                r.score.to_bits(),
                r.ranges
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn unique_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ss-snap-prop-{}-{}.snap",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// The snapshot-load path the server's resident-shard loader uses:
/// partition the snapshot into `shards` deterministic bounds, build one
/// `ShapeEngine` per partition seeded with the mapped GROUP run, and
/// assemble them into a `ShardedEngine`.
fn engine_from_snapshot(snap: &Snapshot, shards: usize, options: EngineOptions) -> ShardedEngine {
    let engines: Vec<Arc<ShapeEngine>> = snap
        .partition_bounds(shards)
        .into_iter()
        .map(|(start, end)| {
            let part = snap.partition(start, end);
            let engine = ShapeEngine::from_trendlines(part.trendlines).with_base_index(start);
            engine.seed_grouped(snap.bin_width(), part.grouped);
            Arc::new(engine)
        })
        .collect();
    ShardedEngine::from_shard_engines(engines).with_options(options)
}

fn top_k(engine: &ShardedEngine, query: &ShapeQuery, k: usize) -> String {
    let shared = SharedThresholds::new(1);
    render(
        &engine
            .top_k_batch_shared(&[(query, k)], engine.options(), &shared)
            .pop()
            .unwrap()
            .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold-load byte-identity: snapshot-backed engines equal the eager
    /// path bit for bit, for shards {1, 2, 4} × pruning {off, auto} ×
    /// {seeded bin width, re-GROUPed bin width}.
    #[test]
    fn snapshot_backed_engine_is_byte_identical(tls in collection_strategy()) {
        let k = 3;
        let path = unique_path();
        // Seed bin width 1 (the arena persisted in the snapshot); bin
        // width 2 forces a re-GROUP from the loaded trendlines.
        snapshot::write(&path, &tls, 1).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        prop_assert_eq!(snap.trendline_count(), tls.len());

        for bin_width in [1usize, 2] {
            for query in queries() {
                let reference = {
                    let options = EngineOptions {
                        bin_width,
                        pruning_mode: PruningMode::Off,
                        ..EngineOptions::default()
                    };
                    let eager = ShardedEngine::from_trendlines(tls.clone(), 1)
                        .with_options(options);
                    top_k(&eager, &query, k)
                };
                for shards in [1usize, 2, 4] {
                    for mode in [PruningMode::Off, PruningMode::Auto] {
                        let options = EngineOptions {
                            bin_width,
                            pruning_mode: mode,
                            ..EngineOptions::default()
                        };
                        // Eager sharded engine at the same settings must
                        // agree (the baseline contract)…
                        let eager = ShardedEngine::from_trendlines(tls.clone(), shards)
                            .with_options(options.clone());
                        let got = top_k(&eager, &query, k);
                        prop_assert_eq!(
                            &got, &reference,
                            "eager shards={} pruning={:?} bin={} diverged on {}",
                            shards, mode, bin_width, query
                        );
                        // …and so must the snapshot-backed one.
                        let cold = engine_from_snapshot(&snap, shards, options);
                        let got = top_k(&cold, &query, k);
                        prop_assert_eq!(
                            &got, &reference,
                            "snapshot shards={} pruning={:?} bin={} diverged on {}",
                            shards, mode, bin_width, query
                        );
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
