//! The ShapeQuery algebra (paper §3, Tables 1–2).
//!
//! A [`ShapeQuery`] is a tree of operators over [`ShapeSegment`]s:
//!
//! * `MATCH [ ]` — implicit: every segment is bound to a match operator.
//! * `CONCAT ⊗` — a sequence of patterns, each over consecutive sub-regions.
//! * `AND ⊙` — several patterns over the *same* sub-region.
//! * `OR ⊕` — the best of several patterns over the same sub-region.
//! * `OPPOSITE !` — negates the shape expressed by its operand.
//!
//! Segments carry the five shape primitives: LOCATION (`x.s`, `x.e`, `y.s`,
//! `y.e`), PATTERN (`up`/`down`/`flat`/slope/`$pos`/udp/nested), MODIFIER
//! (`>`, `>>`, `<`, `<<`, `=`, quantifiers `{n,m}`), SKETCH (`v`), and the
//! ITERATOR sub-primitive (`x.s=., x.e=.+w`).

use std::fmt;

/// A ShapeQuery: the structured internal representation every user query
/// (natural language, regex, sketch) is translated into.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeQuery {
    /// A single `[ ... ]` ShapeSegment (bound to the MATCH operator).
    Segment(ShapeSegment),
    /// CONCAT (⊗): a sequence of sub-shapes over consecutive sub-regions.
    Concat(Vec<ShapeQuery>),
    /// AND (⊙): all sub-shapes must hold over the same sub-region.
    And(Vec<ShapeQuery>),
    /// OR (⊕): the best-matching sub-shape over the sub-region.
    Or(Vec<ShapeQuery>),
    /// OPPOSITE (!): the opposite of the sub-shape.
    Not(Box<ShapeQuery>),
}

impl ShapeQuery {
    /// A single-segment query matching pattern `p` anywhere.
    pub fn pattern(p: Pattern) -> Self {
        ShapeQuery::Segment(ShapeSegment::pattern(p))
    }

    /// Shorthand for an `up` segment.
    pub fn up() -> Self {
        Self::pattern(Pattern::Up)
    }

    /// Shorthand for a `down` segment.
    pub fn down() -> Self {
        Self::pattern(Pattern::Down)
    }

    /// Shorthand for a `flat` segment.
    pub fn flat() -> Self {
        Self::pattern(Pattern::Flat)
    }

    /// CONCAT of the given sub-queries, flattening nested CONCATs.
    pub fn concat(parts: Vec<ShapeQuery>) -> Self {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                ShapeQuery::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            ShapeQuery::Concat(flat)
        }
    }

    /// Number of ShapeExprs in the top-level CONCAT chain (the `k` of the
    /// paper's complexity analyses); 1 for non-CONCAT roots.
    pub fn chain_len(&self) -> usize {
        match self {
            ShapeQuery::Concat(parts) => parts.len(),
            _ => 1,
        }
    }

    /// Iterates over every segment in the query tree.
    pub fn segments(&self) -> Vec<&ShapeSegment> {
        let mut out = Vec::new();
        self.collect_segments(&mut out);
        out
    }

    fn collect_segments<'a>(&'a self, out: &mut Vec<&'a ShapeSegment>) {
        match self {
            ShapeQuery::Segment(s) => {
                out.push(s);
                if let Some(Pattern::Nested(q)) = &s.pattern {
                    q.collect_segments(out);
                }
            }
            ShapeQuery::Concat(cs) | ShapeQuery::And(cs) | ShapeQuery::Or(cs) => {
                for c in cs {
                    c.collect_segments(out);
                }
            }
            ShapeQuery::Not(c) => c.collect_segments(out),
        }
    }

    /// A query is *fuzzy* when at least one segment is missing a start or end
    /// x location (paper §6: "a ShapeSegment having at least one of the start
    /// or end x locations missing [is a] fuzzy ShapeSegment").
    pub fn is_fuzzy(&self) -> bool {
        self.segments().iter().any(|s| s.is_fuzzy())
    }

    /// Collects the fully-pinned x ranges referenced by the query — the
    /// input to the push-down optimizations of §5.4.
    pub fn pinned_x_ranges(&self) -> Vec<(f64, f64)> {
        self.segments()
            .iter()
            .filter_map(|s| match (s.location.x_start, s.location.x_end) {
                (Some(a), Some(b)) if a <= b => Some((a, b)),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for ShapeQuery {
    /// Renders the query in the visual-regex syntax accepted by the parser,
    /// so `parse_regex(q.to_string()) == q` (round-trip property).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeQuery::Segment(s) => write!(f, "{s}"),
            ShapeQuery::Concat(cs) => {
                for c in cs {
                    write_operand(f, c)?;
                }
                Ok(())
            }
            ShapeQuery::And(cs) => write_infix(f, cs, " & "),
            ShapeQuery::Or(cs) => write_infix(f, cs, " | "),
            ShapeQuery::Not(c) => {
                write!(f, "!")?;
                write_operand(f, c)
            }
        }
    }
}

fn write_operand(f: &mut fmt::Formatter<'_>, q: &ShapeQuery) -> fmt::Result {
    match q {
        ShapeQuery::Segment(_) => write!(f, "{q}"),
        _ => write!(f, "({q})"),
    }
}

fn write_infix(f: &mut fmt::Formatter<'_>, cs: &[ShapeQuery], sep: &str) -> fmt::Result {
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write_operand(f, c)?;
    }
    Ok(())
}

/// LOCATION primitive: optional endpoints of the sub-region a pattern must
/// match. All four components are optional; fully absent = fuzzy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Location {
    /// Starting x coordinate (`x.s`).
    pub x_start: Option<f64>,
    /// Ending x coordinate (`x.e`).
    pub x_end: Option<f64>,
    /// Starting y coordinate (`y.s`).
    pub y_start: Option<f64>,
    /// Ending y coordinate (`y.e`).
    pub y_end: Option<f64>,
}

impl Location {
    /// True when no component is set.
    pub fn is_empty(&self) -> bool {
        self.x_start.is_none()
            && self.x_end.is_none()
            && self.y_start.is_none()
            && self.y_end.is_none()
    }
}

/// Reference to another ShapeSegment's pattern (the POSITION `$` primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosRef {
    /// `$k`: the k-th segment of the top-level chain (0-based).
    Absolute(usize),
    /// `$-`: the previous segment.
    Prev,
    /// `$+`: the next segment.
    Next,
}

/// PATTERN primitive values.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Increasing trend.
    Up,
    /// Decreasing trend.
    Down,
    /// Flat / stable trend.
    Flat,
    /// Any trend (`*`) — always matches.
    Any,
    /// A specific slope in degrees (`p=45`).
    Slope(f64),
    /// The pattern of another segment (`p=$0`, `p=$-`, `p=$+`).
    Position(PosRef),
    /// A named user-defined pattern, scored by a registered function.
    Udp(String),
    /// A nested ShapeQuery used as a pattern value.
    Nested(Box<ShapeQuery>),
}

/// MODIFIER primitive values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Modifier {
    /// `>`: gradual (with up/down), or "more than" with POSITION; the
    /// optional factor expresses "at least f×" comparisons.
    More(Option<f64>),
    /// `>>`: sharp (with up/down), or "much more than" with POSITION.
    MuchMore,
    /// `<`: "less than" with POSITION (e.g. `m=<1/2`), gradual inverse.
    Less(Option<f64>),
    /// `<<`: "much less than" with POSITION.
    MuchLess,
    /// `=`: similar slope to the referenced segment.
    Similar,
    /// `{min, max}` quantifier: the pattern must occur between `min` and
    /// `max` times ({2,} = at least twice, {,2} = at most twice, exact = both).
    Quantifier {
        /// Minimum number of occurrences (None = no lower bound).
        min: Option<u32>,
        /// Maximum number of occurrences (None = no upper bound).
        max: Option<u32>,
    },
}

impl Modifier {
    /// An exact-count quantifier (`m = n`).
    pub fn exactly(n: u32) -> Self {
        Modifier::Quantifier {
            min: Some(n),
            max: Some(n),
        }
    }

    /// An at-least quantifier (`m = {n,}`).
    pub fn at_least(n: u32) -> Self {
        Modifier::Quantifier {
            min: Some(n),
            max: None,
        }
    }

    /// An at-most quantifier (`m = {,n}`).
    pub fn at_most(n: u32) -> Self {
        Modifier::Quantifier {
            min: None,
            max: Some(n),
        }
    }
}

/// Width constraint from the ITERATOR sub-primitive
/// (`[x.s=., x.e=.+w, p=...]`): the segment slides over the trendline with a
/// fixed x-width `w`, matching the best window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IteratorSpec {
    /// Window width in x-axis units.
    pub width: f64,
}

/// A ShapeSegment: one `[ ... ]` unit combining the shape primitives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShapeSegment {
    /// LOCATION primitive.
    pub location: Location,
    /// PATTERN primitive (optional — a location-only segment is allowed).
    pub pattern: Option<Pattern>,
    /// MODIFIER primitive.
    pub modifier: Option<Modifier>,
    /// SKETCH primitive: the `(x, y)` vector of a drawn sketch for precise
    /// matching.
    pub sketch: Option<Vec<(f64, f64)>>,
    /// ITERATOR width constraint.
    pub iterator: Option<IteratorSpec>,
}

impl ShapeSegment {
    /// A segment with only a pattern.
    pub fn pattern(p: Pattern) -> Self {
        Self {
            pattern: Some(p),
            ..Self::default()
        }
    }

    /// A segment with a pattern pinned to `[x_start, x_end]`.
    pub fn pinned(p: Pattern, x_start: f64, x_end: f64) -> Self {
        Self {
            pattern: Some(p),
            location: Location {
                x_start: Some(x_start),
                x_end: Some(x_end),
                ..Location::default()
            },
            ..Self::default()
        }
    }

    /// Sets the modifier, returning `self` for chaining.
    #[must_use]
    pub fn with_modifier(mut self, m: Modifier) -> Self {
        self.modifier = Some(m);
        self
    }

    /// Sets an iterator width, returning `self` for chaining.
    #[must_use]
    pub fn with_width(mut self, width: f64) -> Self {
        self.iterator = Some(IteratorSpec { width });
        self
    }

    /// Fuzzy = at least one of the x endpoints is missing (§6).
    pub fn is_fuzzy(&self) -> bool {
        self.location.x_start.is_none() || self.location.x_end.is_none()
    }

    /// True when the segment carries a quantifier modifier.
    pub fn has_quantifier(&self) -> bool {
        matches!(self.modifier, Some(Modifier::Quantifier { .. }))
    }
}

impl fmt::Display for ShapeSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(v) = self.location.x_start {
            parts.push(format!("x.s={}", fmt_num(v)));
        }
        if let Some(w) = self.iterator {
            parts.push("x.s=.".into());
            parts.push(format!("x.e=.+{}", fmt_num(w.width)));
        }
        if let Some(v) = self.location.x_end {
            parts.push(format!("x.e={}", fmt_num(v)));
        }
        if let Some(v) = self.location.y_start {
            parts.push(format!("y.s={}", fmt_num(v)));
        }
        if let Some(v) = self.location.y_end {
            parts.push(format!("y.e={}", fmt_num(v)));
        }
        if let Some(p) = &self.pattern {
            let pv = match p {
                Pattern::Up => "up".to_owned(),
                Pattern::Down => "down".to_owned(),
                Pattern::Flat => "flat".to_owned(),
                Pattern::Any => "*".to_owned(),
                Pattern::Slope(d) => fmt_num(*d),
                Pattern::Position(PosRef::Absolute(i)) => format!("${i}"),
                Pattern::Position(PosRef::Prev) => "$-".to_owned(),
                Pattern::Position(PosRef::Next) => "$+".to_owned(),
                Pattern::Udp(name) => format!("udp:{name}"),
                Pattern::Nested(q) => format!("[{q}]"),
            };
            parts.push(format!("p={pv}"));
        }
        if let Some(m) = &self.modifier {
            let mv = match m {
                Modifier::More(None) => ">".to_owned(),
                Modifier::More(Some(x)) => format!(">{}", fmt_num(*x)),
                Modifier::MuchMore => ">>".to_owned(),
                Modifier::Less(None) => "<".to_owned(),
                Modifier::Less(Some(x)) => format!("<{}", fmt_num(*x)),
                Modifier::MuchLess => "<<".to_owned(),
                Modifier::Similar => "=".to_owned(),
                Modifier::Quantifier { min, max } => match (min, max) {
                    (Some(a), Some(b)) if a == b => format!("{a}"),
                    (Some(a), Some(b)) => format!("{{{a},{b}}}"),
                    (Some(a), None) => format!("{{{a},}}"),
                    (None, Some(b)) => format!("{{,{b}}}"),
                    (None, None) => "{,}".to_owned(),
                },
            };
            parts.push(format!("m={mv}"));
        }
        if let Some(v) = &self.sketch {
            let pts: Vec<String> = v
                .iter()
                .map(|(x, y)| format!("{}:{}", fmt_num(*x), fmt_num(*y)))
                .collect();
            parts.push(format!("v=({})", pts.join(",")));
        }
        write!(f, "[{}]", parts.join(", "))
    }
}

/// Formats a number without a trailing `.0` for integers.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens() {
        let q = ShapeQuery::concat(vec![
            ShapeQuery::up(),
            ShapeQuery::concat(vec![ShapeQuery::down(), ShapeQuery::up()]),
        ]);
        assert_eq!(q.chain_len(), 3);
    }

    #[test]
    fn concat_of_one_unwraps() {
        let q = ShapeQuery::concat(vec![ShapeQuery::up()]);
        assert!(matches!(q, ShapeQuery::Segment(_)));
    }

    #[test]
    fn fuzzy_detection() {
        assert!(ShapeQuery::up().is_fuzzy());
        let pinned = ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 10.0));
        assert!(!pinned.is_fuzzy());
        let half = ShapeQuery::Segment(ShapeSegment {
            location: Location {
                x_start: Some(1.0),
                ..Location::default()
            },
            pattern: Some(Pattern::Up),
            ..ShapeSegment::default()
        });
        assert!(half.is_fuzzy());
    }

    #[test]
    fn pinned_ranges_collected() {
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 50.0, 100.0)),
            ShapeQuery::down(),
        ]);
        assert_eq!(q.pinned_x_ranges(), vec![(50.0, 100.0)]);
    }

    #[test]
    fn segments_walks_nested() {
        let nested = ShapeQuery::Segment(ShapeSegment::pattern(Pattern::Nested(Box::new(
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
        ))));
        // 1 outer + 2 inner segments.
        assert_eq!(nested.segments().len(), 3);
    }

    #[test]
    fn display_simple_sequence() {
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        assert_eq!(q.to_string(), "[p=up][p=down]");
    }

    #[test]
    fn display_location_and_modifier() {
        let seg = ShapeSegment::pinned(Pattern::Up, 2.0, 5.0).with_modifier(Modifier::MuchMore);
        assert_eq!(seg.to_string(), "[x.s=2, x.e=5, p=up, m=>>]");
    }

    #[test]
    fn display_or_grouping() {
        let q = ShapeQuery::concat(vec![
            ShapeQuery::up(),
            ShapeQuery::Or(vec![
                ShapeQuery::flat(),
                ShapeQuery::concat(vec![ShapeQuery::down(), ShapeQuery::up()]),
            ]),
        ]);
        assert_eq!(q.to_string(), "[p=up]([p=flat] | ([p=down][p=up]))");
    }

    #[test]
    fn display_quantifiers() {
        assert_eq!(
            ShapeSegment::pattern(Pattern::Up)
                .with_modifier(Modifier::exactly(2))
                .to_string(),
            "[p=up, m=2]"
        );
        assert_eq!(
            ShapeSegment::pattern(Pattern::Up)
                .with_modifier(Modifier::at_least(2))
                .to_string(),
            "[p=up, m={2,}]"
        );
        assert_eq!(
            ShapeSegment::pattern(Pattern::Up)
                .with_modifier(Modifier::at_most(3))
                .to_string(),
            "[p=up, m={,3}]"
        );
    }

    #[test]
    fn display_iterator_and_slope() {
        let seg = ShapeSegment::pattern(Pattern::Slope(45.0)).with_width(3.0);
        assert_eq!(seg.to_string(), "[x.s=., x.e=.+3, p=45]");
    }

    #[test]
    fn display_position_refs() {
        assert_eq!(
            ShapeSegment::pattern(Pattern::Position(PosRef::Absolute(0)))
                .with_modifier(Modifier::Less(None))
                .to_string(),
            "[p=$0, m=<]"
        );
        assert_eq!(
            ShapeSegment::pattern(Pattern::Position(PosRef::Prev)).to_string(),
            "[p=$-]"
        );
    }

    #[test]
    fn location_is_empty() {
        assert!(Location::default().is_empty());
        assert!(!Location {
            y_end: Some(1.0),
            ..Location::default()
        }
        .is_empty());
    }
}
