//! Optimal fuzzy segmentation by dynamic programming (paper §6.1).
//!
//! Theorem 6.1 (optimal substructure): the optimal segmentation score for k
//! ShapeExprs over points 1..n can be constructed from optimal segmentations
//! of sub-sequences over smaller regions, giving the recurrence
//!
//! `OPT(1, i, [1:j]) = maxₗ ⊗(OPT(1, l, [1:j−1]), sc(l, i, [j−1:j]))`
//!
//! implemented here as a table over (unit index, end point) with weighted
//! scores (CONCAT's average is carried by the per-unit weights, so `⊗`
//! reduces to addition). Runs in O(n²k) (Theorem 6.2).
//!
//! Location-pinned units (`x.s`/`x.e`), ITERATOR width windows, and the
//! paper's hybrid fuzzy/non-fuzzy queries are handled by constraining the
//! admissible start/end positions of each unit: pinned endpoints create
//! anchors (and may leave ignored gaps, §5.4c); fuzzy neighbours share
//! endpoints ("the falling sub-region must start from the end point of the
//! region where rising is matched", §3).

use super::{best_over_chains, MatchResult, Segmenter};
use crate::chain::{Chain, Unit};
use crate::eval::{chain_score_with_positions, slope_leaf, Evaluator, SlopeLeaf};

/// The optimal DP segmenter.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSegmenter;

impl Segmenter for DpSegmenter {
    fn match_viz(&self, ev: &Evaluator<'_>, chains: &[Chain]) -> MatchResult {
        best_over_chains(chains, |chain| solve_chain(ev, chain, 0, ev.viz.n() - 1))
    }
}

/// Optimal segmentation of `chain` over the inclusive point range
/// `[lo, hi]`, as used for nested CONCAT patterns. Returns the score and
/// per-unit ranges.
pub fn best_segmentation_in_range(
    ev: &Evaluator<'_>,
    chain: &Chain,
    lo: usize,
    hi: usize,
) -> (f64, Vec<(usize, usize)>) {
    let r = solve_chain(ev, chain, lo, hi);
    (r.score, r.ranges)
}

/// Admissible placement of one unit, derived from its pins/width.
#[derive(Debug, Clone, Copy)]
enum Placement {
    /// Fuzzy: starts exactly at the previous end, ends freely.
    Fuzzy,
    /// Pinned start and/or end (point indices), possibly leaving gaps.
    Pinned {
        start: Option<usize>,
        end: Option<usize>,
    },
    /// Sliding window of a fixed number of point steps (ITERATOR).
    Window(usize),
}

fn placement(ev: &Evaluator<'_>, unit: &Unit) -> Placement {
    if let Some(w) = unit.width {
        return Placement::Window(ev.viz.width_to_points(w));
    }
    if unit.pin_start.is_some() || unit.pin_end.is_some() {
        return Placement::Pinned {
            start: unit.pin_start.map(|x| ev.viz.x_to_index(x)),
            end: unit.pin_end.map(|x| ev.viz.x_to_index(x)),
        };
    }
    Placement::Fuzzy
}

/// DP over (unit, end-point) states. `run_lo`/`run_hi` bound the point range
/// the chain may occupy; the first fuzzy unit starts at `run_lo` and the
/// last fuzzy unit must end at `run_hi`.
#[allow(clippy::needless_range_loop)] // indices cross multiple DP tables
pub(crate) fn solve_chain(
    ev: &Evaluator<'_>,
    chain: &Chain,
    run_lo: usize,
    run_hi: usize,
) -> MatchResult {
    let k = chain.len();
    let n_last = run_hi;
    if k == 0 || run_hi <= run_lo {
        return MatchResult::infeasible();
    }

    // best[e] for the current unit layer; parent[t][e] = (prev_end, start).
    const NEG: f64 = f64::NEG_INFINITY;
    let width = run_hi + 2; // index by end point directly
    let mut prev_layer: Vec<f64> = vec![NEG; width];
    let mut parent: Vec<Vec<(u32, u32)>> = vec![vec![(u32::MAX, u32::MAX); width]; k];

    // Virtual "unit -1" ends at run_lo with score 0.
    prev_layer[run_lo] = 0.0;

    // Slope-leaf classification per unit (once per chain, not per
    // window): leaf units run the O(n²) inner loops through the batched
    // window kernel instead of per-window `eval_node` calls.
    let leaves: Vec<Option<SlopeLeaf>> = chain.units.iter().map(|u| slope_leaf(&u.query)).collect();
    let mut run_scores: Vec<f64> = Vec::new();

    for (t, unit) in chain.units.iter().enumerate() {
        let mut layer: Vec<f64> = vec![NEG; width];
        let place = placement(ev, unit);
        let last = t + 1 == k;
        let leaf = leaves[t];
        for pe in run_lo..=run_hi {
            let base = prev_layer[pe];
            if base == NEG {
                continue;
            }
            let parent_t = &mut parent[t];
            let try_range =
                |layer: &mut Vec<f64>, parent_t: &mut Vec<(u32, u32)>, s: usize, e: usize| {
                    if e <= s || e > run_hi {
                        return;
                    }
                    let sc = base + unit.weight * ev.eval_unit(leaf, &unit.query, s, e);
                    if sc > layer[e] {
                        layer[e] = sc;
                        parent_t[e] = (pe as u32, s as u32);
                    }
                };
            // A leaf unit's whole candidate run `[s, s+1..=run_hi]` in
            // one batched kernel pass; identical admission logic.
            let try_run = |layer: &mut Vec<f64>,
                           parent_t: &mut Vec<(u32, u32)>,
                           run_scores: &mut Vec<f64>,
                           l: SlopeLeaf,
                           s: usize| {
                ev.eval_leaf_run(l, s, s + 1, run_hi, run_scores);
                for (off, &leaf_score) in run_scores.iter().enumerate() {
                    let e = s + 1 + off;
                    let sc = base + unit.weight * leaf_score;
                    if sc > layer[e] {
                        layer[e] = sc;
                        parent_t[e] = (pe as u32, s as u32);
                    }
                }
            };
            match place {
                Placement::Window(w) => {
                    // Sliding window: any start at or after the previous end.
                    for s in pe..run_hi {
                        let e = s + w;
                        if e > run_hi {
                            break;
                        }
                        try_range(&mut layer, parent_t, s, e);
                    }
                }
                Placement::Pinned { start, end } => {
                    // A pinned start anchors the unit (possibly leaving an
                    // ignored gap after `pe`); an unpinned start attaches to
                    // the previous end.
                    let s = match start {
                        Some(s) if s >= pe && s < run_hi => s,
                        Some(_) => continue, // anchor conflicts with history
                        None => pe,
                    };
                    match end {
                        Some(e) => try_range(&mut layer, parent_t, s, e),
                        None if last => try_range(&mut layer, parent_t, s, run_hi),
                        None => match leaf {
                            Some(l) => try_run(&mut layer, parent_t, &mut run_scores, l, s),
                            None => {
                                for e in (s + 1)..=run_hi {
                                    try_range(&mut layer, parent_t, s, e);
                                }
                            }
                        },
                    }
                }
                Placement::Fuzzy => {
                    let s = pe;
                    if last {
                        try_range(&mut layer, parent_t, s, n_last);
                    } else {
                        match leaf {
                            Some(l) => try_run(&mut layer, parent_t, &mut run_scores, l, s),
                            None => {
                                for e in (s + 1)..=run_hi {
                                    try_range(&mut layer, parent_t, s, e);
                                }
                            }
                        }
                    }
                }
            }
        }
        prev_layer = layer;
    }

    // Pick the best final end state.
    let mut best_e = usize::MAX;
    let mut best = NEG;
    for e in run_lo..=run_hi {
        if prev_layer[e] > best {
            best = prev_layer[e];
            best_e = e;
        }
    }
    if best_e == usize::MAX {
        return MatchResult::infeasible();
    }

    // Reconstruct ranges.
    let mut ranges = vec![(0usize, 0usize); k];
    let mut e = best_e;
    for t in (0..k).rev() {
        let (pe, s) = parent[t][e];
        ranges[t] = (s as usize, e);
        e = pe as usize;
    }

    let score = if chain.has_position_refs() {
        chain_score_with_positions(ev, chain, &ranges)
    } else {
        best
    };
    MatchResult { score, ranges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Pattern, ShapeQuery, ShapeSegment};
    use crate::chain::expand_chains;
    use crate::engine::group::VizData;
    use crate::eval::UdpRegistry;
    use crate::score::ScoreParams;
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)]) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs("t", pairs), 0, 1).unwrap()
    }

    fn run(q: &ShapeQuery, v: &VizData) -> MatchResult {
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(v, &params, &udps);
        DpSegmenter.match_viz(&ev, &expand_chains(q))
    }

    #[test]
    fn up_down_finds_the_peak_break() {
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 2.0),
            (2.0, 4.0),
            (3.0, 6.0),
            (4.0, 4.5),
            (5.0, 3.0),
            (6.0, 1.0),
        ]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let r = run(&q, &v);
        assert!(r.score > 0.6, "score {}", r.score);
        assert_eq!(r.ranges.len(), 2);
        // Break at the peak (index 3).
        assert_eq!(r.ranges[0], (0, 3));
        assert_eq!(r.ranges[1], (3, 6));
    }

    #[test]
    fn segmentation_tiles_whole_viz_for_fuzzy() {
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.0, 0.5),
            (3.0, 1.5),
            (4.0, 1.0),
            (5.0, 2.0),
        ]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]);
        let r = run(&q, &v);
        assert_eq!(r.ranges.first().unwrap().0, 0);
        assert_eq!(r.ranges.last().unwrap().1, 5);
        // Units share endpoints.
        for w in r.ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn infeasible_when_more_units_than_intervals() {
        let v = viz(&[(0.0, 0.0), (1.0, 1.0)]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]);
        let r = run(&q, &v);
        assert_eq!(r.score, -1.0);
        assert!(r.ranges.is_empty());
    }

    #[test]
    fn pinned_unit_is_anchored() {
        let v = viz(&[
            (0.0, 5.0),
            (10.0, 4.0),
            (20.0, 3.0),
            (30.0, 4.5),
            (40.0, 6.0),
            (50.0, 5.0),
            (60.0, 4.0),
        ]);
        // down pinned to x ∈ [0, 20], then up, then down.
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Down, 0.0, 20.0)),
            ShapeQuery::up(),
            ShapeQuery::down(),
        ]);
        let r = run(&q, &v);
        assert!(r.score > 0.4, "score {}", r.score);
        assert_eq!(r.ranges[0], (0, 2));
        // Fuzzy tail starts at the anchor end and tiles to the end.
        assert_eq!(r.ranges[1].0, 2);
        assert_eq!(r.ranges[2].1, 6);
    }

    #[test]
    fn pinned_with_gap_ignores_middle() {
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 2.0),
            (2.0, 1.0),
            (3.0, 0.5),
            (4.0, 1.5),
            (5.0, 3.0),
        ]);
        // up pinned [0,1], then up pinned [4,5]: the dip in between is
        // ignored, both anchors rise.
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 1.0)),
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 4.0, 5.0)),
        ]);
        let r = run(&q, &v);
        assert!(r.score > 0.6, "score {}", r.score);
        assert_eq!(r.ranges, vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn window_unit_slides_to_best_position() {
        // Sharp rise in the middle; window of width 2 x-units must find it.
        let v = viz(&[
            (0.0, 1.0),
            (1.0, 1.1),
            (2.0, 1.0),
            (3.0, 5.0),
            (4.0, 9.0),
            (5.0, 9.1),
            (6.0, 9.0),
        ]);
        let q = ShapeQuery::Segment(ShapeSegment::pattern(Pattern::Up).with_width(2.0));
        let r = run(&q, &v);
        assert_eq!(r.ranges, vec![(2, 4)]);
        assert!(r.score > 0.7, "score {}", r.score);
    }

    #[test]
    fn nested_range_segmentation() {
        let v = viz(&[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 2.0), (4.0, 0.0)]);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let chains = expand_chains(&q);
        let (score, ranges) = best_segmentation_in_range(&ev, &chains[0], 0, 4);
        // A clean 45°-per-flank peak scores ≈ 0.7 (atan scoring: 45° → 0.5,
        // the canvas doubles the slope of each half).
        assert!(score > 0.6, "score {score}");
        assert_eq!(ranges, vec![(0, 2), (2, 4)]);
        // Sub-range segmentation respects bounds.
        let (sub_score, sub_ranges) = best_segmentation_in_range(&ev, &chains[0], 1, 3);
        assert!(sub_score > 0.0);
        assert_eq!(sub_ranges, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn or_chain_picks_better_alternative() {
        let v = viz(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let q = ShapeQuery::Or(vec![ShapeQuery::down(), ShapeQuery::up()]);
        let r = run(&q, &v);
        assert!(r.score > 0.4);
        assert_eq!(r.ranges, vec![(0, 3)]);
    }

    #[test]
    fn dp_is_at_least_as_good_as_any_manual_split() {
        let v = viz(&[
            (0.0, 0.3),
            (1.0, 1.2),
            (2.0, 0.8),
            (3.0, 2.0),
            (4.0, 1.1),
            (5.0, 0.2),
        ]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        let chains = expand_chains(&q);
        let r = DpSegmenter.match_viz(&ev, &chains);
        // Exhaustively check every split point.
        for b in 1..5 {
            let manual = 0.5 * ev.eval_node(&ShapeQuery::up(), 0, b, None)
                + 0.5 * ev.eval_node(&ShapeQuery::down(), b, 5, None);
            assert!(
                r.score >= manual - 1e-9,
                "DP {} worse than manual split at {b}: {manual}",
                r.score
            );
        }
    }
}
