//! Two-stage collective pruning (paper §6.3).
//!
//! Stage 1 samples a small set of visualizations and scores them with the
//! DP on a uniform subset of points, yielding a lower bound on the final
//! top-k score. Stage 2 processes the collection: for each visualization it
//! first derives *score bounds* from coarse partitions of the trendline
//! (Theorem 6.4 / Table 7 — the final score of a pattern is bounded by the
//! extreme scores of that pattern across any level of the SegmentTree) and
//! prunes visualizations whose upper bound cannot reach the current top-k
//! lower bound. Survivors run the full SegmentTree and tighten the bound
//! online.
//!
//! The pruning "helps avoid processing until the root node for the majority
//! of visualizations ... particularly effective when the user is looking for
//! visualizations with rare (needle-in-the-haystack) patterns".

use super::dp::DpSegmenter;
use super::segment_tree::SegmentTreeSegmenter;
use super::{MatchResult, Segmenter};
use crate::ast::{Pattern, ShapeQuery, ShapeSegment};
use crate::chain::Chain;
use crate::engine::group::VizData;
use crate::eval::{Evaluator, UdpRegistry};
use crate::score::{score_down, score_flat, score_theta, score_up, ScoreParams};

/// Configuration of the two-stage pruning driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruningConfig {
    /// Stage-1 sample size.
    pub sample_size: usize,
    /// Stage-1 coarse point budget per sampled visualization.
    pub coarse_points: usize,
    /// Safety margin subtracted from the sampled lower bound (the sampled
    /// scores are approximate).
    pub margin: f64,
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self {
            sample_size: 16,
            coarse_points: 32,
            margin: 0.05,
        }
    }
}

/// Outcome of the pruned run for one visualization.
#[derive(Debug, Clone, PartialEq)]
pub enum PrunedOutcome {
    /// Scored exactly (survived the bound checks).
    Scored(MatchResult),
    /// Pruned by the bound check; the value is the proven upper bound.
    Pruned(f64),
}

/// Runs the two-stage collective pruning over a collection.
///
/// Returns one outcome per visualization, in input order. Visualizations
/// whose upper bound fell below the running top-k lower bound are
/// [`PrunedOutcome::Pruned`]; they are guaranteed (under the paper's
/// Closure/bound assumptions) not to belong to the top k.
pub fn run_pruned(
    vizzes: &[&VizData],
    query: &ShapeQuery,
    chains: &[Chain],
    params: &ScoreParams,
    udps: &UdpRegistry,
    k: usize,
    config: &PruningConfig,
) -> Vec<PrunedOutcome> {
    let tree = SegmentTreeSegmenter::default();
    let mut outcomes: Vec<Option<PrunedOutcome>> = vec![None; vizzes.len()];

    // ---- Stage 1: sampled lower bound.
    let mut lb = f64::NEG_INFINITY;
    if vizzes.len() > k {
        let stride = (vizzes.len() / config.sample_size.max(1)).max(1);
        let mut sampled_scores: Vec<f64> = Vec::new();
        for viz in vizzes.iter().step_by(stride).take(config.sample_size) {
            let coarse = viz.coarsened(config.coarse_points);
            let ev = Evaluator::new(&coarse, params, udps);
            let r = DpSegmenter.match_viz(&ev, chains);
            sampled_scores.push(r.score);
        }
        sampled_scores.sort_by(|a, b| b.total_cmp(a));
        if sampled_scores.len() >= k {
            lb = sampled_scores[k - 1] - config.margin;
        }
    }

    // ---- Stage 2: bound-check then refine.
    // Maintain the running k-th best exact score as the tightening bound.
    let mut exact_scores: Vec<f64> = Vec::new();
    for (i, viz) in vizzes.iter().enumerate() {
        let ev = Evaluator::new(viz, params, udps);
        let (_, ub) = query_bounds(query, viz, params);
        if ub < lb {
            outcomes[i] = Some(PrunedOutcome::Pruned(ub));
            continue;
        }
        let r = tree.match_viz(&ev, chains);
        exact_scores.push(r.score);
        outcomes[i] = Some(PrunedOutcome::Scored(r));
        // Tighten the lower bound once k exact scores exist.
        if exact_scores.len() >= k {
            exact_scores.sort_by(|a, b| b.total_cmp(a));
            exact_scores.truncate(k);
            lb = lb.max(exact_scores[k - 1]);
        }
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every viz receives an outcome"))
        .collect()
}

/// Score bounds for a query over one visualization from the leaf level of
/// the SegmentTree: the slopes of the intervals between adjacent points.
///
/// Returns `(lower, upper)` per Table 7, combined through the operator
/// bounds of Property 5.1. Validity follows from the least-squares slope of
/// any merged range being a convex combination of its interval slopes
/// (the "law of the triangle" in the paper's Theorem 6.4 proof), so every
/// pattern's final score lies between the extreme interval-level scores.
pub fn query_bounds(query: &ShapeQuery, viz: &VizData, params: &ScoreParams) -> (f64, f64) {
    let n = viz.n();
    let mut slopes = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        slopes.push(viz.stats.slope(i, i + 1));
    }
    node_bounds(query, &slopes, params)
}

fn node_bounds(q: &ShapeQuery, slopes: &[f64], params: &ScoreParams) -> (f64, f64) {
    match q {
        ShapeQuery::Segment(s) => segment_bounds(s, slopes),
        ShapeQuery::Concat(cs) => {
            let (mut lo, mut hi) = (0.0, 0.0);
            for c in cs {
                let (l, h) = node_bounds(c, slopes, params);
                lo += l;
                hi += h;
            }
            let k = cs.len().max(1) as f64;
            (lo / k, hi / k)
        }
        ShapeQuery::And(cs) => fold_bounds(cs, slopes, params, f64::min),
        ShapeQuery::Or(cs) => fold_bounds(cs, slopes, params, f64::max),
        ShapeQuery::Not(c) => {
            let (l, h) = node_bounds(c, slopes, params);
            (-h, -l)
        }
    }
}

fn fold_bounds(
    cs: &[ShapeQuery],
    slopes: &[f64],
    params: &ScoreParams,
    pick: fn(f64, f64) -> f64,
) -> (f64, f64) {
    let mut lo: Option<f64> = None;
    let mut hi: Option<f64> = None;
    for c in cs {
        let (l, h) = node_bounds(c, slopes, params);
        lo = Some(lo.map_or(l, |v| pick(v, l)));
        hi = Some(hi.map_or(h, |v| pick(v, h)));
    }
    (lo.unwrap_or(-1.0), hi.unwrap_or(1.0))
}

/// Table 7 bounds for one segment given the block slopes of a level.
fn segment_bounds(s: &ShapeSegment, slopes: &[f64]) -> (f64, f64) {
    // Quantifiers, sharp/gradual/comparison modifiers, sketches, UDPs,
    // positions, and y constraints use rescaled or non-slope scorers — the
    // plain Table-7 bounds don't apply, so fall back to the trivial
    // interval.
    let complicated = s.sketch.is_some()
        || s.location.y_start.is_some()
        || s.location.y_end.is_some()
        || s.modifier.is_some();
    if complicated || slopes.is_empty() {
        return (-1.0, 1.0);
    }
    let scores: Vec<f64> = match &s.pattern {
        Some(Pattern::Up) => slopes.iter().map(|&sl| score_up(sl)).collect(),
        Some(Pattern::Down) => slopes.iter().map(|&sl| score_down(sl)).collect(),
        Some(Pattern::Flat) => {
            let min = slopes
                .iter()
                .map(|&sl| score_flat(sl))
                .fold(f64::INFINITY, f64::min);
            // Mixed-sign slopes can cancel into a perfectly flat merge.
            let same_sign =
                slopes.iter().all(|&sl| sl >= 0.0) || slopes.iter().all(|&sl| sl <= 0.0);
            let max = if same_sign {
                slopes
                    .iter()
                    .map(|&sl| score_flat(sl))
                    .fold(f64::NEG_INFINITY, f64::max)
            } else {
                1.0
            };
            return (min, max);
        }
        Some(Pattern::Slope(deg)) => {
            let target = deg.to_radians().tan();
            let min = slopes
                .iter()
                .map(|&sl| score_theta(sl, *deg))
                .fold(f64::INFINITY, f64::min);
            let same_side =
                slopes.iter().all(|&sl| sl >= target) || slopes.iter().all(|&sl| sl <= target);
            let max = if same_side {
                slopes
                    .iter()
                    .map(|&sl| score_theta(sl, *deg))
                    .fold(f64::NEG_INFINITY, f64::max)
            } else {
                1.0
            };
            return (min, max);
        }
        _ => return (-1.0, 1.0),
    };
    (
        scores.iter().copied().fold(f64::INFINITY, f64::min),
        scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::expand_chains;
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)], idx: usize) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs(format!("v{idx}"), pairs), idx, 1).unwrap()
    }

    fn make_collection() -> Vec<VizData> {
        let mut out = Vec::new();
        // 3 clear peaks, 17 monotone falls.
        for i in 0..20 {
            let pairs: Vec<(f64, f64)> = if i < 3 {
                (0..16)
                    .map(|t| {
                        let t = t as f64;
                        (t, if t < 8.0 { t } else { 16.0 - t })
                    })
                    .collect()
            } else {
                (0..16).map(|t| (t as f64, 16.0 - t as f64)).collect()
            };
            out.push(viz(&pairs, i));
        }
        out
    }

    #[test]
    fn bounds_contain_final_score() {
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        for q in [
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
            ShapeQuery::up(),
            ShapeQuery::flat(),
            ShapeQuery::Or(vec![ShapeQuery::up(), ShapeQuery::flat()]),
            ShapeQuery::Not(Box::new(ShapeQuery::down())),
        ] {
            for v in make_collection() {
                let ev = Evaluator::new(&v, &params, &udps);
                let exact = DpSegmenter.match_viz(&ev, &expand_chains(&q)).score;
                let (lo, hi) = query_bounds(&q, &v, &params);
                assert!(
                    exact <= hi + 1e-9 && exact >= lo - 1e-9,
                    "score {exact} outside [{lo}, {hi}] for {q}"
                );
            }
        }
    }

    #[test]
    fn bounds_are_tight_on_monotone_series() {
        // A perfectly linear rise: every interval slope equals the whole
        // slope, so the bound interval collapses onto the exact score.
        let v = viz(
            &(0..16).map(|t| (t as f64, t as f64)).collect::<Vec<_>>(),
            0,
        );
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        let q = ShapeQuery::up();
        let exact = DpSegmenter.match_viz(&ev, &expand_chains(&q)).score;
        let (lo, hi) = query_bounds(&q, &v, &params);
        assert!((hi - exact).abs() < 1e-9);
        assert!((lo - exact).abs() < 1e-9);
    }

    #[test]
    fn flat_mixed_sign_bound_is_one() {
        // A zigzag merges into near-flat: Table 7's special case.
        let v = viz(
            &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0), (4.0, 0.0)],
            0,
        );
        let params = ScoreParams::default();
        let (_, hi) = query_bounds(&ShapeQuery::flat(), &v, &params);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn pruned_run_matches_unpruned_topk() {
        let vizzes = make_collection();
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let chains = expand_chains(&q);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let k = 3;

        let outcomes = run_pruned(
            &vizzes.iter().collect::<Vec<_>>(),
            &q,
            &chains,
            &params,
            &udps,
            k,
            &PruningConfig::default(),
        );
        // Unpruned reference: full SegmentTree on everything.
        let tree = SegmentTreeSegmenter::default();
        let mut reference: Vec<(usize, f64)> = vizzes
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let ev = Evaluator::new(v, &params, &udps);
                (i, tree.match_viz(&ev, &chains).score)
            })
            .collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top_ref: Vec<usize> = reference[..k].iter().map(|&(i, _)| i).collect();

        let mut scored: Vec<(usize, f64)> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                PrunedOutcome::Scored(r) => Some((i, r.score)),
                PrunedOutcome::Pruned(_) => None,
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top_pruned: Vec<usize> = scored[..k].iter().map(|&(i, _)| i).collect();
        assert_eq!(top_pruned, top_ref);
    }

    #[test]
    fn pruning_actually_prunes_needle_in_haystack() {
        let vizzes = make_collection();
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let chains = expand_chains(&q);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let outcomes = run_pruned(
            &vizzes.iter().collect::<Vec<_>>(),
            &q,
            &chains,
            &params,
            &udps,
            2,
            &PruningConfig::default(),
        );
        let pruned = outcomes
            .iter()
            .filter(|o| matches!(o, PrunedOutcome::Pruned(_)))
            .count();
        assert!(pruned > 0, "expected monotone falls to be pruned");
    }
}
