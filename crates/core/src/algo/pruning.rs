//! Two-stage collective pruning (paper §6.3), as an **incremental,
//! exactness-preserving driver** every exact segmenter composes with.
//!
//! Stage 1 scores a small strided sample of the collection **exactly**
//! (the paper scores a coarsened subset; scoring exactly costs the same
//! asymptotics and makes the resulting threshold a *proven* lower bound
//! on the final top-k score, which is what keeps pruning byte-identical).
//! Stage 2 processes the rest: for each visualization an O(1) score upper
//! bound is derived from the GROUP-time interval-slope extremes
//! (Theorem 6.4 / Table 7 — the final score of a pattern is bounded by
//! the extreme scores of that pattern across any level of the
//! SegmentTree), and visualizations whose upper bound falls strictly
//! below the current proven top-k threshold are skipped without
//! segmentation. Survivors are scored exactly and tighten the threshold
//! online.
//!
//! The threshold lives in a [`ThresholdCell`] — an atomic-`f64`
//! (`AtomicU64` bit-cast) max register shared across every executor of
//! one query: parallel viz chunks, the shards of a
//! [`crate::ShardedEngine`], and the server's compute-pool shard tasks
//! all publish into and consume from the same cell, so any executor's
//! progress prunes work everywhere else. The cell also carries an
//! unproven **hint** slot (a remote router's `threshold_hint`): pruning
//! uses `max(proven, hint)`, but any prune justified only by the hint is
//! recorded in a third max register so the hint's sender can verify the
//! merged answer against it and retry hint-less if the hint turned out
//! too aggressive — a stale or poisoned hint can therefore never
//! silently drop a true top-k result.
//!
//! The pruning "helps avoid processing until the root node for the
//! majority of visualizations ... particularly effective when the user is
//! looking for visualizations with rare (needle-in-the-haystack)
//! patterns".

use crate::algo::SegmenterKind;
use crate::ast::{Pattern, ShapeQuery, ShapeSegment};
use crate::engine::group::VizData;
use crate::engine::observe::{EngineStage, StageObserver, NOOP_OBSERVER};
use crate::score::{score_down, score_flat, score_theta, score_up, ScoreParams};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Budget of consecutive *non-pruning* bound computations a query's
/// executors will pay before concluding the workload is unprunable and
/// entering skip mode (any successful prune refills the budget in full).
/// Sized so a prunable workload never skips — on one the budget refills
/// long before it drains — while an unprunable one caps its bound
/// overhead at roughly this many bound passes plus the probes below.
const BOUND_CREDITS: i64 = 64;

/// In skip mode, one candidate in this many still pays a probe bound so
/// a regime change — the threshold has risen, or a run of weak
/// candidates arrived — is noticed and full-rate bounding resumes (a
/// probe that prunes refills the credit budget).
const PROBE_STRIDE: u64 = 64;

/// Configuration of the two-stage pruning driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningConfig {
    /// Stage-1 sample size: how many strided visualizations are scored
    /// exactly up front to establish the initial proven threshold.
    /// Sampling is skipped for collections that are not meaningfully
    /// larger than the sample (the online tightening covers them).
    pub sample_size: usize,
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self { sample_size: 16 }
    }
}

/// When the engine applies §6.3 bound pruning. Pruning never changes
/// results — it only skips visualizations that provably cannot enter the
/// top k — so this knob trades bound-computation overhead against
/// skipped segmentation work, exactly like the scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruningMode {
    /// Prune for the exact segmenters (DP and both SegmentTree variants),
    /// whose scores the Theorem 6.4 bounds provably dominate. The
    /// default.
    #[default]
    Auto,
    /// Never prune ([`SegmenterKind::SegmentTreePruned`] then degrades to
    /// a plain SegmentTree pass).
    Off,
    /// Also prune for the greedy segmenter: its score never exceeds the
    /// DP optimum, so the same upper bounds remain sound. The
    /// whole-series baselines (DTW/Euclidean) score on a different scale
    /// the slope bounds say nothing about and are never pruned.
    Force,
}

impl PruningMode {
    /// Parses the short CLI / wire name of a mode.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "off" => Some(Self::Off),
            "force" => Some(Self::Force),
            _ => None,
        }
    }

    /// The canonical short name ([`Self::parse`] round-trips it).
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Off => "off",
            Self::Force => "force",
        }
    }

    /// Whether bound pruning applies to `kind` under this mode (see the
    /// variant docs for the soundness argument per segmenter).
    pub fn active_for(self, kind: SegmenterKind) -> bool {
        match self {
            Self::Off => false,
            Self::Auto => matches!(
                kind,
                SegmenterKind::Dp | SegmenterKind::SegmentTree | SegmenterKind::SegmentTreePruned
            ),
            Self::Force => !matches!(kind, SegmenterKind::Dtw | SegmenterKind::Euclidean),
        }
    }
}

/// Bit-cast storage for an atomic max register over `f64` scores.
/// `NEG_INFINITY` is the empty value; `raise` ignores `NaN` (a score
/// comparison against `NaN` could otherwise wedge the register).
/// Relaxed ordering suffices: the register is monotone and a stale read
/// only forgoes a prune, never unsoundness.
fn raise_max(slot: &AtomicU64, value: f64) {
    if value.is_nan() || value == f64::NEG_INFINITY {
        return;
    }
    let mut current = slot.load(Ordering::Relaxed);
    while f64::from_bits(current) < value {
        match slot.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

fn load_f64(slot: &AtomicU64) -> f64 {
    f64::from_bits(slot.load(Ordering::Relaxed))
}

/// A score wrapped for total-order use in the shared score pool.
#[derive(Debug, PartialEq)]
struct OrdScore(f64);

impl Eq for OrdScore {}

impl Ord for OrdScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for OrdScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The *global* k-best scores offered by every executor of one query.
/// Local per-executor top-ks only know their own partition's k-th best;
/// pooling the exact scores across executors proves the true global
/// k-th, which is a much tighter pruning threshold when the strong
/// candidates are spread across shards.
#[derive(Debug, Default)]
struct ScorePool {
    /// The query's k; fixed by the first offer (every executor of one
    /// query shares the same k).
    k: usize,
    /// Min-heap of the k best scores seen so far.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<OrdScore>>,
}

/// The live top-k threshold of one query, shared by every executor
/// working on it (parallel chunks, engine shards, compute-pool tasks).
///
/// Three inputs feed it:
/// * [`Self::offer`] pools an exactly computed candidate score; once k
///   scores have been pooled, the pool's k-th best becomes the
///   **proven** threshold (k candidates with at least that score exist,
///   so anything provably below it is out). Prunes justified by the
///   proven value alone are unconditionally sound.
/// * [`Self::raise`] directly publishes an externally proven lower
///   bound (e.g. the k-th of an already-merged partial).
/// * [`Self::seed_hint`] plants an **unproven** hint (a remote caller's
///   `threshold_hint`). Pruning consumes `max(proven, hint)`, but every
///   prune the proven value alone would not have justified is recorded
///   via [`Self::note_hint_prune`]; [`Self::hint_pruned`] exposes the
///   largest such upper bound so the hint's sender can verify its merged
///   answer clears it (and recompute hint-less when it does not).
#[derive(Debug)]
pub struct ThresholdCell {
    proven: AtomicU64,
    hint: AtomicU64,
    hint_pruned: AtomicU64,
    pool: std::sync::Mutex<ScorePool>,
    /// Remaining non-pruning bound computations before skip mode (see
    /// [`BOUND_CREDITS`]). Shared like the threshold itself: once any
    /// executor of the query proves the workload unprunable, all of them
    /// stop paying for bounds.
    bound_credits: AtomicI64,
    /// Skip-mode candidate counter driving the [`PROBE_STRIDE`] probes.
    probe_ticket: AtomicU64,
}

impl Default for ThresholdCell {
    fn default() -> Self {
        Self::new()
    }
}

impl ThresholdCell {
    /// An empty cell: no threshold, no hint, nothing hint-pruned.
    pub fn new() -> Self {
        Self {
            proven: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            hint: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            hint_pruned: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            pool: std::sync::Mutex::new(ScorePool::default()),
            bound_credits: AtomicI64::new(BOUND_CREDITS),
            probe_ticket: AtomicU64::new(0),
        }
    }

    /// Whether the §6.3 bound pass is currently worth paying for: `true`
    /// while credit remains, else `true` only for the periodic skip-mode
    /// probe. Skipping the bound pass never changes results — an
    /// unbounded candidate is simply scored in full, exactly as if its
    /// bound had not pruned — so this is purely an overhead/benefit
    /// trade, which is why a cheap racy heuristic is sound here.
    fn bound_pass_admitted(&self) -> bool {
        if self.bound_credits.load(Ordering::Relaxed) > 0 {
            return true;
        }
        self.probe_ticket
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(PROBE_STRIDE)
    }

    /// Feeds one bound outcome back into the adaptive gate: a prune
    /// refills the credit budget (the pass is paying for itself), a miss
    /// drains one credit toward skip mode.
    fn note_bound_outcome(&self, pruned: bool) {
        if pruned {
            self.bound_credits.store(BOUND_CREDITS, Ordering::Relaxed);
        } else {
            self.bound_credits.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Pools one exactly computed candidate score toward the proven
    /// global k-th best. `k` must be the query's k (identical across
    /// every executor of the query); `k == 0` is ignored. NaN scores
    /// are ignored (nothing can be proven from them).
    pub fn offer(&self, score: f64, k: usize) {
        if k == 0 || score.is_nan() {
            return;
        }
        // Lock-free fast path: a score at or below the already-proven
        // threshold can never raise the pool's k-th above it (any pool
        // containing it has a k-th ≤ that score), so skip the mutex —
        // on low-prune workloads this is every candidate once the
        // threshold stabilizes, which keeps parallel executors from
        // serializing on the pool lock.
        if score <= load_f64(&self.proven) {
            return;
        }
        let mut pool = self.pool.lock().expect("threshold score pool");
        if pool.heap.is_empty() {
            pool.k = k;
        }
        debug_assert_eq!(pool.k, k, "one query, one k");
        // Skip scores that provably cannot raise the k-th best.
        if pool.heap.len() == pool.k {
            let floor = pool.heap.peek().expect("non-empty full pool").0 .0;
            if score <= floor {
                return;
            }
        }
        pool.heap.push(std::cmp::Reverse(OrdScore(score)));
        if pool.heap.len() > pool.k {
            pool.heap.pop();
        }
        if pool.heap.len() == pool.k {
            let kth = pool.heap.peek().expect("full pool").0 .0;
            raise_max(&self.proven, kth);
        }
    }

    /// The effective pruning threshold: `max(proven, hint)`, or
    /// `NEG_INFINITY` when neither has been set.
    pub fn get(&self) -> f64 {
        load_f64(&self.proven).max(load_f64(&self.hint))
    }

    /// The proven component alone (what gets forwarded as a remote
    /// `threshold_hint` seed alongside any received hint).
    pub fn proven(&self) -> f64 {
        load_f64(&self.proven)
    }

    /// Publishes a proven k-th-best score; only ever raises.
    pub fn raise(&self, value: f64) {
        raise_max(&self.proven, value);
    }

    /// Plants an unproven hint; only ever raises.
    pub fn seed_hint(&self, value: f64) {
        raise_max(&self.hint, value);
    }

    /// Records the upper bound of a prune that only the hint justified.
    pub fn note_hint_prune(&self, upper_bound: f64) {
        raise_max(&self.hint_pruned, upper_bound);
    }

    /// The largest upper bound among hint-justified prunes, if any. A
    /// verifier holding the final merged top k is safe iff it has `k`
    /// results and the k-th score is **strictly** above this value
    /// (strictness covers ties: an equal-scoring pruned candidate could
    /// still have displaced the k-th by index order).
    pub fn hint_pruned(&self) -> Option<f64> {
        let value = load_f64(&self.hint_pruned);
        (value > f64::NEG_INFINITY).then_some(value)
    }
}

/// Shared pruning effectiveness counters (`/healthz`-style gauges), one
/// set per batch computation, accumulated across all of its executors.
#[derive(Debug, Default)]
pub struct PruningCounters {
    bounded: AtomicU64,
    pruned: AtomicU64,
    scored: AtomicU64,
    bound_micros: AtomicU64,
}

impl PruningCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PruningSnapshot {
        PruningSnapshot {
            bounded: self.bounded.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            scored: self.scored.load(Ordering::Relaxed),
            bound_micros: self.bound_micros.load(Ordering::Relaxed),
        }
    }
}

/// A plain copy of [`PruningCounters`], addable for aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruningSnapshot {
    /// Upper bounds computed (one per viz that faced a live threshold).
    pub bounded: u64,
    /// Visualizations skipped because their bound fell below the
    /// threshold.
    pub pruned: u64,
    /// Visualizations scored in full under the pruning driver.
    pub scored: u64,
    /// Total microseconds spent computing bounds.
    pub bound_micros: u64,
}

impl PruningSnapshot {
    /// Element-wise accumulation (for aggregating per-computation
    /// snapshots into process-lifetime gauges).
    pub fn add(&mut self, other: PruningSnapshot) {
        self.bounded += other.bounded;
        self.pruned += other.pruned;
        self.scored += other.scored;
        self.bound_micros += other.bound_micros;
    }
}

/// The per-query pruning driver: bound-checks candidates against the
/// shared threshold and publishes proven tightenings back into it. One
/// driver is borrowed by every executor of a query; all state lives in
/// the shared cell and counters, so the driver itself is `Copy`-cheap
/// and thread-safe by construction.
#[derive(Clone, Copy)]
pub struct PruningDriver<'a> {
    query: &'a ShapeQuery,
    params: &'a ScoreParams,
    cell: &'a ThresholdCell,
    counters: &'a PruningCounters,
    k: usize,
    observer: &'a dyn StageObserver,
}

impl std::fmt::Debug for PruningDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PruningDriver")
            .field("query", &self.query)
            .field("params", &self.params)
            .field("cell", &self.cell)
            .field("counters", &self.counters)
            .field("k", &self.k)
            .finish_non_exhaustive()
    }
}

impl<'a> PruningDriver<'a> {
    /// A driver for one query (retrieving `k` results) over the given
    /// shared cell and counters.
    pub fn new(
        query: &'a ShapeQuery,
        params: &'a ScoreParams,
        cell: &'a ThresholdCell,
        counters: &'a PruningCounters,
        k: usize,
    ) -> Self {
        Self {
            query,
            params,
            cell,
            counters,
            k,
            observer: &NOOP_OBSERVER,
        }
    }

    /// Routes this driver's §6.3 bound-computation timings to `observer`
    /// (as [`EngineStage::PruneBound`] samples, one per bound-checked
    /// candidate) in addition to the shared counters. Returns `self` for
    /// chaining.
    #[must_use]
    pub fn with_observer(mut self, observer: &'a dyn StageObserver) -> Self {
        self.observer = observer;
        self
    }

    /// Bound-checks one candidate. Returns `true` when the candidate is
    /// proven unable to enter the top k (the caller skips segmentation
    /// entirely); `false` means it must be scored in full.
    pub fn try_prune(&self, viz: &VizData) -> bool {
        let threshold = self.cell.get();
        // TopK::threshold (and hence every published value) stays at
        // NEG_INFINITY until k results have been admitted somewhere;
        // that explicitly means "no pruning possible yet" — skip the
        // bound computation rather than comparing against −∞.
        if threshold == f64::NEG_INFINITY {
            return false;
        }
        // Adaptive stop: when a sliding window of bounds has pruned
        // nothing (a common-pattern workload where every candidate beats
        // the threshold's reach), stop paying for the bound pass — clock
        // reads plus bound arithmetic per candidate would otherwise cost
        // more than the segmentation they fail to skip. Periodic probes
        // resume full-rate bounding the moment pruning bites again.
        if !self.cell.bound_pass_admitted() {
            return false;
        }
        let started = Instant::now();
        let (_, upper) = query_bounds(self.query, viz, self.params);
        let bound_micros = started.elapsed().as_micros() as u64;
        self.counters.bounded.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bound_micros
            .fetch_add(bound_micros, Ordering::Relaxed);
        self.observer.stage(EngineStage::PruneBound, bound_micros);
        // Strictly below the threshold: even a tie could not displace
        // the k-th result, so the candidate is gone for good.
        let pruned = upper < threshold;
        self.cell.note_bound_outcome(pruned);
        if pruned {
            self.counters.pruned.fetch_add(1, Ordering::Relaxed);
            if upper >= self.cell.proven() {
                // The proven component alone would not have pruned this:
                // the prune rides on the hint, so record it for the
                // hint sender's verification pass.
                self.cell.note_hint_prune(upper);
            }
            return true;
        }
        false
    }

    /// Counts one fully scored candidate.
    pub fn record_scored(&self) {
        self.counters.scored.fetch_add(1, Ordering::Relaxed);
    }

    /// Pools one exactly computed score toward the proven global k-th
    /// best (see [`ThresholdCell::offer`]) — every executor's results
    /// tighten every other executor's bound as they land.
    pub fn observe(&self, score: f64) {
        self.cell.offer(score, self.k);
    }

    /// Publishes a proven k-th-best score into the shared cell.
    /// `NEG_INFINITY` (a top-k collector that has not filled yet — see
    /// the pre-fill semantics on the engine's `TopK::threshold`) is
    /// explicitly a no-op.
    pub fn publish(&self, kth_best: f64) {
        if kth_best == f64::NEG_INFINITY {
            return;
        }
        self.cell.raise(kth_best);
    }
}

/// Score bounds for a query over one visualization, in O(query size):
/// combines the per-segment Table 7 bounds — evaluated from the
/// GROUP-time interval-slope extremes cached on the [`VizData`] — through
/// the operator bounds of Property 5.1.
///
/// Returns `(lower, upper)`. Validity follows from the least-squares
/// slope of any merged range being a convex combination of its interval
/// slopes (the "law of the triangle" in the paper's Theorem 6.4 proof),
/// so every pattern's fitted slope lies in `[slope_min, slope_max]` and
/// the pattern scorers are monotone or unimodal in slope — the extreme
/// scores over that interval are attained at the cached extremes.
/// (Nested CONCATs are handled for free: the recursive mean below equals
/// chain expansion's weighted-average semantics.)
pub fn query_bounds(query: &ShapeQuery, viz: &VizData, params: &ScoreParams) -> (f64, f64) {
    node_bounds(query, viz, params)
}

fn node_bounds(q: &ShapeQuery, viz: &VizData, params: &ScoreParams) -> (f64, f64) {
    match q {
        ShapeQuery::Segment(s) => segment_bounds(s, viz, params),
        ShapeQuery::Concat(cs) => {
            let (mut lo, mut hi) = (0.0, 0.0);
            for c in cs {
                let (l, h) = node_bounds(c, viz, params);
                lo += l;
                hi += h;
            }
            let k = cs.len().max(1) as f64;
            (lo / k, hi / k)
        }
        ShapeQuery::And(cs) => fold_bounds(cs, viz, params, f64::min),
        ShapeQuery::Or(cs) => fold_bounds(cs, viz, params, f64::max),
        ShapeQuery::Not(c) => {
            let (l, h) = node_bounds(c, viz, params);
            (-h, -l)
        }
    }
}

fn fold_bounds(
    cs: &[ShapeQuery],
    viz: &VizData,
    params: &ScoreParams,
    pick: fn(f64, f64) -> f64,
) -> (f64, f64) {
    let mut lo: Option<f64> = None;
    let mut hi: Option<f64> = None;
    for c in cs {
        let (l, h) = node_bounds(c, viz, params);
        lo = Some(lo.map_or(l, |v| pick(v, l)));
        hi = Some(hi.map_or(h, |v| pick(v, h)));
    }
    (lo.unwrap_or(-1.0), hi.unwrap_or(1.0))
}

/// Table 7 bounds for one segment, O(1) from the cached slope extremes.
fn segment_bounds(s: &ShapeSegment, viz: &VizData, params: &ScoreParams) -> (f64, f64) {
    // Sharp/gradual/quantifier modifiers and sketches rescale or replace
    // the slope scorers entirely — the plain Table-7 bounds don't apply.
    if s.modifier.is_some() || s.sketch.is_some() {
        return (-1.0, 1.0);
    }
    let (lo_s, hi_s) = (viz.slope_min, viz.slope_max);
    let (lo, hi) = match &s.pattern {
        // The slope scorers are monotone (up/down) or unimodal
        // (flat/theta) in slope, so both extremes over
        // [slope_min, slope_max] are attained at the cached endpoints —
        // and since those endpoints *are* interval slopes, these equal
        // the exact leaf-level min/max of Table 7.
        Some(Pattern::Up) => (score_up(lo_s), score_up(hi_s)),
        Some(Pattern::Down) => (score_down(hi_s), score_down(lo_s)),
        Some(Pattern::Flat) => {
            let min = score_flat(lo_s).min(score_flat(hi_s));
            // Mixed-sign slopes can cancel into a perfectly flat merge.
            let max = if lo_s < 0.0 && hi_s > 0.0 {
                1.0
            } else {
                score_flat(lo_s).max(score_flat(hi_s))
            };
            (min, max)
        }
        Some(Pattern::Slope(deg)) => {
            let target = deg.to_radians().tan();
            let min = score_theta(lo_s, *deg).min(score_theta(hi_s, *deg));
            // Slopes straddling the target can merge onto it exactly.
            let max = if lo_s < target && hi_s > target {
                1.0
            } else {
                score_theta(lo_s, *deg).max(score_theta(hi_s, *deg))
            };
            (min, max)
        }
        // Wildcards, UDPs, position references, y-target lines,
        // location-only segments: non-slope scorers, trivial bounds.
        _ => return (-1.0, 1.0),
    };
    // Hard constraints (x/y pins, ITERATOR width windows, plus the
    // optional minimum-width term) can only *lower* a segment's score —
    // to −1 on violation — so the upper bound stands but the Table-7
    // lower bound does not: widen it to the trivial −1 so NOT nodes
    // (which flip bounds) stay sound.
    let constrained = !s.location.is_empty() || s.iterator.is_some() || params.min_width_frac > 0.0;
    (if constrained { -1.0 } else { lo }, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dp::DpSegmenter;
    use crate::algo::Segmenter;
    use crate::chain::expand_chains;
    use crate::eval::{Evaluator, UdpRegistry};
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)], idx: usize) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs(format!("v{idx}"), pairs), idx, 1).unwrap()
    }

    fn make_collection() -> Vec<VizData> {
        let mut out = Vec::new();
        // 3 clear peaks, 17 monotone falls.
        for i in 0..20 {
            let pairs: Vec<(f64, f64)> = if i < 3 {
                (0..16)
                    .map(|t| {
                        let t = t as f64;
                        (t, if t < 8.0 { t } else { 16.0 - t })
                    })
                    .collect()
            } else {
                (0..16).map(|t| (t as f64, 16.0 - t as f64)).collect()
            };
            out.push(viz(&pairs, i));
        }
        out
    }

    #[test]
    fn bounds_contain_final_score() {
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        for q in [
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
            ShapeQuery::up(),
            ShapeQuery::flat(),
            ShapeQuery::Or(vec![ShapeQuery::up(), ShapeQuery::flat()]),
            ShapeQuery::Not(Box::new(ShapeQuery::down())),
        ] {
            for v in make_collection() {
                let ev = Evaluator::new(&v, &params, &udps);
                let exact = DpSegmenter.match_viz(&ev, &expand_chains(&q)).score;
                let (lo, hi) = query_bounds(&q, &v, &params);
                assert!(
                    exact <= hi + 1e-9 && exact >= lo - 1e-9,
                    "score {exact} outside [{lo}, {hi}] for {q}"
                );
            }
        }
    }

    #[test]
    fn bounds_are_tight_on_monotone_series() {
        // A perfectly linear rise: every interval slope equals the whole
        // slope, so the bound interval collapses onto the exact score.
        let v = viz(
            &(0..16).map(|t| (t as f64, t as f64)).collect::<Vec<_>>(),
            0,
        );
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        let q = ShapeQuery::up();
        let exact = DpSegmenter.match_viz(&ev, &expand_chains(&q)).score;
        let (lo, hi) = query_bounds(&q, &v, &params);
        assert!((hi - exact).abs() < 1e-9);
        assert!((lo - exact).abs() < 1e-9);
    }

    #[test]
    fn flat_mixed_sign_bound_is_one() {
        // A zigzag merges into near-flat: Table 7's special case.
        let v = viz(
            &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0), (4.0, 0.0)],
            0,
        );
        let params = ScoreParams::default();
        let (_, hi) = query_bounds(&ShapeQuery::flat(), &v, &params);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn pinned_and_width_penalized_segments_keep_sound_lower_bounds() {
        // An x-pinned segment can score −1 on placement violation, and
        // the min-width term can drag any score toward −1; both must
        // widen the segment's *lower* bound to −1 (NOT flips it into the
        // upper bound), while the upper bound stays the Table-7 one.
        let v = viz(
            &(0..16).map(|t| (t as f64, t as f64)).collect::<Vec<_>>(),
            0,
        );
        let params = ScoreParams::default();
        let pinned = ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 8.0));
        let (lo, hi) = query_bounds(&pinned, &v, &params);
        assert_eq!(lo, -1.0);
        assert!(hi <= 1.0 && hi > 0.0);
        let not_pinned = ShapeQuery::Not(Box::new(pinned));
        let (_, hi) = query_bounds(&not_pinned, &v, &params);
        assert_eq!(hi, 1.0, "NOT of a −1-capable child must allow +1");

        let widthy = ScoreParams {
            min_width_frac: 0.25,
            ..ScoreParams::default()
        };
        let (lo, _) = query_bounds(&ShapeQuery::up(), &v, &widthy);
        assert_eq!(lo, -1.0);
    }

    #[test]
    fn iterator_width_windows_widen_the_lower_bound_only() {
        let v = viz(
            &(0..16).map(|t| (t as f64, t as f64)).collect::<Vec<_>>(),
            0,
        );
        let params = ScoreParams::default();
        let mut seg = ShapeSegment::pattern(Pattern::Up);
        seg.iterator = Some(crate::ast::IteratorSpec { width: 4.0 });
        let q = ShapeQuery::Segment(seg);
        let (lo, hi) = query_bounds(&q, &v, &params);
        assert_eq!(lo, -1.0, "a width window can force an infeasible −1");
        let (_, plain_hi) = query_bounds(&ShapeQuery::up(), &v, &params);
        assert_eq!(hi, plain_hi, "the Table-7 upper bound stands");
    }

    #[test]
    fn threshold_cell_is_a_monotone_max_register() {
        let cell = ThresholdCell::new();
        assert_eq!(cell.get(), f64::NEG_INFINITY);
        assert_eq!(cell.proven(), f64::NEG_INFINITY);
        assert_eq!(cell.hint_pruned(), None);

        cell.raise(0.25);
        cell.raise(0.1); // lower: ignored
        cell.raise(f64::NEG_INFINITY); // empty: ignored
        cell.raise(f64::NAN); // NaN: ignored
        assert_eq!(cell.proven(), 0.25);
        assert_eq!(cell.get(), 0.25);

        // A hint raises the effective threshold but not the proven one.
        cell.seed_hint(0.75);
        assert_eq!(cell.get(), 0.75);
        assert_eq!(cell.proven(), 0.25);

        cell.note_hint_prune(0.5);
        cell.note_hint_prune(0.4);
        assert_eq!(cell.hint_pruned(), Some(0.5));
    }

    #[test]
    fn offered_scores_prove_the_global_kth_once_k_exist() {
        let cell = ThresholdCell::new();
        cell.offer(0.9, 3);
        cell.offer(0.1, 3);
        assert_eq!(
            cell.proven(),
            f64::NEG_INFINITY,
            "two scores cannot prove a top-3 bound"
        );
        cell.offer(0.5, 3);
        assert_eq!(cell.proven(), 0.1, "the 3rd best of {{0.9, 0.5, 0.1}}");
        cell.offer(0.7, 3);
        assert_eq!(cell.proven(), 0.5, "0.7 displaces 0.1");
        cell.offer(f64::NAN, 3); // ignored
        cell.offer(0.2, 3); // below the floor: ignored
        assert_eq!(cell.proven(), 0.5);
        // k = 0 never proves anything.
        let zero = ThresholdCell::new();
        zero.offer(1.0, 0);
        assert_eq!(zero.proven(), f64::NEG_INFINITY);
        // Default is the empty cell, not zeroed bits.
        assert_eq!(ThresholdCell::default().get(), f64::NEG_INFINITY);
    }

    #[test]
    fn driver_prunes_only_below_threshold_and_records_hint_debt() {
        let params = ScoreParams::default();
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let cell = ThresholdCell::new();
        let counters = PruningCounters::new();
        let driver = PruningDriver::new(&q, &params, &cell, &counters, 2);
        let fall = viz(
            &(0..16).map(|t| (t as f64, -(t as f64))).collect::<Vec<_>>(),
            0,
        );

        // No threshold yet: nothing prunes, no bound is even computed.
        assert!(!driver.try_prune(&fall));
        assert_eq!(counters.snapshot().bounded, 0);

        // A published NEG_INFINITY (a top-k that hasn't filled) is a
        // no-op, not a threshold.
        driver.publish(f64::NEG_INFINITY);
        assert!(!driver.try_prune(&fall));

        // A proven threshold above the fall's upper bound prunes it,
        // with no hint debt.
        driver.publish(0.9);
        assert!(driver.try_prune(&fall));
        let snap = counters.snapshot();
        assert_eq!((snap.bounded, snap.pruned), (1, 1));
        assert_eq!(cell.hint_pruned(), None);

        // A hint-only threshold prunes too, but records the bound so the
        // hint's sender can verify.
        let cell2 = ThresholdCell::new();
        cell2.seed_hint(0.9);
        let driver2 = PruningDriver::new(&q, &params, &cell2, &counters, 2);
        assert!(driver2.try_prune(&fall));
        let debt = cell2.hint_pruned().expect("hint prune must be recorded");
        let (_, ub) = query_bounds(&q, &fall, &params);
        assert_eq!(debt, ub);
    }

    #[test]
    fn unprunable_workload_stops_paying_for_bounds_but_keeps_probing() {
        // A threshold no candidate falls below: every bound is a miss,
        // so after BOUND_CREDITS misses the driver must go to skip mode
        // and only probe every PROBE_STRIDE-th candidate.
        let params = ScoreParams::default();
        let q = ShapeQuery::up();
        let cell = ThresholdCell::new();
        let counters = PruningCounters::new();
        let driver = PruningDriver::new(&q, &params, &cell, &counters, 1);
        let rise = viz(
            &(0..16).map(|t| (t as f64, t as f64)).collect::<Vec<_>>(),
            0,
        );
        // Below rise's upper bound (score_up(1) = 0.5): never prunes.
        driver.publish(0.2);
        let candidates = 10_000u64;
        for _ in 0..candidates {
            assert!(!driver.try_prune(&rise), "nothing may prune here");
        }
        let bounded = counters.snapshot().bounded;
        let ceiling = BOUND_CREDITS as u64 + candidates / PROBE_STRIDE + 1;
        assert!(
            bounded <= ceiling,
            "skip mode must cap bound work: {bounded} bounds for {candidates} candidates (cap {ceiling})"
        );
        assert!(
            bounded >= BOUND_CREDITS as u64,
            "the credit window must be paid before skipping: {bounded}"
        );

        // A probe that prunes refills the budget: full-rate bounding
        // resumes for the next credit window.
        // A monotone fall normalizes onto canvas slope −1, so its upper
        // bound (score_up(−1) = −0.5) sits strictly below the threshold.
        let fall = viz(
            &(0..16).map(|t| (t as f64, -(t as f64))).collect::<Vec<_>>(),
            1,
        );
        let mut probe_pruned = false;
        for _ in 0..PROBE_STRIDE {
            if driver.try_prune(&fall) {
                probe_pruned = true;
                break;
            }
        }
        assert!(probe_pruned, "a skip-mode probe must still prune");
        let before = counters.snapshot().bounded;
        assert!(!driver.try_prune(&rise));
        assert_eq!(
            counters.snapshot().bounded,
            before + 1,
            "a pruning probe must restore full-rate bounding"
        );
    }

    #[test]
    fn mode_gates_match_segmenter_exactness() {
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
        ] {
            assert!(PruningMode::Auto.active_for(kind));
            assert!(PruningMode::Force.active_for(kind));
            assert!(!PruningMode::Off.active_for(kind));
        }
        assert!(!PruningMode::Auto.active_for(SegmenterKind::Greedy));
        assert!(PruningMode::Force.active_for(SegmenterKind::Greedy));
        for kind in [SegmenterKind::Dtw, SegmenterKind::Euclidean] {
            assert!(!PruningMode::Force.active_for(kind));
        }
        for mode in [PruningMode::Auto, PruningMode::Off, PruningMode::Force] {
            assert_eq!(PruningMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(PruningMode::parse("sometimes"), None);
    }
}
