//! Segmentation algorithms (paper §6): given a fuzzy ShapeQuery and a
//! candidate visualization, find the segmentation (one VisualSegment per
//! ShapeExpr) that maximizes the query score.
//!
//! * [`dp`] — the optimal O(n²k) dynamic program (§6.1, Theorems 6.1–6.2).
//! * [`segment_tree`] — the pattern-aware O(nk⁴) SegmentTree algorithm
//!   (§6.2, Theorem 6.3) under the Closure assumption.
//! * [`greedy`] — the local-search baseline (§9).
//! * [`pruning`] — two-stage collective pruning across a visualization
//!   collection (§6.3, Theorem 6.4).
//! * [`baseline`] — DTW / Euclidean whole-series matching (§7.3, §9).

pub mod baseline;
pub mod dp;
pub mod greedy;
pub mod pruning;
pub mod segment_tree;

use crate::chain::Chain;
use crate::eval::Evaluator;

/// Result of matching one query against one visualization.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Final score in [−1, 1].
    pub score: f64,
    /// Inclusive point range assigned to each unit of the winning chain.
    /// Empty for whole-series matchers (DTW/Euclidean) and infeasible
    /// matches.
    pub ranges: Vec<(usize, usize)>,
}

impl MatchResult {
    /// The "no feasible match" result.
    pub fn infeasible() -> Self {
        Self {
            score: -1.0,
            ranges: Vec::new(),
        }
    }
}

/// The available segmentation strategies, selectable per engine run
/// (compared against each other in §9 / Figures 10–13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmenterKind {
    /// Optimal dynamic programming (ground truth, O(n²k)).
    Dp,
    /// SegmentTree pattern-aware segmentation (default; O(nk⁴)).
    #[default]
    SegmentTree,
    /// SegmentTree plus two-stage collective pruning across the collection.
    SegmentTreePruned,
    /// Greedy extend/shrink local search.
    Greedy,
    /// Dynamic-time-warping whole-series baseline.
    Dtw,
    /// Euclidean whole-series baseline.
    Euclidean,
}

impl SegmenterKind {
    /// Parses the short CLI / wire name of an algorithm.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "dp" => Some(SegmenterKind::Dp),
            "tree" | "segment_tree" => Some(SegmenterKind::SegmentTree),
            "pruned" | "tree_pruned" => Some(SegmenterKind::SegmentTreePruned),
            "greedy" => Some(SegmenterKind::Greedy),
            "dtw" => Some(SegmenterKind::Dtw),
            "euclid" | "euclidean" => Some(SegmenterKind::Euclidean),
            _ => None,
        }
    }

    /// The canonical short name ([`Self::parse`] round-trips it).
    pub fn name(self) -> &'static str {
        match self {
            SegmenterKind::Dp => "dp",
            SegmenterKind::SegmentTree => "tree",
            SegmenterKind::SegmentTreePruned => "pruned",
            SegmenterKind::Greedy => "greedy",
            SegmenterKind::Dtw => "dtw",
            SegmenterKind::Euclidean => "euclid",
        }
    }
}

/// A per-visualization segmentation strategy.
pub trait Segmenter {
    /// Matches the expanded chains of a query against one visualization,
    /// returning the best chain's result.
    fn match_viz(&self, ev: &Evaluator<'_>, chains: &[Chain]) -> MatchResult;
}

/// Picks the best result across chains using a per-chain solver.
pub(crate) fn best_over_chains(
    chains: &[Chain],
    mut solve: impl FnMut(&Chain) -> MatchResult,
) -> MatchResult {
    let mut best = MatchResult::infeasible();
    for chain in chains {
        let r = solve(chain);
        if r.score > best.score || best.ranges.is_empty() && !r.ranges.is_empty() {
            best = r;
        }
    }
    best
}
