//! Whole-series similarity baselines (paper §7.3 and §9, algorithm (vi)):
//! Dynamic Time Warping and Euclidean matching as used by visual query
//! systems. The query is rendered into a *prototype* trendline (each unit a
//! line piece over an equal share of the x axis), both series are
//! z-normalized, and the distance is mapped into the [−1, 1] score range so
//! the same top-k machinery ranks the results.

use super::{MatchResult, Segmenter};
use crate::ast::{Pattern, ShapeQuery, ShapeSegment};
use crate::chain::Chain;
use crate::eval::Evaluator;
use shapesearch_similarity::{dtw, euclidean, normalized_similarity, znormalize};

/// Distance measure for the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMethod {
    /// Dynamic Time Warping (unconstrained band, O(n²)).
    Dtw,
    /// Point-wise Euclidean distance, O(n).
    Euclidean,
}

/// A whole-series baseline matcher.
#[derive(Debug, Clone, Copy)]
pub struct WholeSeriesBaseline {
    /// The distance measure.
    pub method: BaselineMethod,
}

impl Segmenter for WholeSeriesBaseline {
    fn match_viz(&self, ev: &Evaluator<'_>, chains: &[Chain]) -> MatchResult {
        let n = ev.viz.n();
        if n < 2 {
            return MatchResult::infeasible();
        }
        let series = znormalize(ev.viz.ys());
        let mut best = MatchResult::infeasible();
        for chain in chains {
            let proto = znormalize(&prototype(chain, n));
            let dist = match self.method {
                BaselineMethod::Dtw => dtw(&series, &proto),
                BaselineMethod::Euclidean => euclidean(&series, &proto),
            };
            let score = normalized_similarity(dist, (n as f64).sqrt());
            if score > best.score {
                best = MatchResult {
                    score,
                    ranges: Vec::new(),
                };
            }
        }
        best
    }
}

/// Renders a chain into a prototype series of `n` points: each unit
/// occupies an equal share of the x axis with the slope its pattern implies
/// on the unit canvas (up = +45°, down = −45°, flat = 0, θ = tan(θ)). If a
/// unit carries an explicit sketch, its y values are used directly.
pub fn prototype(chain: &Chain, n: usize) -> Vec<f64> {
    let k = chain.len().max(1);
    let steps = (n - 1).max(1);
    let mut ys = Vec::with_capacity(n);
    let mut level = 0.0f64;
    ys.push(level);
    for t in 1..n {
        // Assign the step by its x midpoint so unit spans are balanced.
        let pos = (t as f64 - 0.5) / steps as f64; // (0, 1)
        let unit_idx = ((pos * k as f64) as usize).min(k - 1);
        let slope = chain
            .units
            .get(unit_idx)
            .map_or(0.0, |u| leaf_slope(&u.query));
        // Integrate the slope over one x step of the canvas.
        level += slope / steps as f64;
        ys.push(level);
    }
    ys
}

/// The canvas slope implied by the first leaf pattern of a node.
fn leaf_slope(q: &ShapeQuery) -> f64 {
    match q {
        ShapeQuery::Segment(ShapeSegment {
            pattern, sketch, ..
        }) => {
            if sketch.is_some() {
                return 0.0;
            }
            match pattern {
                Some(Pattern::Up) => 1.0,
                Some(Pattern::Down) => -1.0,
                Some(Pattern::Flat) | Some(Pattern::Any) | None => 0.0,
                Some(Pattern::Slope(deg)) => deg.to_radians().tan().clamp(-10.0, 10.0),
                Some(Pattern::Nested(inner)) => leaf_slope(inner),
                Some(Pattern::Udp(_)) | Some(Pattern::Position(_)) => 0.0,
            }
        }
        ShapeQuery::Concat(cs) | ShapeQuery::And(cs) | ShapeQuery::Or(cs) => {
            cs.first().map_or(0.0, leaf_slope)
        }
        ShapeQuery::Not(c) => -leaf_slope(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::expand_chains;
    use crate::engine::group::VizData;
    use crate::eval::UdpRegistry;
    use crate::score::ScoreParams;
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)]) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs("t", pairs), 0, 1).unwrap()
    }

    fn score(method: BaselineMethod, q: &ShapeQuery, v: &VizData) -> f64 {
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(v, &params, &udps);
        WholeSeriesBaseline { method }
            .match_viz(&ev, &expand_chains(q))
            .score
    }

    #[test]
    fn prototype_shapes() {
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let p = prototype(&expand_chains(&q)[0], 9);
        assert_eq!(p.len(), 9);
        // Rises then falls.
        let mid = p[4];
        assert!(mid > p[0] && mid > p[8]);
    }

    #[test]
    fn dtw_ranks_matching_shape_higher() {
        let peak = viz(&[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 2.0), (4.0, 0.0)]);
        let rise = viz(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        for m in [BaselineMethod::Dtw, BaselineMethod::Euclidean] {
            let s_peak = score(m, &q, &peak);
            let s_rise = score(m, &q, &rise);
            assert!(
                s_peak > s_rise,
                "{m:?}: peak {s_peak} should beat rise {s_rise}"
            );
        }
    }

    #[test]
    fn exact_prototype_match_scores_high() {
        // A perfect up-down triangle matches the prototype closely after
        // z-normalization.
        let v = viz(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let s = score(BaselineMethod::Dtw, &q, &v);
        assert!(s > 0.5, "dtw score {s}");
    }

    #[test]
    fn leaf_slopes() {
        assert_eq!(leaf_slope(&ShapeQuery::up()), 1.0);
        assert_eq!(leaf_slope(&ShapeQuery::down()), -1.0);
        assert_eq!(leaf_slope(&ShapeQuery::flat()), 0.0);
        assert_eq!(
            leaf_slope(&ShapeQuery::Not(Box::new(ShapeQuery::up()))),
            -1.0
        );
        let theta = ShapeQuery::pattern(Pattern::Slope(45.0));
        assert!((leaf_slope(&theta) - 1.0).abs() < 1e-12);
    }
}
