//! The SegmentTree algorithm (paper §6.2): pattern-aware segmentation in
//! time linear in the number of points.
//!
//! A SegmentTree is a balanced binary tree whose nodes are VisualSegments:
//! the root covers the whole visualization and each node splits into two
//! halves down to single intervals between adjacent points (Definition 6.1;
//! the tree is never materialized — it "only defines the logical order in
//! which VisualSegments are created and scored").
//!
//! Each node stores, for every contiguous sub-chain `[l, r)` of the query's
//! unit sequence, the best placement whose units exactly tile the node's
//! point range. Nodes are combined bottom-up three ways (mirroring the
//! paper's Figure 7 enumeration):
//!
//! 1. **direct** — a single unit spanning the whole node range (computed
//!    O(1) from summarized statistics);
//! 2. **split** — left child's `[l, m)` next to right child's `[m, r)`,
//!    placing a unit boundary at the node midpoint;
//! 3. **bridge** — left child's `[l, b+1)` merged with right child's
//!    `[b, r)`: unit `b` spans the midpoint, its score recomputed over the
//!    merged range (this is how "a⊗b from node 3 and b from node 4" combine
//!    in the paper's example).
//!
//! Keeping only the best entry per sub-chain is the **Closure assumption**
//! (Assumption 6.1): a break point optimal in a small region is assumed to
//! remain the candidate break point in enclosing regions. Under it the
//! algorithm is optimal and runs in O(nk⁴) (Theorem 6.3); in practice it
//! trades ≲15% top-k accuracy for 2–40× speed-up versus the DP (§9).

use super::{best_over_chains, MatchResult, Segmenter};
use crate::chain::{Chain, Unit};
use crate::eval::{chain_score_with_positions, slope_leaf, Evaluator, SlopeLeaf};

/// The SegmentTree segmenter.
///
/// `bridges` controls the bridge combination rule (on by default); turning
/// it off restricts unit boundaries to dyadic node midpoints — the ablation
/// measured by `figures -- ablation`, showing how much accuracy the bridge
/// rule recovers.
#[derive(Debug, Clone, Copy)]
pub struct SegmentTreeSegmenter {
    /// Enables the midpoint-spanning bridge combinations.
    pub bridges: bool,
}

impl Default for SegmentTreeSegmenter {
    fn default() -> Self {
        Self { bridges: true }
    }
}

impl SegmentTreeSegmenter {
    /// The ablated variant without bridge combinations.
    pub fn without_bridges() -> Self {
        Self { bridges: false }
    }
}

impl Segmenter for SegmentTreeSegmenter {
    fn match_viz(&self, ev: &Evaluator<'_>, chains: &[Chain]) -> MatchResult {
        best_over_chains(chains, |chain| solve_tree_with(ev, chain, self.bridges))
    }
}

/// Chains up to this many units keep their break points inline in the
/// node-table entry; longer chains (rare — `expand_chains` caps chains
/// well before break lists get long) spill to the heap. Inline storage
/// matters because the tree creates a few break lists per node per viz —
/// heap-allocating each one dominated the scoring loop's profile.
const INLINE_BREAKS: usize = 6;

/// A break-point list with inline small-capacity storage.
#[derive(Debug, Clone)]
enum Breaks {
    Inline { len: u8, buf: [u32; INLINE_BREAKS] },
    Heap(Vec<u32>),
}

impl Breaks {
    fn new() -> Self {
        Self::Inline {
            len: 0,
            buf: [0; INLINE_BREAKS],
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            Self::Inline { len, buf } => &buf[..*len as usize],
            Self::Heap(v) => v,
        }
    }

    fn push(&mut self, value: u32) {
        match self {
            Self::Inline { len, buf } if (*len as usize) < INLINE_BREAKS => {
                buf[*len as usize] = value;
                *len += 1;
            }
            Self::Inline { len, buf } => {
                let mut v = Vec::with_capacity(*len as usize + 1);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(value);
                *self = Self::Heap(v);
            }
            Self::Heap(v) => v.push(value),
        }
    }

    fn extend_from_slice(&mut self, values: &[u32]) {
        for &v in values {
            self.push(v);
        }
    }
}

/// One stored placement: the partial weighted score and the unit-boundary
/// points strictly inside the covered range.
#[derive(Debug, Clone)]
struct Entry {
    score: f64,
    breaks: Breaks,
}

/// Per-node table of best entries, indexed by sub-chain (l, r).
struct NodeTable {
    k: usize,
    entries: Vec<Option<Entry>>,
}

/// Recycles node-table entry buffers across the recursion: a tree over n
/// points creates ~2n tables, and taking the buffers from a pool instead
/// of the allocator keeps the combine loop allocation-free once the pool
/// warms up (two buffers per recursion level).
type TablePool = Vec<Vec<Option<Entry>>>;

impl NodeTable {
    fn new(k: usize, pool: &mut TablePool) -> Self {
        let mut entries = pool.pop().unwrap_or_default();
        entries.clear();
        entries.resize((k + 1) * (k + 1), None);
        Self { k, entries }
    }

    /// Returns the entry buffer to the pool for reuse.
    fn recycle(self, pool: &mut TablePool) {
        pool.push(self.entries);
    }

    fn get(&self, l: usize, r: usize) -> Option<&Entry> {
        self.entries[l * (self.k + 1) + r].as_ref()
    }

    fn set_max(&mut self, l: usize, r: usize, candidate: Entry) {
        let slot = &mut self.entries[l * (self.k + 1) + r];
        match slot {
            Some(existing) if existing.score >= candidate.score => {}
            _ => *slot = Some(candidate),
        }
    }
}

/// Solves one chain on one visualization with the SegmentTree.
fn solve_tree_with(ev: &Evaluator<'_>, chain: &Chain, bridges: bool) -> MatchResult {
    let n = ev.viz.n();
    if n < 2 {
        return MatchResult::infeasible();
    }
    if !chain.is_fully_fuzzy() {
        return solve_hybrid(ev, chain, bridges);
    }
    match tree_range(ev, &chain.units, 0, n - 1, bridges) {
        Some((score, ranges)) => finish(ev, chain, score, ranges),
        None => MatchResult::infeasible(),
    }
}

fn finish(
    ev: &Evaluator<'_>,
    chain: &Chain,
    score: f64,
    ranges: Vec<(usize, usize)>,
) -> MatchResult {
    let score = if chain.has_position_refs() {
        chain_score_with_positions(ev, chain, &ranges)
    } else {
        score
    };
    MatchResult { score, ranges }
}

/// Hybrid fuzzy/non-fuzzy queries (§6): fully pinned units are anchored
/// directly; maximal runs of fuzzy units tile the gaps between anchors with
/// their own SegmentTree. Partially pinned or width units fall back to the
/// exact DP, which handles every constraint.
fn solve_hybrid(ev: &Evaluator<'_>, chain: &Chain, bridges: bool) -> MatchResult {
    let fully_pinned = |u: &Unit| u.pin_start.is_some() && u.pin_end.is_some();
    if !chain.units.iter().all(|u| u.is_fuzzy() || fully_pinned(u)) {
        return super::dp::solve_chain(ev, chain, 0, ev.viz.n() - 1);
    }
    let n = ev.viz.n();
    let mut score = 0.0;
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(chain.len());
    let mut prev_end = 0usize;
    let mut fuzzy_run: Vec<Unit> = Vec::new();

    let flush_run = |run: &mut Vec<Unit>,
                     lo: usize,
                     hi: usize,
                     score: &mut f64,
                     ranges: &mut Vec<(usize, usize)>|
     -> bool {
        if run.is_empty() {
            return true;
        }
        let Some((s, rs)) = tree_range(ev, run, lo, hi, bridges) else {
            return false;
        };
        *score += s;
        ranges.extend(rs);
        run.clear();
        true
    };

    for unit in &chain.units {
        if fully_pinned(unit) {
            let s = ev.viz.x_to_index(unit.pin_start.expect("pinned"));
            let e = ev.viz.x_to_index(unit.pin_end.expect("pinned"));
            if e <= s || s < prev_end {
                return MatchResult::infeasible();
            }
            // Fuzzy run before this anchor tiles [prev_end, s].
            if !fuzzy_run.is_empty()
                && !flush_run(&mut fuzzy_run, prev_end, s, &mut score, &mut ranges)
            {
                return MatchResult::infeasible();
            }
            score += unit.weight * ev.eval_unit(slope_leaf(&unit.query), &unit.query, s, e);
            ranges.push((s, e));
            prev_end = e;
        } else {
            fuzzy_run.push(unit.clone());
        }
    }
    if !fuzzy_run.is_empty() && !flush_run(&mut fuzzy_run, prev_end, n - 1, &mut score, &mut ranges)
    {
        return MatchResult::infeasible();
    }
    finish(ev, chain, score, ranges)
}

/// Runs the SegmentTree over points `[lo, hi]` for a run of fuzzy units,
/// returning the partial weighted score and per-unit ranges.
fn tree_range(
    ev: &Evaluator<'_>,
    units: &[Unit],
    lo: usize,
    hi: usize,
    bridges: bool,
) -> Option<(f64, Vec<(usize, usize)>)> {
    let k = units.len();
    if k == 0 || hi <= lo || hi - lo < k {
        return None;
    }
    let leaves: Vec<Option<SlopeLeaf>> = units.iter().map(|u| slope_leaf(&u.query)).collect();
    let mut pool = TablePool::new();
    let table = solve_node(ev, units, &leaves, lo, hi, bridges, &mut pool);
    let entry = table.get(0, k)?;
    let mut ranges = Vec::with_capacity(k);
    let mut start = lo;
    for (t, &b) in entry.breaks.as_slice().iter().enumerate() {
        debug_assert!(t < k - 1);
        ranges.push((start, b as usize));
        start = b as usize;
    }
    ranges.push((start, hi));
    Some((entry.score, ranges))
}

/// Recursive bottom-up construction of a node's table (points `[lo, hi]`).
#[allow(clippy::needless_range_loop)] // sub-chain indices cross both children
fn solve_node(
    ev: &Evaluator<'_>,
    units: &[Unit],
    leaves: &[Option<SlopeLeaf>],
    lo: usize,
    hi: usize,
    bridges: bool,
    pool: &mut TablePool,
) -> NodeTable {
    let k = units.len();
    let mut table = NodeTable::new(k, pool);
    let intervals = hi - lo;

    // Direct single-unit entries: unit t spans the whole node range.
    for (t, u) in units.iter().enumerate() {
        table.set_max(
            t,
            t + 1,
            Entry {
                score: u.weight * ev.eval_unit(leaves[t], &u.query, lo, hi),
                breaks: Breaks::new(),
            },
        );
    }
    if intervals == 1 || k == 1 {
        return table;
    }

    let mid = lo + intervals / 2;
    let left = solve_node(ev, units, leaves, lo, mid, bridges, pool);
    let right = solve_node(ev, units, leaves, mid, hi, bridges, pool);

    for len in 2..=k.min(intervals) {
        for l in 0..=(k - len) {
            let r = l + len;
            // Split: boundary between units m-1 and m at the midpoint.
            for m in (l + 1)..r {
                let (Some(le), Some(re)) = (left.get(l, m), right.get(m, r)) else {
                    continue;
                };
                let mut breaks = Breaks::new();
                breaks.extend_from_slice(le.breaks.as_slice());
                breaks.push(mid as u32);
                breaks.extend_from_slice(re.breaks.as_slice());
                table.set_max(
                    l,
                    r,
                    Entry {
                        score: le.score + re.score,
                        breaks,
                    },
                );
            }
            // Bridge: unit b spans the midpoint; recompute it over the
            // merged range.
            if !bridges {
                continue;
            }
            for b in l..r {
                let (Some(le), Some(re)) = (left.get(l, b + 1), right.get(b, r)) else {
                    continue;
                };
                // Unit b's sub-ranges in each child.
                let left_start = le.breaks.as_slice().last().map_or(lo, |&x| x as usize);
                let right_end = re.breaks.as_slice().first().map_or(hi, |&x| x as usize);
                let w = units[b].weight;
                let q = &units[b].query;
                let leaf = leaves[b];
                let old_left = w * ev.eval_unit(leaf, q, left_start, mid);
                let old_right = w * ev.eval_unit(leaf, q, mid, right_end);
                let merged = w * ev.eval_unit(leaf, q, left_start, right_end);
                let mut breaks = Breaks::new();
                breaks.extend_from_slice(le.breaks.as_slice());
                breaks.extend_from_slice(re.breaks.as_slice());
                table.set_max(
                    l,
                    r,
                    Entry {
                        score: le.score - old_left + re.score - old_right + merged,
                        breaks,
                    },
                );
            }
        }
    }
    left.recycle(pool);
    right.recycle(pool);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dp::DpSegmenter;
    use crate::ast::{Pattern, ShapeQuery, ShapeSegment};
    use crate::chain::expand_chains;
    use crate::engine::group::VizData;
    use crate::eval::UdpRegistry;
    use crate::score::ScoreParams;
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)]) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs("t", pairs), 0, 1).unwrap()
    }

    fn run(q: &ShapeQuery, v: &VizData) -> (MatchResult, MatchResult) {
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(v, &params, &udps);
        let chains = expand_chains(q);
        (
            SegmentTreeSegmenter::default().match_viz(&ev, &chains),
            DpSegmenter.match_viz(&ev, &chains),
        )
    }

    #[test]
    fn matches_dp_on_clean_peak() {
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 2.0),
            (2.0, 4.0),
            (3.0, 6.0),
            (4.0, 4.0),
            (5.0, 2.0),
            (6.0, 0.0),
        ]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let (t, d) = run(&q, &v);
        assert!(
            (t.score - d.score).abs() < 1e-9,
            "{} vs {}",
            t.score,
            d.score
        );
        assert_eq!(t.ranges, d.ranges);
    }

    #[test]
    fn bridge_handles_off_center_breaks() {
        // Peak at index 5 of 0..=7 — not at any dyadic midpoint; the bridge
        // rule must recover it.
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.0, 2.0),
            (3.0, 3.0),
            (4.0, 4.0),
            (5.0, 5.0),
            (6.0, 2.5),
            (7.0, 0.0),
        ]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let (t, d) = run(&q, &v);
        assert_eq!(t.ranges, vec![(0, 5), (5, 7)]);
        assert!((t.score - d.score).abs() < 1e-9);
    }

    #[test]
    fn never_beats_dp_and_stays_close() {
        // A noisy trendline with several local structures.
        let pts: Vec<(f64, f64)> = [
            0.2, 0.9, 0.7, 1.8, 1.4, 2.6, 2.0, 1.1, 1.5, 0.4, 0.8, 0.1, 1.0, 2.2, 1.9, 3.0,
        ]
        .iter()
        .enumerate()
        .map(|(i, &y)| (i as f64, y))
        .collect();
        let v = viz(&pts);
        for q in [
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]),
            ShapeQuery::concat(vec![
                ShapeQuery::up(),
                ShapeQuery::down(),
                ShapeQuery::up(),
                ShapeQuery::down(),
            ]),
            ShapeQuery::concat(vec![ShapeQuery::flat(), ShapeQuery::up()]),
        ] {
            let (t, d) = run(&q, &v);
            assert!(
                t.score <= d.score + 1e-9,
                "tree {} exceeded optimal {} for {q}",
                t.score,
                d.score
            );
            assert!(
                t.score >= d.score - 0.35,
                "tree {} too far below optimal {} for {q}",
                t.score,
                d.score
            );
        }
    }

    #[test]
    fn or_chains_resolved() {
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 2.0),
            (2.0, 4.0),
            (3.0, 4.1),
            (4.0, 3.9),
            (5.0, 4.0),
        ]);
        // up then (flat or down): flat branch should win.
        let q = ShapeQuery::concat(vec![
            ShapeQuery::up(),
            ShapeQuery::Or(vec![ShapeQuery::flat(), ShapeQuery::down()]),
        ]);
        let (t, _) = run(&q, &v);
        assert!(t.score > 0.5, "score {}", t.score);
    }

    #[test]
    fn hybrid_pinned_anchor_with_fuzzy_tail() {
        let v = viz(&[
            (0.0, 5.0),
            (1.0, 4.0),
            (2.0, 3.0),
            (3.0, 4.0),
            (4.0, 5.0),
            (5.0, 4.0),
            (6.0, 3.0),
        ]);
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Down, 0.0, 2.0)),
            ShapeQuery::up(),
            ShapeQuery::down(),
        ]);
        let (t, d) = run(&q, &v);
        assert_eq!(t.ranges[0], (0, 2));
        assert_eq!(t.ranges.last().unwrap().1, 6);
        assert!(
            (t.score - d.score).abs() < 0.15,
            "{} vs {}",
            t.score,
            d.score
        );
    }

    #[test]
    fn width_units_fall_back_to_dp() {
        let v = viz(&[
            (0.0, 1.0),
            (1.0, 1.1),
            (2.0, 1.0),
            (3.0, 5.0),
            (4.0, 9.0),
            (5.0, 9.1),
            (6.0, 9.0),
        ]);
        let q = ShapeQuery::Segment(ShapeSegment::pattern(Pattern::Up).with_width(2.0));
        let (t, d) = run(&q, &v);
        assert_eq!(t.ranges, d.ranges);
        assert_eq!(t.score, d.score);
    }

    #[test]
    fn infeasible_cases() {
        let v = viz(&[(0.0, 0.0), (1.0, 1.0)]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]);
        let (t, _) = run(&q, &v);
        assert_eq!(t.score, -1.0);
    }

    #[test]
    fn three_segment_tree_matches_shape() {
        // down, up, down over 12 points.
        let v = viz(&[
            (0.0, 5.0),
            (1.0, 4.0),
            (2.0, 3.0),
            (3.0, 2.0),
            (4.0, 3.0),
            (5.0, 4.0),
            (6.0, 5.0),
            (7.0, 6.0),
            (8.0, 5.0),
            (9.0, 4.0),
            (10.0, 3.0),
            (11.0, 2.0),
        ]);
        let q = ShapeQuery::concat(vec![
            ShapeQuery::down(),
            ShapeQuery::up(),
            ShapeQuery::down(),
        ]);
        let (t, d) = run(&q, &v);
        assert!(t.score > 0.7, "score {}", t.score);
        assert!((t.score - d.score).abs() < 0.05);
        // Breaks near the true turning points (3 and 7).
        assert!((t.ranges[0].1 as i64 - 3).abs() <= 1, "{:?}", t.ranges);
        assert!((t.ranges[1].1 as i64 - 7).abs() <= 1, "{:?}", t.ranges);
    }
}
