//! Greedy segmentation baseline (paper §9, algorithm (v)): "start with
//! equal-sized VisualSegments, and incrementally extend or shrink (by half)
//! the lengths of VisualSegments, until there is no improvement in the
//! overall score". Fast but prone to local optima — the paper measures < 30%
//! accuracy versus the optimal DP.

use super::{best_over_chains, MatchResult, Segmenter};
use crate::chain::Chain;
use crate::eval::{chain_score_with_positions, slope_leaf, Evaluator, SlopeLeaf};

/// The greedy local-search segmenter.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySegmenter {
    /// Safety cap on improvement rounds.
    pub max_rounds: usize,
}

impl GreedySegmenter {
    /// Default configuration (64 rounds — convergence is usually ≤ 10).
    pub fn new() -> Self {
        Self { max_rounds: 64 }
    }
}

impl Segmenter for GreedySegmenter {
    fn match_viz(&self, ev: &Evaluator<'_>, chains: &[Chain]) -> MatchResult {
        best_over_chains(chains, |chain| {
            if !chain.is_fully_fuzzy() {
                // Pins/windows anchor the search space; the DP handles them
                // exactly and cheaply relative to unconstrained search.
                return super::dp::solve_chain(ev, chain, 0, ev.viz.n() - 1);
            }
            solve_greedy(ev, chain, self.max_rounds.max(1))
        })
    }
}

fn solve_greedy(ev: &Evaluator<'_>, chain: &Chain, max_rounds: usize) -> MatchResult {
    let k = chain.len();
    let n = ev.viz.n();
    if k == 0 || n < 2 || n - 1 < k {
        return MatchResult::infeasible();
    }
    // Equal-sized initial segmentation: breaks[0] = 0, breaks[k] = n-1.
    let mut breaks: Vec<usize> = (0..=k)
        .map(|t| ((t as f64 / k as f64) * (n - 1) as f64).round() as usize)
        .collect();
    // Guarantee strictly increasing breaks.
    for t in 1..=k {
        breaks[t] = breaks[t].max(breaks[t - 1] + 1).min(n - 1 - (k - t));
    }

    let leaves: Vec<Option<SlopeLeaf>> = chain.units.iter().map(|u| slope_leaf(&u.query)).collect();
    let score_of = |breaks: &[usize]| -> f64 {
        let mut total = 0.0;
        for (t, u) in chain.units.iter().enumerate() {
            total += u.weight * ev.eval_unit(leaves[t], &u.query, breaks[t], breaks[t + 1]);
        }
        total
    };

    let mut best = score_of(&breaks);
    for _ in 0..max_rounds {
        let mut improved = false;
        for b in 1..k {
            let lo = breaks[b - 1];
            let hi = breaks[b + 1];
            let cur = breaks[b];
            // Shrink-left / extend-right candidates: midpoints of the
            // neighbouring segments.
            for cand in [lo + (cur - lo) / 2, cur + (hi - cur) / 2] {
                if cand == cur || cand <= lo || cand >= hi {
                    continue;
                }
                let saved = breaks[b];
                breaks[b] = cand;
                let s = score_of(&breaks);
                if s > best + 1e-12 {
                    best = s;
                    improved = true;
                } else {
                    breaks[b] = saved;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let ranges: Vec<(usize, usize)> = (0..k).map(|t| (breaks[t], breaks[t + 1])).collect();
    let score = if chain.has_position_refs() {
        chain_score_with_positions(ev, chain, &ranges)
    } else {
        best
    };
    MatchResult { score, ranges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dp::DpSegmenter;
    use crate::ast::ShapeQuery;
    use crate::chain::expand_chains;
    use crate::engine::group::VizData;
    use crate::eval::UdpRegistry;
    use crate::score::ScoreParams;
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)]) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs("t", pairs), 0, 1).unwrap()
    }

    fn run(q: &ShapeQuery, v: &VizData) -> (MatchResult, MatchResult) {
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(v, &params, &udps);
        let chains = expand_chains(q);
        (
            GreedySegmenter::new().match_viz(&ev, &chains),
            DpSegmenter.match_viz(&ev, &chains),
        )
    }

    #[test]
    fn greedy_finds_obvious_break() {
        // Clean symmetric peak: the equal split is already optimal.
        let v = viz(&[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 2.0), (4.0, 0.0)]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let (g, d) = run(&q, &v);
        assert_eq!(g.ranges, d.ranges);
        assert!((g.score - d.score).abs() < 1e-9);
    }

    #[test]
    fn greedy_never_beats_dp() {
        let v = viz(&[
            (0.0, 0.5),
            (1.0, 1.8),
            (2.0, 1.2),
            (3.0, 3.1),
            (4.0, 2.2),
            (5.0, 0.3),
            (6.0, 1.4),
            (7.0, 0.2),
        ]);
        for q in [
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
            ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]),
            ShapeQuery::concat(vec![
                ShapeQuery::up(),
                ShapeQuery::down(),
                ShapeQuery::up(),
                ShapeQuery::down(),
            ]),
        ] {
            let (g, d) = run(&q, &v);
            assert!(
                g.score <= d.score + 1e-9,
                "greedy {} exceeded optimal {}",
                g.score,
                d.score
            );
        }
    }

    #[test]
    fn greedy_moves_break_toward_peak() {
        // Asymmetric peak at index 6 of 0..=7: equal split at 3..4 is wrong.
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 0.5),
            (2.0, 1.0),
            (3.0, 1.5),
            (4.0, 2.0),
            (5.0, 2.5),
            (6.0, 3.0),
            (7.0, 0.0),
        ]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let (g, _) = run(&q, &v);
        // The greedy break should land past the midpoint.
        assert!(g.ranges[0].1 > 4, "break at {:?}", g.ranges);
        assert!(g.score > 0.5);
    }

    #[test]
    fn infeasible_tiny_viz() {
        let v = viz(&[(0.0, 0.0), (1.0, 1.0)]);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]);
        let (g, _) = run(&q, &v);
        assert_eq!(g.score, -1.0);
    }

    #[test]
    fn pinned_chain_falls_back_to_dp() {
        use crate::ast::{Pattern, ShapeSegment};
        let v = viz(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)]);
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 2.0)),
            ShapeQuery::down(),
        ]);
        let (g, d) = run(&q, &v);
        assert_eq!(g.ranges, d.ranges);
        assert_eq!(g.score, d.score);
    }
}
