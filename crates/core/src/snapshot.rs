//! Versioned on-disk snapshots of post-GROUP state.
//!
//! A snapshot persists everything a [`crate::ShapeEngine`] needs to
//! serve a collection — the raw trendlines (keys and points, for result
//! keys, push-down, and re-GROUP at other bin widths) **and** the
//! [`ColumnarArena`] of one GROUP run (the §5.3 prefix statistics and
//! §6.3 slope extremes the scoring hot path reads) — as one flat
//! little-endian file. Opening a snapshot maps it ([`memmap2::Mmap`]
//! behind the workspace's std-only syscall shim) and hands the arena
//! columns back as **zero-copy views into the mapping**, so a cold
//! shard load is a page-in plus a trendline copy, never a re-EXTRACT or
//! re-GROUP.
//!
//! ## File layout (version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SHAPSNAP"
//!      8     4  format version (u32, = 1)
//!     12     4  flags (u32, = 0)
//!     16     8  bin width the arena was GROUPed at
//!     24     8  trendline count T
//!     32     8  viz count V (GROUP-accepted trendlines)
//!     40     8  canvas point count P
//!     48     8  raw point count R
//!     56     8  total file length (truncation check)
//!     64     8  FNV-1a checksum of every byte after the header
//!     72   240  column table: 15 × (offset u64, byte length u64)
//!    312     8  FNV-1a checksum of header bytes [0, 312)
//!    320     …  columns, each 8-byte aligned, in table order
//! ```
//!
//! Columns, in order: key bytes (concatenated UTF-8 keys), key starts
//! `u64[T+1]`, raw xs `f64[R]`, raw ys `f64[R]`, raw starts `u64[T+1]`,
//! viz slots `u64[T]` (slot+1, 0 where GROUP rejected), point starts
//! `u64[V+1]`, then the arena's six `f64` columns (xs, ys, and the four
//! prefix-sum columns of length `P+V`), then slope min/max `f64[V]`.
//! All integers and floats are little-endian; `f64` bit patterns round-
//! trip exactly (NaN payloads included), which is what keeps
//! snapshot-backed serving byte-identical to the eager path.
//!
//! [`Snapshot::open`] verifies the magic, version, both checksums, the
//! recorded file length, and every structural invariant (monotone
//! offset columns, sequential slots, ≥ 2 points per viz) before any
//! caller can touch the data: a torn or corrupted snapshot is a
//! structured [`SnapshotError`], never a panic or garbage results. The
//! payload checksum pass reads the whole file once, which doubles as
//! page pre-faulting for the resident data.

use crate::columnar::{ArenaBuilder, Column, ColumnarArena};
use crate::engine::group::{self, VizData};
use shapesearch_datastore::{TrendPoint, Trendline};
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a ShapeSearch snapshot file.
pub const MAGIC: [u8; 8] = *b"SHAPSNAP";
/// The current (and only) snapshot format version.
pub const FORMAT_VERSION: u32 = 1;
/// Byte length of the fixed v1 header.
const HEADER_LEN: usize = 320;
/// Number of columns in the v1 column table.
const COLUMNS: usize = 15;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Column indices into the v1 column table, in serialization order.
#[derive(Clone, Copy)]
enum Col {
    KeyBytes = 0,
    KeyStarts,
    RawXs,
    RawYs,
    RawStarts,
    VizSlots,
    PointStarts,
    Xs,
    Ys,
    SumX,
    SumY,
    SumXy,
    SumXx,
    SlopeMin,
    SlopeMax,
}

/// One column's location in the file.
#[derive(Clone, Copy, Debug, Default)]
struct Span {
    offset: usize,
    bytes: usize,
}

/// Why a snapshot could not be written or opened.
#[derive(Debug)]
pub enum SnapshotError {
    /// An OS-level read/write/map failure.
    Io {
        /// The snapshot path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file is not a well-formed snapshot: bad magic, failed
    /// checksum, truncation, or a violated structural invariant.
    Corrupt {
        /// The snapshot path involved.
        path: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
    /// The file is a snapshot, but of a format version this build does
    /// not read.
    Version {
        /// The snapshot path involved.
        path: PathBuf,
        /// The version the file declares.
        found: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "snapshot {}: {source}", path.display())
            }
            Self::Corrupt { path, detail } => {
                write!(f, "snapshot {} is not valid: {detail}", path.display())
            }
            Self::Version { path, found } => write!(
                f,
                "snapshot {} is format version {found}; this build reads version {FORMAT_VERSION}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What [`write()`] produced, for logging and CLI output.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStats {
    /// Trendlines serialized (including GROUP-rejected ones).
    pub trendlines: usize,
    /// GROUP-accepted visualizations in the arena.
    pub vizzes: usize,
    /// Raw points across all trendlines.
    pub raw_points: usize,
    /// Canvas points across all accepted visualizations.
    pub canvas_points: usize,
    /// Total file size in bytes.
    pub bytes: usize,
}

fn io_err(path: &Path, source: io::Error) -> SnapshotError {
    SnapshotError::Io {
        path: path.to_owned(),
        source,
    }
}

fn put(
    out: &mut BufWriter<File>,
    hash: &mut u64,
    bytes: &[u8],
    path: &Path,
) -> Result<(), SnapshotError> {
    fnv1a(hash, bytes);
    out.write_all(bytes).map_err(|e| io_err(path, e))
}

fn put_f64s(
    out: &mut BufWriter<File>,
    hash: &mut u64,
    vals: &[f64],
    path: &Path,
) -> Result<(), SnapshotError> {
    for v in vals {
        put(out, hash, &v.to_le_bytes(), path)?;
    }
    Ok(())
}

fn put_u64s(
    out: &mut BufWriter<File>,
    hash: &mut u64,
    vals: impl Iterator<Item = u64>,
    path: &Path,
) -> Result<(), SnapshotError> {
    for v in vals {
        put(out, hash, &v.to_le_bytes(), path)?;
    }
    Ok(())
}

/// Computes the deterministic v1 column table for the given counts.
/// `key_bytes` is the only column whose length is not a multiple of 8;
/// every column is padded to an 8-byte boundary so mapped `f64`/`u64`
/// views stay aligned.
fn layout(key_bytes: usize, t: usize, v: usize, p: usize, r: usize) -> ([Span; COLUMNS], usize) {
    let lens: [usize; COLUMNS] = [
        key_bytes,
        (t + 1) * 8,
        r * 8,
        r * 8,
        (t + 1) * 8,
        t * 8,
        (v + 1) * 8,
        p * 8,
        p * 8,
        (p + v) * 8,
        (p + v) * 8,
        (p + v) * 8,
        (p + v) * 8,
        v * 8,
        v * 8,
    ];
    let mut spans = [Span::default(); COLUMNS];
    let mut offset = HEADER_LEN;
    for (span, &bytes) in spans.iter_mut().zip(&lens) {
        *span = Span { offset, bytes };
        offset += bytes.div_ceil(8) * 8;
    }
    (spans, offset)
}

/// Writes a version-1 snapshot of `trendlines` GROUPed at `bin_width`.
///
/// The arena serialized is exactly what
/// [`group_collection`](crate::group_collection) builds — the same
/// structure an eager engine caches — so a loaded snapshot's columns
/// carry the same bits the eager path would compute.
///
/// # Errors
/// Propagates filesystem errors as [`SnapshotError::Io`].
pub fn write(
    path: impl AsRef<Path>,
    trendlines: &[Trendline],
    bin_width: usize,
) -> Result<SnapshotStats, SnapshotError> {
    let path = path.as_ref();
    let grouped = group::group_collection(trendlines, bin_width);
    let empty;
    let raw = match grouped.iter().flatten().next() {
        Some(v) => v.arena().raw(),
        None => {
            empty = ArenaBuilder::new().finish();
            empty.raw()
        }
    };

    let t = trendlines.len();
    let v = raw.point_starts.len() - 1;
    let p = raw.xs.len();
    let r: usize = trendlines.iter().map(|t| t.points.len()).sum();
    let key_bytes: usize = trendlines.iter().map(|t| t.key.len()).sum();
    let (spans, file_len) = layout(key_bytes, t, v, p, r);

    let file = File::create(path).map_err(|e| io_err(path, e))?;
    let mut out = BufWriter::new(file);
    // Header placeholder; the real header lands after the payload hash
    // is known.
    out.write_all(&[0u8; HEADER_LEN])
        .map_err(|e| io_err(path, e))?;

    let mut hash = FNV_OFFSET;
    let h = &mut hash;
    // Key bytes, padded to the 8-byte boundary the next column needs.
    for tl in trendlines {
        put(&mut out, h, tl.key.as_bytes(), path)?;
    }
    let pad = key_bytes.div_ceil(8) * 8 - key_bytes;
    put(&mut out, h, &[0u8; 8][..pad], path)?;
    // Key starts.
    let mut acc = 0u64;
    put(&mut out, h, &0u64.to_le_bytes(), path)?;
    for tl in trendlines {
        acc += tl.key.len() as u64;
        put(&mut out, h, &acc.to_le_bytes(), path)?;
    }
    // Raw coordinates and starts.
    for tl in trendlines {
        for pt in &tl.points {
            put(&mut out, h, &pt.x.to_le_bytes(), path)?;
        }
    }
    for tl in trendlines {
        for pt in &tl.points {
            put(&mut out, h, &pt.y.to_le_bytes(), path)?;
        }
    }
    let mut acc = 0u64;
    put(&mut out, h, &0u64.to_le_bytes(), path)?;
    for tl in trendlines {
        acc += tl.points.len() as u64;
        put(&mut out, h, &acc.to_le_bytes(), path)?;
    }
    // Viz slots: slot+1, 0 where GROUP rejected.
    put_u64s(
        &mut out,
        h,
        grouped
            .iter()
            .map(|g| g.as_ref().map_or(0, |v| v.slot() as u64 + 1)),
        path,
    )?;
    // The arena columns.
    put_u64s(
        &mut out,
        h,
        raw.point_starts.iter().map(|&s| s as u64),
        path,
    )?;
    put_f64s(&mut out, h, raw.xs, path)?;
    put_f64s(&mut out, h, raw.ys, path)?;
    put_f64s(&mut out, h, raw.sum_x, path)?;
    put_f64s(&mut out, h, raw.sum_y, path)?;
    put_f64s(&mut out, h, raw.sum_xy, path)?;
    put_f64s(&mut out, h, raw.sum_xx, path)?;
    put_f64s(&mut out, h, raw.slope_min, path)?;
    put_f64s(&mut out, h, raw.slope_max, path)?;

    // Assemble and install the real header.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes()); // flags
    for field in [
        bin_width as u64,
        t as u64,
        v as u64,
        p as u64,
        r as u64,
        file_len as u64,
        hash,
    ] {
        header.extend_from_slice(&field.to_le_bytes());
    }
    for span in &spans {
        header.extend_from_slice(&(span.offset as u64).to_le_bytes());
        header.extend_from_slice(&(span.bytes as u64).to_le_bytes());
    }
    let mut header_hash = FNV_OFFSET;
    fnv1a(&mut header_hash, &header);
    header.extend_from_slice(&header_hash.to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_LEN);

    let mut file = out.into_inner().map_err(|e| io_err(path, e.into()))?;
    file.seek(SeekFrom::Start(0)).map_err(|e| io_err(path, e))?;
    file.write_all(&header).map_err(|e| io_err(path, e))?;
    file.sync_all().map_err(|e| io_err(path, e))?;

    Ok(SnapshotStats {
        trendlines: t,
        vizzes: v,
        raw_points: r,
        canvas_points: p,
        bytes: file_len,
    })
}

/// One shard's worth of snapshot data, materialized by
/// [`Snapshot::partition`]: the raw trendlines (copied out of the
/// mapping) plus the GROUP handles whose arena columns are zero-copy
/// views into the mapping.
pub struct SnapshotPartition {
    /// The partition's trendlines, in collection order.
    pub trendlines: Vec<Trendline>,
    /// The partition's GROUP run at the snapshot's bin width — ready to
    /// seed into [`crate::ShapeEngine::seed_grouped`]. `None` where
    /// GROUP rejected the trendline at snapshot build time.
    pub grouped: Vec<Option<VizData>>,
}

/// An opened, validated snapshot file. Cheap to clone partitions from;
/// the mapping stays alive for as long as any arena column cut from it
/// does (each holds an `Arc` on the map).
pub struct Snapshot {
    map: Arc<memmap2::Mmap>,
    path: PathBuf,
    bin_width: usize,
    spans: [Span; COLUMNS],
    key_starts: Vec<usize>,
    raw_starts: Vec<usize>,
    /// Per trendline: `Some(slot)` where GROUP accepted it.
    viz_slots: Vec<Option<usize>>,
    point_starts: Vec<usize>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("path", &self.path)
            .field("bin_width", &self.bin_width)
            .field("trendlines", &self.trendline_count())
            .field("vizzes", &self.viz_count())
            .finish()
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        path: path.to_owned(),
        detail: detail.into(),
    }
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn le_usize(bytes: &[u8], at: usize, path: &Path, what: &str) -> Result<usize, SnapshotError> {
    usize::try_from(le_u64(bytes, at))
        .map_err(|_| corrupt(path, format!("{what} does not fit this platform's usize")))
}

impl Snapshot {
    /// Opens and fully validates a snapshot file.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] for filesystem/mapping failures,
    /// [`SnapshotError::Version`] for an unknown format version, and
    /// [`SnapshotError::Corrupt`] for everything a torn, truncated, or
    /// tampered file can present: bad magic, checksum mismatches
    /// (header and payload), a recorded length that disagrees with the
    /// file, or structural invariants that do not hold.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| io_err(path, e))?;
        // Safety: mapping contract — the snapshot file must not be
        // truncated or rewritten while the server holds it; the CLI
        // writes snapshots atomically-enough (full write + sync) and
        // they are treated as immutable artifacts thereafter.
        let map = unsafe { memmap2::Mmap::map(&file) }.map_err(|e| io_err(path, e))?;
        let map = Arc::new(map);
        let bytes: &[u8] = &map;

        if bytes.len() < HEADER_LEN {
            return Err(corrupt(
                path,
                format!(
                    "{} bytes is shorter than the {HEADER_LEN}-byte header",
                    bytes.len()
                ),
            ));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt(path, "bad magic (not a ShapeSearch snapshot)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::Version {
                path: path.to_owned(),
                found: version,
            });
        }
        // Header checksum before trusting any counted field.
        let mut header_hash = FNV_OFFSET;
        fnv1a(&mut header_hash, &bytes[..HEADER_LEN - 8]);
        if header_hash != le_u64(bytes, HEADER_LEN - 8) {
            return Err(corrupt(path, "header checksum mismatch"));
        }

        let bin_width = le_usize(bytes, 16, path, "bin width")?;
        let t = le_usize(bytes, 24, path, "trendline count")?;
        let v = le_usize(bytes, 32, path, "viz count")?;
        let p = le_usize(bytes, 40, path, "canvas point count")?;
        let r = le_usize(bytes, 48, path, "raw point count")?;
        let file_len = le_usize(bytes, 56, path, "file length")?;
        if file_len != bytes.len() {
            return Err(corrupt(
                path,
                format!(
                    "recorded length {file_len} != actual {} (torn or truncated)",
                    bytes.len()
                ),
            ));
        }

        // The column table must match the deterministic v1 layout for
        // these counts; key byte length comes from the table itself.
        let key_bytes = le_usize(bytes, 72 + 8, path, "key column length")?;
        let (spans, expected_len) = layout(key_bytes, t, v, p, r);
        if expected_len != file_len {
            return Err(corrupt(
                path,
                format!("layout for the recorded counts needs {expected_len} bytes, file has {file_len}"),
            ));
        }
        for (i, span) in spans.iter().enumerate() {
            let offset = le_usize(bytes, 72 + i * 16, path, "column offset")?;
            let len = le_usize(bytes, 72 + i * 16 + 8, path, "column length")?;
            if offset != span.offset || len != span.bytes {
                return Err(corrupt(
                    path,
                    format!(
                        "column {i} at {offset}+{len} disagrees with the v1 layout \
                         ({}+{})",
                        span.offset, span.bytes
                    ),
                ));
            }
        }

        // Payload checksum: one sequential pass over everything after
        // the header (which also pre-faults the mapping's pages).
        let mut payload_hash = FNV_OFFSET;
        fnv1a(&mut payload_hash, &bytes[HEADER_LEN..]);
        if payload_hash != le_u64(bytes, 64) {
            return Err(corrupt(path, "payload checksum mismatch"));
        }

        let read_u64s = |span: Span| -> Vec<u64> {
            bytes[span.offset..span.offset + span.bytes]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect()
        };
        let starts = |span: Span, last: usize, what: &str| -> Result<Vec<usize>, SnapshotError> {
            let vals = read_u64s(span);
            let mut out = Vec::with_capacity(vals.len());
            let mut prev = 0usize;
            for (i, &val) in vals.iter().enumerate() {
                let val = usize::try_from(val)
                    .map_err(|_| corrupt(path, format!("{what}[{i}] overflows usize")))?;
                if (i == 0 && val != 0) || val < prev {
                    return Err(corrupt(path, format!("{what} is not monotone from 0")));
                }
                prev = val;
                out.push(val);
            }
            if out.last() != Some(&last) {
                return Err(corrupt(path, format!("{what} does not end at {last}")));
            }
            Ok(out)
        };

        let key_starts = starts(spans[Col::KeyStarts as usize], key_bytes, "key starts")?;
        let raw_starts = starts(spans[Col::RawStarts as usize], r, "raw starts")?;
        let point_starts = starts(spans[Col::PointStarts as usize], p, "point starts")?;
        if point_starts.windows(2).any(|w| w[1] - w[0] < 2) {
            return Err(corrupt(path, "a viz has fewer than 2 canvas points"));
        }

        // Slots must be exactly 0..V in source order (that is how the
        // GROUP writer assigns them), encoded as slot+1 with 0 for
        // rejected trendlines.
        let mut viz_slots = Vec::with_capacity(t);
        let mut next_slot = 0usize;
        for (i, &enc) in read_u64s(spans[Col::VizSlots as usize]).iter().enumerate() {
            if enc == 0 {
                viz_slots.push(None);
                continue;
            }
            let slot = usize::try_from(enc - 1)
                .map_err(|_| corrupt(path, format!("viz slot[{i}] overflows usize")))?;
            if slot != next_slot {
                return Err(corrupt(
                    path,
                    format!("viz slots are not sequential at trendline {i}"),
                ));
            }
            next_slot += 1;
            viz_slots.push(Some(slot));
        }
        if next_slot != v {
            return Err(corrupt(
                path,
                format!("{next_slot} accepted trendlines but the header declares {v} vizzes"),
            ));
        }

        // Keys must be valid UTF-8 now, so partitioning never fails.
        let kb = spans[Col::KeyBytes as usize];
        for w in key_starts.windows(2) {
            if std::str::from_utf8(&bytes[kb.offset + w[0]..kb.offset + w[1]]).is_err() {
                return Err(corrupt(path, "a trendline key is not valid UTF-8"));
            }
        }

        Ok(Self {
            map: Arc::clone(&map),
            path: path.to_owned(),
            bin_width,
            spans,
            key_starts,
            raw_starts,
            viz_slots,
            point_starts,
        })
    }

    /// The bin width the snapshot's arena was GROUPed at.
    pub fn bin_width(&self) -> usize {
        self.bin_width
    }

    /// Number of trendlines (including GROUP-rejected ones).
    pub fn trendline_count(&self) -> usize {
        self.viz_slots.len()
    }

    /// Number of GROUP-accepted visualizations.
    pub fn viz_count(&self) -> usize {
        self.point_starts.len() - 1
    }

    /// Total raw points across all trendlines.
    pub fn raw_point_count(&self) -> usize {
        *self.raw_starts.last().expect("validated at open")
    }

    /// Per-trendline raw point counts — the input
    /// [`crate::partition_bounds_by_points`] needs to reproduce the
    /// eager path's deterministic shard bounds without materializing a
    /// single trendline.
    pub fn raw_point_counts(&self) -> Vec<usize> {
        self.raw_starts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Deterministic shard bounds for `shard_count` shards — identical
    /// to what the eager [`crate::ShardedEngine`] computes over the
    /// same trendlines.
    pub fn partition_bounds(&self, shard_count: usize) -> Vec<(usize, usize)> {
        crate::engine::shard::partition_bounds_by_points(&self.raw_point_counts(), shard_count)
    }

    /// A mapped `f64` column slice (elements `[lo, hi)` of column
    /// `col`) as an arena [`Column`]: zero-copy on little-endian
    /// targets, a decoded copy on big-endian ones.
    fn f64_col(&self, col: Col, lo: usize, hi: usize) -> Column {
        let span = self.spans[col as usize];
        debug_assert!(hi * 8 <= span.bytes);
        let offset = span.offset + lo * 8;
        if cfg!(target_endian = "little") {
            Column::mapped(&self.map, offset, hi - lo)
        } else {
            let bytes = &self.map[offset..offset + (hi - lo) * 8];
            Column::Owned(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            )
        }
    }

    /// Decoded `f64` values `[lo, hi)` of column `col` (for the raw
    /// coordinate columns, which are copied into trendlines anyway).
    fn f64_vals(&self, col: Col, lo: usize, hi: usize) -> impl Iterator<Item = f64> + '_ {
        let span = self.spans[col as usize];
        self.map[span.offset + lo * 8..span.offset + hi * 8]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
    }

    /// Materializes trendlines `[start, end)` plus their GROUP run over
    /// a zero-copy view of the mapped arena. The trendlines are copied
    /// (they are mutated nowhere and queries clone keys out of them);
    /// the arena columns are `Column::Mapped` slices, so the heavy
    /// prefix-statistic state is shared with the page cache.
    ///
    /// `[start, end)` must be one of the deterministic partitions from
    /// [`Self::partition_bounds`] (or the whole collection): the
    /// partition's accepted slots are then contiguous, which is what
    /// makes the sub-arena a pure slice with rebased offsets.
    ///
    /// # Panics
    /// Panics when `start > end` or `end` exceeds the trendline count.
    pub fn partition(&self, start: usize, end: usize) -> SnapshotPartition {
        assert!(start <= end && end <= self.trendline_count());
        let kb = self.spans[Col::KeyBytes as usize];
        let bytes: &[u8] = &self.map;

        let mut trendlines = Vec::with_capacity(end - start);
        for t in start..end {
            let key = std::str::from_utf8(
                &bytes[kb.offset + self.key_starts[t]..kb.offset + self.key_starts[t + 1]],
            )
            .expect("validated at open");
            let (lo, hi) = (self.raw_starts[t], self.raw_starts[t + 1]);
            let points = self
                .f64_vals(Col::RawXs, lo, hi)
                .zip(self.f64_vals(Col::RawYs, lo, hi))
                .map(|(x, y)| TrendPoint { x, y })
                .collect();
            trendlines.push(Trendline {
                key: key.to_owned(),
                points,
            });
        }

        // The partition's slots form a contiguous run [sa, sb).
        let mut local_slots = Vec::with_capacity(end - start);
        let mut sa = None;
        let mut sb = 0usize;
        for t in start..end {
            match self.viz_slots[t] {
                Some(s) => {
                    sa.get_or_insert(s);
                    sb = s + 1;
                    local_slots.push(Some(s));
                }
                None => local_slots.push(None),
            }
        }
        let sa = sa.unwrap_or(0);
        let sb = sb.max(sa);
        for slot in local_slots.iter_mut().flatten() {
            *slot -= sa;
        }

        let p_lo = self.point_starts[sa];
        let p_hi = self.point_starts[sb];
        // Prefix columns carry one extra leading zero per viz, so the
        // sub-run shifts by the slot index on each side.
        let (q_lo, q_hi) = (p_lo + sa, p_hi + sb);
        let local_starts: Vec<usize> = self.point_starts[sa..=sb]
            .iter()
            .map(|&s| s - p_lo)
            .collect();
        let arena = Arc::new(ColumnarArena::from_columns(
            self.f64_col(Col::Xs, p_lo, p_hi),
            self.f64_col(Col::Ys, p_lo, p_hi),
            self.f64_col(Col::SumX, q_lo, q_hi),
            self.f64_col(Col::SumY, q_lo, q_hi),
            self.f64_col(Col::SumXy, q_lo, q_hi),
            self.f64_col(Col::SumXx, q_lo, q_hi),
            local_starts,
            self.f64_col(Col::SlopeMin, sa, sb),
            self.f64_col(Col::SlopeMax, sa, sb),
        ));
        let grouped = group::vizzes_from_arena(&trendlines, &local_slots, &arena);
        SnapshotPartition {
            trendlines,
            grouped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::group::group_collection;

    fn demo_trendlines() -> Vec<Trendline> {
        let mut out = Vec::new();
        for t in 0..7usize {
            let n = match t {
                2 => 1, // too short: GROUP rejects it
                5 => 0, // empty: GROUP rejects it
                _ => 8 + t * 3,
            };
            let pairs: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let x = i as f64;
                    (x, (x * 0.7 + t as f64).sin() * (t + 1) as f64)
                })
                .collect();
            out.push(Trendline::from_pairs(format!("series-{t}"), &pairs));
        }
        out
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ss-snap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let trendlines = demo_trendlines();
        let path = temp_path("roundtrip.snap");
        let stats = write(&path, &trendlines, 4).unwrap();
        assert_eq!(stats.trendlines, trendlines.len());
        assert_eq!(stats.vizzes, 5);

        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.bin_width(), 4);
        assert_eq!(snap.trendline_count(), trendlines.len());
        assert_eq!(snap.viz_count(), 5);
        assert_eq!(
            snap.raw_point_counts(),
            trendlines
                .iter()
                .map(|t| t.points.len())
                .collect::<Vec<_>>()
        );

        let part = snap.partition(0, trendlines.len());
        assert_eq!(part.trendlines, trendlines);

        let eager = group_collection(&trendlines, 4);
        assert_eq!(part.grouped.len(), eager.len());
        for (loaded, eager) in part.grouped.iter().zip(&eager) {
            match (loaded, eager) {
                (None, None) => {}
                (Some(l), Some(e)) => {
                    assert_eq!(l.key, e.key);
                    assert_eq!(l.source, e.source);
                    assert_eq!(l.raw_x.0.to_bits(), e.raw_x.0.to_bits());
                    assert_eq!(l.raw_x.1.to_bits(), e.raw_x.1.to_bits());
                    assert_eq!(l.raw_y.0.to_bits(), e.raw_y.0.to_bits());
                    assert_eq!(l.raw_y.1.to_bits(), e.raw_y.1.to_bits());
                    assert_eq!(l.slope_min.to_bits(), e.slope_min.to_bits());
                    assert_eq!(l.slope_max.to_bits(), e.slope_max.to_bits());
                    let (la, ea) = (l.arena(), e.arena());
                    let (lr, er) = (la.raw(), ea.raw());
                    assert_eq!(lr.point_starts, er.point_starts);
                    for (l_col, e_col) in [
                        (lr.xs, er.xs),
                        (lr.ys, er.ys),
                        (lr.sum_x, er.sum_x),
                        (lr.sum_y, er.sum_y),
                        (lr.sum_xy, er.sum_xy),
                        (lr.sum_xx, er.sum_xx),
                        (lr.slope_min, er.slope_min),
                        (lr.slope_max, er.slope_max),
                    ] {
                        assert_eq!(l_col.len(), e_col.len());
                        for (a, b) in l_col.iter().zip(e_col) {
                            assert_eq!(a.to_bits(), b.to_bits());
                        }
                    }
                }
                _ => panic!("GROUP accept/reject disagrees"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partitions_match_whole_collection() {
        let trendlines = demo_trendlines();
        let path = temp_path("parts.snap");
        write(&path, &trendlines, 3).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        for shards in [1usize, 2, 3, 4] {
            let bounds = snap.partition_bounds(shards);
            let counts: Vec<usize> = trendlines.iter().map(|t| t.points.len()).collect();
            assert_eq!(bounds, crate::partition_bounds_by_points(&counts, shards));
            let mut keys = Vec::new();
            for &(start, end) in &bounds {
                let part = snap.partition(start, end);
                assert_eq!(part.trendlines, trendlines[start..end]);
                for viz in part.grouped.iter().flatten() {
                    keys.push(viz.key.clone());
                }
            }
            let eager: Vec<String> = group_collection(&trendlines, 3)
                .into_iter()
                .flatten()
                .map(|v| v.key)
                .collect();
            assert_eq!(keys, eager);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_collection_round_trips() {
        let path = temp_path("empty.snap");
        write(&path, &[], 7).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.trendline_count(), 0);
        assert_eq!(snap.viz_count(), 0);
        let part = snap.partition(0, 0);
        assert!(part.trendlines.is_empty());
        assert!(part.grouped.is_empty());
        std::fs::remove_file(&path).ok();
    }

    fn write_demo(name: &str) -> (PathBuf, Vec<u8>) {
        let path = temp_path(name);
        write(&path, &demo_trendlines(), 4).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    fn expect_corrupt(path: &Path, bytes: Vec<u8>) {
        std::fs::write(path, bytes).unwrap();
        match Snapshot::open(path) {
            Err(SnapshotError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (path, mut bytes) = write_demo("magic.snap");
        bytes[0] ^= 0xff;
        expect_corrupt(&path, bytes);
    }

    #[test]
    fn header_corruption_is_rejected() {
        let (path, mut bytes) = write_demo("hdr.snap");
        bytes[24] ^= 0x01; // trendline count
        expect_corrupt(&path, bytes);
    }

    #[test]
    fn payload_corruption_is_rejected() {
        let (path, mut bytes) = write_demo("payload.snap");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        expect_corrupt(&path, bytes);
    }

    #[test]
    fn truncation_is_rejected() {
        let (path, mut bytes) = write_demo("torn.snap");
        bytes.truncate(bytes.len() - 8);
        expect_corrupt(&path, bytes);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (path, mut bytes) = write_demo("ver.snap");
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        // Re-seal the header checksum so the version check is what fires.
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &bytes[..HEADER_LEN - 8]);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&h.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        match Snapshot::open(&path) {
            Err(SnapshotError::Version { found: 9, .. }) => {}
            other => panic!("expected Version, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_render_structured_messages() {
        let (path, mut bytes) = write_demo("msg.snap");
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("not valid"), "{msg}");
        assert!(msg.contains("magic"), "{msg}");
        std::fs::remove_file(&path).ok();
    }
}
