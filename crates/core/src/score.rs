//! Pattern and operator scoring functions (paper §5.2, Tables 5 and 6).
//!
//! All scores live in `[−1, 1]` (1 = best match, −1 = worst). The pattern
//! scorers follow the paper's perceptual design: "a change in slope from 10°
//! to 30° is perceptually more noticeable than from 60° to 80° ... modeled
//! using the tan⁻¹ function" (the law of diminishing returns).
//!
//! | Pattern  | Score |
//! |----------|-------|
//! | up       | 2·tan⁻¹(slope)/π |
//! | down     | −2·tan⁻¹(slope)/π |
//! | flat     | 1 − \|4·tan⁻¹(slope)/π\| |
//! | θ = x    | 1 − 2·\|tan⁻¹(slope) − tan⁻¹(x)\| / (π/2 + \|tan⁻¹(x)\|) |
//! | *        | 1 |
//! | empty    | −1 |
//! | v        | normalized L2 (see `shapesearch-similarity`) |
//!
//! | Operator | Score |
//! |----------|-------|
//! | CONCAT   | mean of child scores |
//! | AND      | min of child scores |
//! | OR       | max of child scores |
//! | NOT      | −score |

use std::f64::consts::{FRAC_PI_2, PI};

/// Tunable scoring parameters. Defaults reproduce the paper's behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreParams {
    /// Angle (degrees) at which a "sharp" rise/fall (`m=>>`) peaks.
    pub sharp_angle_deg: f64,
    /// Angle (degrees) at which a "gradual" rise/fall (`m=>`) peaks.
    pub gradual_angle_deg: f64,
    /// Threshold above which a sub-segment counts as a quantifier occurrence
    /// ("using zero as a threshold, which can be overridden by users").
    pub quantifier_threshold: f64,
    /// Scale for mapping sketch L2 distances into [−1, 1].
    pub sketch_distance_scale: f64,
    /// Relative tolerance (fraction of the y range) for y-location checks.
    pub y_tolerance: f64,
    /// Minimum canvas-x fraction a scored segment must span before its
    /// score counts at full strength; narrower segments have their score
    /// blended linearly toward −1 (see [`width_penalty`]). `0.0` (the
    /// default) disables the term.
    ///
    /// This counters the *flat-pattern degeneracy* of CONCAT-mean
    /// scoring: with fuzzy segmentation the optimal DP can fit almost any
    /// trendline with a near-degenerate split — a steep two-point rise, a
    /// long "flat" middle, a steep two-point fall — whose per-segment
    /// scores are all near 1, compressing the gap between genuine
    /// matches and arbitrary random walks. Penalizing segments too
    /// narrow to constitute perceptual evidence restores the gap.
    pub min_width_frac: f64,
}

impl Default for ScoreParams {
    fn default() -> Self {
        Self {
            sharp_angle_deg: 75.0,
            gradual_angle_deg: 30.0,
            quantifier_threshold: 0.0,
            sketch_distance_scale: 0.25,
            y_tolerance: 0.15,
            min_width_frac: 0.0,
        }
    }
}

/// Applies the minimum-segment-width fit term: a segment spanning canvas
/// width `width < min_width_frac` has its score blended linearly toward
/// −1 (`t·score − (1 − t)` with `t = width / min_width_frac`), so a
/// zero-width segment can never contribute positive evidence while a
/// segment at or above the minimum width is untouched. The blend is
/// monotone in both `score` and `width`, which keeps the segmentation
/// DP's optimal-substructure argument intact. No-op when
/// `min_width_frac` is 0.
pub fn width_penalty(score: f64, width: f64, min_width_frac: f64) -> f64 {
    if min_width_frac <= 0.0 || width >= min_width_frac {
        return score;
    }
    let t = (width / min_width_frac).clamp(0.0, 1.0);
    score * t - (1.0 - t)
}

/// Score of the `up` pattern for a fitted slope: 2·tan⁻¹(slope)/π.
/// Rises from −1 (steep fall) through 0 (flat) to +1 (steep rise).
pub fn score_up(slope: f64) -> f64 {
    2.0 * slope.atan() / PI
}

/// Score of the `down` pattern: the negation of [`score_up`].
pub fn score_down(slope: f64) -> f64 {
    -score_up(slope)
}

/// Score of the `flat` pattern: 1 − |4·tan⁻¹(slope)/π|. Equals 1 at slope 0,
/// 0 at ±45°, −1 at ±90°.
pub fn score_flat(slope: f64) -> f64 {
    1.0 - (4.0 * slope.atan() / PI).abs()
}

/// Score of the `θ = x` pattern (target angle in **degrees**): maximal when
/// the fitted angle equals the target, decaying to −1 at the farthest
/// possible angle.
pub fn score_theta(slope: f64, target_deg: f64) -> f64 {
    let theta = slope.atan();
    let target = target_deg.to_radians().clamp(-FRAC_PI_2, FRAC_PI_2);
    // Largest possible |θ − target| given θ ∈ (−π/2, π/2).
    let worst = FRAC_PI_2 + target.abs();
    1.0 - 2.0 * (theta - target).abs() / worst
}

/// Score of a *sharp* rise (`m = >>` with `up`): the [`score_up`] curve
/// rescaled so the score reaches 0.5 only at `sharp_angle_deg` — monotone in
/// steepness (a steeper rise is always sharper), unlike the peaked θ scorer.
pub fn score_sharp_up(slope: f64, sharp_angle_deg: f64) -> f64 {
    let pivot = sharp_angle_deg.to_radians().tan().max(1e-9);
    score_up(slope / pivot)
}

/// Sharp fall: mirror of [`score_sharp_up`].
pub fn score_sharp_down(slope: f64, sharp_angle_deg: f64) -> f64 {
    -score_sharp_up(slope, sharp_angle_deg)
}

/// CONCAT (⊗): the mean of child scores.
pub fn combine_concat(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        return -1.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

/// AND (⊙): the minimum, "to avoid any pattern not having a good match".
pub fn combine_and(scores: &[f64]) -> f64 {
    scores
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
}

/// OR (⊕): the maximum — "picks the best matching pattern among many".
pub fn combine_or(scores: &[f64]) -> f64 {
    scores
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(-1.0)
}

/// NOT (!): negation.
pub fn combine_not(score: f64) -> f64 {
    -score
}

/// Clamps a value into the score range [−1, 1].
pub fn clamp_score(v: f64) -> f64 {
    v.clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn up_is_monotone_and_bounded() {
        let slopes = [-100.0, -2.0, -0.5, 0.0, 0.5, 2.0, 100.0];
        let mut prev = -1.0;
        for s in slopes {
            let v = score_up(s);
            assert!((-1.0..=1.0).contains(&v));
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(score_up(0.0), 0.0);
        assert!(score_up(1.0) - 0.5 < EPS); // 45° → 0.5
    }

    #[test]
    fn down_mirrors_up() {
        for s in [-3.0, -1.0, 0.0, 0.7, 10.0] {
            assert!((score_down(s) + score_up(s)).abs() < EPS);
        }
    }

    #[test]
    fn flat_peaks_at_zero_slope() {
        assert!((score_flat(0.0) - 1.0).abs() < EPS);
        assert!((score_flat(1.0)).abs() < EPS); // 45° → 0
        assert!(score_flat(1e9) < -0.99); // 90° → −1
        assert!((score_flat(2.0) - score_flat(-2.0)).abs() < EPS); // symmetric
    }

    #[test]
    fn theta_peaks_at_target() {
        let slope45 = 1.0;
        assert!((score_theta(slope45, 45.0) - 1.0).abs() < EPS);
        // Deviation reduces score, symmetric in angle space.
        assert!(score_theta(slope45, 45.0) > score_theta(0.5, 45.0));
        assert!(score_theta(0.0, 0.0) - 1.0 < EPS);
        // Opposite extreme approaches −1.
        assert!(score_theta(-1e9, 90.0) < -0.99);
    }

    #[test]
    fn theta_matches_up_semantics_at_extremes() {
        // A 45° target scored on a flat segment is midway.
        let v = score_theta(0.0, 45.0);
        assert!(v > 0.0 && v < 0.5);
    }

    #[test]
    fn sharp_is_monotone_and_pivots_at_angle() {
        let pivot = 75.0f64.to_radians().tan();
        assert!((score_sharp_up(pivot, 75.0) - 0.5).abs() < EPS);
        // Steeper is always sharper.
        let mut prev = -1.0;
        for s in [0.0, 1.0, pivot, 10.0, 100.0] {
            let v = score_sharp_up(s, 75.0);
            assert!(v >= prev);
            prev = v;
        }
        // Falling slopes score negative for sharp-up, positive for sharp-down.
        assert!(score_sharp_up(-5.0, 75.0) < 0.0);
        assert!(score_sharp_down(-5.0, 75.0) > 0.0);
    }

    #[test]
    fn concat_is_mean() {
        assert!((combine_concat(&[1.0, 0.0, -1.0])).abs() < EPS);
        assert_eq!(combine_concat(&[]), -1.0);
        assert_eq!(combine_concat(&[0.6]), 0.6);
    }

    #[test]
    fn and_is_min_or_is_max() {
        let s = [0.3, -0.2, 0.9];
        assert_eq!(combine_and(&s), -0.2);
        assert_eq!(combine_or(&s), 0.9);
        assert_eq!(combine_not(0.7), -0.7);
    }

    #[test]
    fn boundedness_property_5_1() {
        // The absolute value of an operator's score is bounded between the
        // min and max of its inputs.
        let inputs = [0.8, -0.3, 0.1];
        let lo = -0.3;
        let hi = 0.8;
        for combined in [
            combine_concat(&inputs),
            combine_and(&inputs),
            combine_or(&inputs),
        ] {
            assert!(combined >= lo - EPS && combined <= hi + EPS);
        }
    }

    #[test]
    fn clamp_score_limits() {
        assert_eq!(clamp_score(3.0), 1.0);
        assert_eq!(clamp_score(-2.0), -1.0);
        assert_eq!(clamp_score(0.5), 0.5);
    }

    #[test]
    fn default_params_sane() {
        let p = ScoreParams::default();
        assert!(p.sharp_angle_deg > p.gradual_angle_deg);
        assert_eq!(p.quantifier_threshold, 0.0);
        assert_eq!(p.min_width_frac, 0.0, "width term must default off");
    }

    #[test]
    fn width_penalty_blends_toward_minus_one() {
        // Off by default: untouched regardless of width.
        assert_eq!(width_penalty(0.9, 0.0, 0.0), 0.9);
        // Wide enough: untouched.
        assert_eq!(width_penalty(0.9, 0.3, 0.2), 0.9);
        assert_eq!(width_penalty(0.9, 0.2, 0.2), 0.9);
        // Zero width: fully −1, even for a perfect score.
        assert_eq!(width_penalty(1.0, 0.0, 0.2), -1.0);
        // Halfway: the midpoint of score and −1.
        assert!((width_penalty(1.0, 0.1, 0.2) - 0.0).abs() < EPS);
        // Monotone in width and in score.
        assert!(width_penalty(0.9, 0.05, 0.2) < width_penalty(0.9, 0.15, 0.2));
        assert!(width_penalty(0.2, 0.1, 0.2) < width_penalty(0.9, 0.1, 0.2));
        // A −1 score stays −1 (never *improved* by narrowness).
        assert_eq!(width_penalty(-1.0, 0.05, 0.2), -1.0);
    }
}
