//! Error type for query validation and execution.

use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while validating or executing ShapeQueries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The query references a user-defined pattern that is not registered.
    UnknownUdp(String),
    /// The query is structurally invalid.
    InvalidQuery(String),
    /// An engine construction parameter is invalid (e.g. a shard index
    /// outside the collection's effective partition count).
    Config(String),
    /// An error from the datastore layer.
    Data(shapesearch_datastore::DataError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownUdp(name) => write!(f, "unknown user-defined pattern `{name}`"),
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<shapesearch_datastore::DataError> for CoreError {
    fn from(e: shapesearch_datastore::DataError) -> Self {
        CoreError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::UnknownUdp("x".into()).to_string().contains("x"));
        assert!(CoreError::InvalidQuery("empty".into())
            .to_string()
            .contains("empty"));
        let data: CoreError = shapesearch_datastore::DataError::UnknownColumn("c".into()).into();
        assert!(data.to_string().contains("`c`"));
    }
}
