//! # shapesearch-core
//!
//! The core of ShapeSearch (Siddiqui et al., SIGMOD 2020): the ShapeQuery
//! algebra, perceptually-aware scoring, the fuzzy segmentation algorithms
//! (optimal DP, SegmentTree, greedy), two-stage collective pruning, and the
//! pipelined execution engine.
//!
//! ## Overview
//!
//! * [`ast`] — the ShapeQuery algebra (§3): segments, patterns, modifiers,
//!   CONCAT/AND/OR/OPPOSITE operators.
//! * [`stats`] — summarized statistics and O(1) range regression (§5.3,
//!   Theorem 5.1).
//! * [`score`] — the Table-5 pattern scorers and Table-6 operator
//!   combiners.
//! * [`eval`] — scoring query nodes over visual segments, including
//!   quantifiers, sketches, UDPs, and POSITION references.
//! * [`algo`] — the segmentation algorithms of §6 plus the DTW/Euclidean
//!   baselines of §7.3/§9.
//! * [`engine`] — EXTRACT→GROUP→SEGMENT→SCORE pipeline with §5.4 push-down
//!   optimizations and top-k selection.
//!
//! ## Example
//!
//! ```
//! use shapesearch_core::{ShapeEngine, ShapeQuery};
//! use shapesearch_datastore::Trendline;
//!
//! let peak = Trendline::from_pairs(
//!     "peak",
//!     &[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 2.0), (4.0, 0.0)],
//! );
//! let fall = Trendline::from_pairs(
//!     "fall",
//!     &[(0.0, 4.0), (1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)],
//! );
//! let engine = ShapeEngine::from_trendlines(vec![peak, fall]);
//! let query = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
//! let results = engine.top_k(&query, 1).unwrap();
//! assert_eq!(results[0].key, "peak");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod ast;
pub mod chain;
pub mod columnar;
pub mod engine;
pub mod error;
pub mod eval;
pub mod score;
pub mod snapshot;
pub mod stats;
pub mod udps;

pub use algo::pruning::{
    query_bounds, PruningConfig, PruningCounters, PruningDriver, PruningMode, PruningSnapshot,
    ThresholdCell,
};
pub use algo::{MatchResult, Segmenter, SegmenterKind};
pub use ast::{IteratorSpec, Location, Modifier, Pattern, PosRef, ShapeQuery, ShapeSegment};
pub use columnar::{ArenaBuilder, ColumnarArena};
pub use engine::group::{group_collection, VizData};
pub use engine::observe::{EngineStage, NoopObserver, StageObserver};
pub use engine::shard::{
    merge_shard_outcomes, merge_topk, merge_topk_refs, partition_bounds_by_points, ShardedEngine,
};
pub use engine::{EngineOptions, ShapeEngine, SharedThresholds, TopKResult};
pub use error::{CoreError, Result};
pub use eval::{slope_leaf, Evaluator, PosContext, SlopeLeaf, UdpFn, UdpRegistry};
pub use score::ScoreParams;
pub use snapshot::{Snapshot, SnapshotError, SnapshotPartition, SnapshotStats};
pub use stats::{StatsIndex, SummaryStats};
