//! Evaluation of ShapeQuery nodes over visual segments (paper §5.2).
//!
//! The [`Evaluator`] scores any query node over an inclusive canvas point
//! range `[i, j]` of one visualization:
//!
//! * leaf patterns score via the Table-5 functions on the range's fitted
//!   slope (O(1) through the prefix [`StatsIndex`](crate::stats::StatsIndex));
//! * operators combine child scores per Table 6 (AND = min, OR = max,
//!   NOT = negation); a *nested* CONCAT recursively segments the range with
//!   the optimal DP;
//! * LOCATION y constraints are hard: a violated constraint yields −1
//!   ("When the LOCATION primitives are not satisfied, we assign an overall
//!   score of −1");
//! * MODIFIER quantifiers count pattern occurrences inside the range and
//!   average the strongest `min` of them (§5.2, "Scoring quantifiers");
//! * POSITION (`$`) references compare the range's slope against another
//!   unit's fitted slope — available only after a segmentation exists, so
//!   during the *search* they score neutrally and are re-applied by
//!   [`chain_score_with_positions`].

use crate::ast::{Modifier, Pattern, PosRef, ShapeQuery, ShapeSegment};
use crate::chain::Chain;
use crate::engine::group::VizData;
use crate::score::{
    self, clamp_score, combine_and, combine_not, combine_or, score_down, score_flat, score_theta,
    score_up, ScoreParams,
};
use shapesearch_similarity::{normalized_similarity, resample_linear};
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::Arc;

/// A user-defined pattern scorer: takes the normalized y values of a
/// VisualSegment, returns a score in [−1, 1] (paper §5.2: "user-defined
/// scoring functions must take a VisualSegment as input, and output a score
/// within [−1, 1]").
pub type UdpFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// Registry of user-defined patterns, keyed by name.
#[derive(Default, Clone)]
pub struct UdpRegistry {
    map: HashMap<String, UdpFn>,
}

impl UdpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a UDP under `name`.
    pub fn register(&mut self, name: impl Into<String>, f: UdpFn) {
        self.map.insert(name.into(), f);
    }

    /// Looks up a UDP.
    pub fn get(&self, name: &str) -> Option<&UdpFn> {
        self.map.get(name)
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }
}

impl std::fmt::Debug for UdpRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpRegistry")
            .field("patterns", &self.map.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Slopes of already-placed chain units, used to resolve POSITION refs.
#[derive(Debug, Clone, Copy)]
pub struct PosContext<'a> {
    /// Fitted slope of each unit's assigned range, in chain order.
    pub slopes: &'a [f64],
    /// Index of the unit being scored.
    pub current: usize,
}

/// A query node that reduces to a single slope-scored leaf: a bare
/// segment with one of the Table-5 slope patterns, no modifier, no
/// sketch, and no LOCATION constraints. For such nodes the full
/// [`Evaluator::eval_node`] walk collapses to "fitted slope → score
/// function → width penalty → clamp", which the batched kernels compute
/// for whole runs of candidate windows at once. Derived once per chain
/// unit (see [`slope_leaf`]), never per candidate window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlopeLeaf {
    /// `Pattern::Up` — [`score_up`].
    Up,
    /// `Pattern::Down` — [`score_down`].
    Down,
    /// `Pattern::Flat` — [`score_flat`].
    Flat,
    /// `Pattern::Any` — constant 1.
    Any,
    /// `Pattern::Slope(deg)` — [`score_theta`] against `deg`.
    Slope(f64),
}

/// Classifies a query node as a [`SlopeLeaf`] when its evaluation is a
/// pure function of the window's fitted slope (see the enum docs for the
/// exact conditions). `None` means the node needs the general
/// [`Evaluator::eval_node`] path.
pub fn slope_leaf(q: &ShapeQuery) -> Option<SlopeLeaf> {
    let ShapeQuery::Segment(s) = q else {
        return None;
    };
    if !s.location.is_empty() || s.sketch.is_some() || s.modifier.is_some() {
        return None;
    }
    match s.pattern {
        Some(Pattern::Up) => Some(SlopeLeaf::Up),
        Some(Pattern::Down) => Some(SlopeLeaf::Down),
        Some(Pattern::Flat) => Some(SlopeLeaf::Flat),
        Some(Pattern::Any) => Some(SlopeLeaf::Any),
        Some(Pattern::Slope(deg)) => Some(SlopeLeaf::Slope(deg)),
        _ => None,
    }
}

/// Scores query nodes over ranges of one visualization.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    /// The visualization under evaluation.
    pub viz: &'a VizData,
    /// Scoring parameters.
    pub params: &'a ScoreParams,
    /// User-defined patterns.
    pub udps: &'a UdpRegistry,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for one visualization.
    pub fn new(viz: &'a VizData, params: &'a ScoreParams, udps: &'a UdpRegistry) -> Self {
        Self { viz, params, udps }
    }

    /// Scores an arbitrary query node over inclusive point range `[i, j]`.
    pub fn eval_node(
        &self,
        q: &ShapeQuery,
        i: usize,
        j: usize,
        pos: Option<PosContext<'_>>,
    ) -> f64 {
        debug_assert!(j > i && j < self.viz.n());
        match q {
            ShapeQuery::Segment(s) => self.eval_segment(s, i, j, pos),
            ShapeQuery::And(cs) => combine_and(
                &cs.iter()
                    .map(|c| self.eval_node(c, i, j, pos))
                    .collect::<Vec<_>>(),
            ),
            ShapeQuery::Or(cs) => combine_or(
                &cs.iter()
                    .map(|c| self.eval_node(c, i, j, pos))
                    .collect::<Vec<_>>(),
            ),
            ShapeQuery::Not(c) => combine_not(self.eval_node(c, i, j, pos)),
            ShapeQuery::Concat(_) => {
                // A nested CONCAT segments its assigned range optimally.
                let chains = crate::chain::expand_chains(q);
                let mut best = -1.0f64;
                for chain in &chains {
                    let (score, _) = crate::algo::dp::best_segmentation_in_range(self, chain, i, j);
                    best = best.max(score);
                }
                best
            }
        }
    }

    /// Scores a single ShapeSegment over `[i, j]`.
    pub fn eval_segment(
        &self,
        s: &ShapeSegment,
        i: usize,
        j: usize,
        pos: Option<PosContext<'_>>,
    ) -> f64 {
        // Part 1 (§5.2): LOCATION and hard-constraint checks.
        if !self.location_satisfied(s, i, j) {
            return -1.0;
        }

        // Part 2: pattern / sketch / target-line similarity, accumulated
        // without a component buffer (this runs once per candidate window
        // on the hot path; the sum/count average keeps the single- and
        // two-component results bit-identical to the old Vec path).
        let mut sum = 0.0f64;
        let mut count = 0usize;
        if let Some(p) = &s.pattern {
            sum += self.pattern_score(p, s.modifier, i, j, pos);
            count += 1;
        }
        if let Some(v) = &s.sketch {
            sum += self.sketch_score(v, i, j);
            count += 1;
        }
        if count == 0 {
            if let Some(target) = self.target_line_slope(s, i, j) {
                // Location-only segment with y endpoints: match the implied
                // line segment.
                sum += score_theta(self.viz.slope(i, j), target);
            } else {
                // Location-only constraints already satisfied: wildcard.
                sum += 1.0;
            }
            count += 1;
        }
        let score = sum / count as f64;
        // Optional minimum-segment-width fit term (off by default): a
        // segment too narrow to be perceptual evidence cannot claim a
        // strong score, which blocks the degenerate
        // steep-sliver/flat/steep-sliver CONCAT segmentations.
        let score = score::width_penalty(
            score,
            self.viz.xs()[j] - self.viz.xs()[i],
            self.params.min_width_frac,
        );
        clamp_score(score)
    }

    /// [`Evaluator::eval_node`] specialized to a [`SlopeLeaf`]:
    /// bit-identical to the general walk (same slope bits from the
    /// prefix columns, same score function, same width penalty and
    /// clamp), minus all the dispatch the leaf can't reach.
    #[inline]
    pub fn eval_slope_leaf(&self, leaf: SlopeLeaf, i: usize, j: usize) -> f64 {
        // `0.0 +` replicates the general path's sum/count accumulation
        // bit for bit: IEEE `0.0 + (-0.0)` is `+0.0`, so a raw `-0.0`
        // pattern score must flip sign here exactly as it does there.
        let score = (0.0 + self.apply_slope_leaf(leaf, self.viz.slope(i, j))) / 1.0;
        let score = score::width_penalty(
            score,
            self.viz.xs()[j] - self.viz.xs()[i],
            self.params.min_width_frac,
        );
        clamp_score(score)
    }

    /// Scores `q` over `[i, j]` through the leaf fast path when `leaf`
    /// (its precomputed classification) allows, the general walk
    /// otherwise. The segmenters derive `leaf` once per chain unit.
    #[inline]
    pub fn eval_unit(&self, leaf: Option<SlopeLeaf>, q: &ShapeQuery, i: usize, j: usize) -> f64 {
        match leaf {
            Some(l) => self.eval_slope_leaf(l, i, j),
            None => self.eval_node(q, i, j, None),
        }
    }

    /// Batched leaf evaluation: scores of windows `[s, e]` for every `e`
    /// in `e_lo..=e_hi`, written to `out` (cleared first). One streaming
    /// pass of the window-slope kernel followed by a dispatch-free score
    /// map — the DP inner loop's whole candidate set per call, each
    /// entry bit-identical to `eval_node` over the same window.
    pub fn eval_leaf_run(
        &self,
        leaf: SlopeLeaf,
        s: usize,
        e_lo: usize,
        e_hi: usize,
        out: &mut Vec<f64>,
    ) {
        self.viz
            .arena()
            .window_slopes(self.viz.slot(), s, e_lo, e_hi, out);
        let xs = self.viz.xs();
        let min_width = self.params.min_width_frac;
        for (k, v) in out.iter_mut().enumerate() {
            // `0.0 +` matches the general path's accumulator (see
            // `eval_slope_leaf`): signed zeros must come out identical.
            let score = (0.0 + self.apply_slope_leaf(leaf, *v)) / 1.0;
            let score = score::width_penalty(score, xs[e_lo + k] - xs[s], min_width);
            *v = clamp_score(score);
        }
    }

    /// The Table-5 score function a [`SlopeLeaf`] stands for.
    #[inline]
    fn apply_slope_leaf(&self, leaf: SlopeLeaf, slope: f64) -> f64 {
        match leaf {
            SlopeLeaf::Up => score_up(slope),
            SlopeLeaf::Down => score_down(slope),
            SlopeLeaf::Flat => score_flat(slope),
            SlopeLeaf::Any => 1.0,
            SlopeLeaf::Slope(deg) => score_theta(slope, deg),
        }
    }

    /// Checks the hard LOCATION constraints (x pins verified against the
    /// placement, y endpoints against the fitted line).
    fn location_satisfied(&self, s: &ShapeSegment, i: usize, j: usize) -> bool {
        if let Some(xs) = s.location.x_start {
            if self.viz.x_to_index(xs) != i {
                return false;
            }
        }
        if let Some(xe) = s.location.x_end {
            if self.viz.x_to_index(xe) != j {
                return false;
            }
        }
        if s.location.y_start.is_none() && s.location.y_end.is_none() {
            // No y endpoints: skip the fitted-line computation entirely.
            return true;
        }
        let stats = self.viz.range_stats(i, j);
        let (slope, intercept) = (stats.slope(), stats.intercept());
        let tol = self.params.y_tolerance;
        if let Some(ys) = s.location.y_start {
            let fitted = intercept + slope * self.viz.xs()[i];
            if (fitted - self.viz.norm_y(ys)).abs() > tol {
                return false;
            }
        }
        if let Some(ye) = s.location.y_end {
            let fitted = intercept + slope * self.viz.xs()[j];
            if (fitted - self.viz.norm_y(ye)).abs() > tol {
                return false;
            }
        }
        true
    }

    /// The slope (in degrees) of the line implied by y.s/y.e over the range,
    /// when both are present.
    fn target_line_slope(&self, s: &ShapeSegment, i: usize, j: usize) -> Option<f64> {
        let (ys, ye) = (s.location.y_start?, s.location.y_end?);
        let dx = self.viz.xs()[j] - self.viz.xs()[i];
        if dx <= 0.0 {
            return None;
        }
        let slope = (self.viz.norm_y(ye) - self.viz.norm_y(ys)) / dx;
        Some(slope.atan().to_degrees())
    }

    /// Scores a pattern (with its modifier) over `[i, j]`.
    fn pattern_score(
        &self,
        p: &Pattern,
        modifier: Option<Modifier>,
        i: usize,
        j: usize,
        pos: Option<PosContext<'_>>,
    ) -> f64 {
        if let Some(Modifier::Quantifier { min, max }) = modifier {
            return self.quantifier_score(p, min, max, i, j);
        }
        let slope = self.viz.slope(i, j);
        match p {
            Pattern::Up => match modifier {
                // Sharp is monotone in steepness; gradual peaks at the
                // gradual angle (steeper is no longer "gradual").
                Some(Modifier::MuchMore) => {
                    score::score_sharp_up(slope, self.params.sharp_angle_deg)
                }
                Some(Modifier::More(None)) => score_theta(slope, self.params.gradual_angle_deg),
                _ => score_up(slope),
            },
            Pattern::Down => match modifier {
                Some(Modifier::MuchMore) | Some(Modifier::MuchLess) => {
                    score::score_sharp_down(slope, self.params.sharp_angle_deg)
                }
                Some(Modifier::More(None)) | Some(Modifier::Less(None)) => {
                    score_theta(slope, -self.params.gradual_angle_deg)
                }
                _ => score_down(slope),
            },
            Pattern::Flat => score_flat(slope),
            Pattern::Any => 1.0,
            Pattern::Slope(deg) => score_theta(slope, *deg),
            Pattern::Udp(name) => match self.udps.get(name) {
                Some(f) => clamp_score(f(&self.viz.ys()[i..=j])),
                None => -1.0,
            },
            Pattern::Position(r) => self.position_score(*r, modifier, slope, pos),
            Pattern::Nested(q) => self.eval_node(q, i, j, pos),
        }
    }

    /// Scores a POSITION reference: compares this range's slope against the
    /// referenced unit's slope under the comparison modifier. Neutral (0)
    /// when no placement context exists yet.
    fn position_score(
        &self,
        r: PosRef,
        modifier: Option<Modifier>,
        slope: f64,
        pos: Option<PosContext<'_>>,
    ) -> f64 {
        let Some(ctx) = pos else { return 0.0 };
        let target = match r {
            PosRef::Absolute(k) => k,
            PosRef::Prev => {
                if ctx.current == 0 {
                    return -1.0;
                }
                ctx.current - 1
            }
            PosRef::Next => ctx.current + 1,
        };
        let Some(&ref_slope) = ctx.slopes.get(target) else {
            return -1.0;
        };
        match modifier {
            None | Some(Modifier::Similar) => {
                clamp_score(1.0 - 4.0 * (slope.atan() - ref_slope.atan()).abs() / PI)
            }
            Some(Modifier::More(f)) => {
                clamp_score(2.0 * (slope - f.unwrap_or(1.0) * ref_slope).atan() / PI)
            }
            Some(Modifier::MuchMore) => clamp_score(2.0 * (slope - 2.0 * ref_slope).atan() / PI),
            Some(Modifier::Less(f)) => {
                clamp_score(2.0 * (f.unwrap_or(1.0) * ref_slope - slope).atan() / PI)
            }
            Some(Modifier::MuchLess) => clamp_score(2.0 * (0.5 * ref_slope - slope).atan() / PI),
            Some(Modifier::Quantifier { .. }) => -1.0, // nonsensical combination
        }
    }

    /// Quantifier scoring (§5.2): finds pattern occurrences inside `[i, j]`,
    /// checks the count against the bounds, and averages the strongest
    /// `min` occurrence scores.
    fn quantifier_score(
        &self,
        p: &Pattern,
        min: Option<u32>,
        max: Option<u32>,
        i: usize,
        j: usize,
    ) -> f64 {
        let mut occurrences = self.find_occurrences(p, i, j);
        let count = occurrences.len() as u32;
        if let Some(lo) = min {
            if count < lo {
                return -1.0;
            }
        }
        if let Some(hi) = max {
            if count > hi {
                return -1.0;
            }
        }
        if occurrences.is_empty() {
            // Zero occurrences satisfying an at-most bound: score by how
            // clearly the pattern is absent (strongest interval, negated).
            let mut best = -1.0f64;
            for t in i..j {
                best = best.max(self.leaf_pattern_score(p, t, t + 1));
            }
            return clamp_score(-best);
        }
        // Average the strongest `needed` occurrences, where `needed` is the
        // minimum count that satisfies the constraint.
        occurrences.sort_by(|a, b| b.1.total_cmp(&a.1));
        let needed = min.unwrap_or(count).max(1).min(count) as usize;
        let sum: f64 = occurrences[..needed].iter().map(|o| o.1).sum();
        clamp_score(sum / needed as f64)
    }

    /// Finds disjoint occurrences `(range, score)` of a pattern in `[i, j]`.
    ///
    /// For leaf patterns this merges maximal runs of intervals whose
    /// interval-level pattern score is above the quantifier threshold; for
    /// nested patterns it greedily matches minimal positive windows and
    /// extends them while the score improves.
    fn find_occurrences(&self, p: &Pattern, i: usize, j: usize) -> Vec<((usize, usize), f64)> {
        let thr = self.params.quantifier_threshold;
        match p {
            Pattern::Nested(q) => {
                let mut out = Vec::new();
                let mut s = i;
                while s < j {
                    let mut matched = None;
                    for e in (s + 1)..=j {
                        let sc = self.eval_node(q, s, e, None);
                        if sc > thr {
                            // Extend while the score keeps improving.
                            let mut best_e = e;
                            let mut best_sc = sc;
                            for e2 in (e + 1)..=j {
                                let sc2 = self.eval_node(q, s, e2, None);
                                if sc2 >= best_sc {
                                    best_e = e2;
                                    best_sc = sc2;
                                } else {
                                    break;
                                }
                            }
                            matched = Some((best_e, best_sc));
                            break;
                        }
                    }
                    match matched {
                        Some((e, sc)) => {
                            out.push(((s, e), sc));
                            s = e;
                        }
                        None => s += 1,
                    }
                }
                out
            }
            _ => {
                // Maximal runs of positive interval-level scores; the
                // per-interval scores come from one batched kernel pass.
                let mut scores = Vec::new();
                self.interval_leaf_scores(p, i, j, &mut scores);
                let mut out = Vec::new();
                let mut run_start: Option<usize> = None;
                for t in i..j {
                    let sc = scores[t - i];
                    if sc > thr {
                        run_start.get_or_insert(t);
                    } else if let Some(rs) = run_start.take() {
                        let merged = self.leaf_pattern_score(p, rs, t);
                        if merged > thr {
                            out.push(((rs, t), merged));
                        }
                    }
                }
                if let Some(rs) = run_start {
                    let merged = self.leaf_pattern_score(p, rs, j);
                    if merged > thr {
                        out.push(((rs, j), merged));
                    }
                }
                out
            }
        }
    }

    /// Modifier-free pattern score over a range (quantifier helper).
    fn leaf_pattern_score(&self, p: &Pattern, i: usize, j: usize) -> f64 {
        let slope = self.viz.slope(i, j);
        match p {
            Pattern::Up => score_up(slope),
            Pattern::Down => score_down(slope),
            Pattern::Flat => score_flat(slope),
            Pattern::Any => 1.0,
            Pattern::Slope(deg) => score_theta(slope, *deg),
            Pattern::Udp(name) => self
                .udps
                .get(name)
                .map_or(-1.0, |f| clamp_score(f(&self.viz.ys()[i..=j]))),
            Pattern::Position(_) => 0.0,
            Pattern::Nested(q) => self.eval_node(q, i, j, None),
        }
    }

    /// [`Self::leaf_pattern_score`] over every adjacent interval
    /// `[t, t+1]`, `t` in `i..j`, written to `out` (cleared first) —
    /// slope-mapped patterns go through the batched interval kernel,
    /// everything else falls back to per-interval calls.
    fn interval_leaf_scores(&self, p: &Pattern, i: usize, j: usize, out: &mut Vec<f64>) {
        match p {
            Pattern::Up | Pattern::Down | Pattern::Flat | Pattern::Any | Pattern::Slope(_) => {
                self.viz
                    .arena()
                    .interval_slopes_in(self.viz.slot(), i, j, out);
                for v in out.iter_mut() {
                    *v = match p {
                        Pattern::Up => score_up(*v),
                        Pattern::Down => score_down(*v),
                        Pattern::Flat => score_flat(*v),
                        Pattern::Any => 1.0,
                        Pattern::Slope(deg) => score_theta(*v, *deg),
                        _ => unreachable!("matched slope patterns only"),
                    };
                }
            }
            _ => {
                out.clear();
                out.extend((i..j).map(|t| self.leaf_pattern_score(p, t, t + 1)));
            }
        }
    }

    /// Precise sketch matching over `[i, j]`: the sketch's y values (raw
    /// domain) are normalized, resampled to the range length, and compared
    /// by L2 distance, normalized into [−1, 1] (§5.2).
    fn sketch_score(&self, sketch: &[(f64, f64)], i: usize, j: usize) -> f64 {
        if sketch.len() < 2 {
            return -1.0;
        }
        let target: Vec<f64> = sketch.iter().map(|&(_, y)| self.viz.norm_y(y)).collect();
        let window = &self.viz.ys()[i..=j];
        let resampled = resample_linear(&target, window.len());
        let dist = shapesearch_similarity::euclidean(&resampled, window);
        let scale = self.params.sketch_distance_scale * (window.len() as f64).sqrt();
        normalized_similarity(dist, scale)
    }
}

/// Final score of a chain under a concrete segmentation, re-resolving any
/// POSITION references against the placed units' slopes.
pub fn chain_score_with_positions(
    ev: &Evaluator<'_>,
    chain: &Chain,
    ranges: &[(usize, usize)],
) -> f64 {
    debug_assert_eq!(chain.len(), ranges.len());
    let slopes: Vec<f64> = ranges.iter().map(|&(i, j)| ev.viz.slope(i, j)).collect();
    let mut total = 0.0;
    for (idx, (unit, &(i, j))) in chain.units.iter().zip(ranges).enumerate() {
        let ctx = PosContext {
            slopes: &slopes,
            current: idx,
        };
        total += unit.weight * ev.eval_node(&unit.query, i, j, Some(ctx));
    }
    clamp_score(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Location;
    use shapesearch_datastore::Trendline;

    fn viz(pairs: &[(f64, f64)]) -> VizData {
        VizData::from_trendline(&Trendline::from_pairs("t", pairs), 0, 1).unwrap()
    }

    fn rising() -> VizData {
        viz(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)])
    }

    fn peak() -> VizData {
        viz(&[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 2.0), (4.0, 0.0)])
    }

    struct Ctx {
        params: ScoreParams,
        udps: UdpRegistry,
    }

    impl Ctx {
        fn new() -> Self {
            Self {
                params: ScoreParams::default(),
                udps: UdpRegistry::new(),
            }
        }
        fn ev<'a>(&'a self, v: &'a VizData) -> Evaluator<'a> {
            Evaluator::new(v, &self.params, &self.udps)
        }
    }

    #[test]
    fn up_matches_rising_viz() {
        let c = Ctx::new();
        let v = rising();
        let ev = c.ev(&v);
        let s = ev.eval_node(&ShapeQuery::up(), 0, 4, None);
        assert!(s > 0.4, "score {s}");
        let d = ev.eval_node(&ShapeQuery::down(), 0, 4, None);
        assert!(d < -0.4);
    }

    #[test]
    fn or_takes_best_and_takes_worst() {
        let c = Ctx::new();
        let v = rising();
        let ev = c.ev(&v);
        let or = ShapeQuery::Or(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let and = ShapeQuery::And(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let up = ev.eval_node(&ShapeQuery::up(), 0, 4, None);
        assert_eq!(ev.eval_node(&or, 0, 4, None), up);
        assert_eq!(ev.eval_node(&and, 0, 4, None), -up);
        let not = ShapeQuery::Not(Box::new(ShapeQuery::down()));
        assert_eq!(ev.eval_node(&not, 0, 4, None), up);
    }

    #[test]
    fn nested_concat_segments_the_range() {
        let c = Ctx::new();
        let v = peak();
        let ev = c.ev(&v);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()]);
        let s = ev.eval_node(&q, 0, 4, None);
        assert!(s > 0.5, "peak should match up⊗down strongly, got {s}");
    }

    #[test]
    fn y_constraints_are_hard() {
        let c = Ctx::new();
        let v = rising(); // raw y from 0 to 4
        let ev = c.ev(&v);
        let ok = ShapeSegment {
            location: Location {
                y_start: Some(0.0),
                y_end: Some(4.0),
                ..Location::default()
            },
            pattern: Some(Pattern::Up),
            ..ShapeSegment::default()
        };
        assert!(ev.eval_segment(&ok, 0, 4, None) > 0.0);
        let bad = ShapeSegment {
            location: Location {
                y_start: Some(4.0), // claims it starts high — it doesn't
                ..Location::default()
            },
            pattern: Some(Pattern::Up),
            ..ShapeSegment::default()
        };
        assert_eq!(ev.eval_segment(&bad, 0, 4, None), -1.0);
    }

    #[test]
    fn location_only_segment_with_y_matches_line() {
        let c = Ctx::new();
        let v = rising();
        let ev = c.ev(&v);
        let line = ShapeSegment {
            location: Location {
                y_start: Some(0.0),
                y_end: Some(4.0),
                ..Location::default()
            },
            ..ShapeSegment::default()
        };
        let s = ev.eval_segment(&line, 0, 4, None);
        assert!(s > 0.9, "exact line match should be ~1, got {s}");
    }

    #[test]
    fn x_pin_mismatch_scores_minus_one() {
        let c = Ctx::new();
        let v = rising();
        let ev = c.ev(&v);
        let seg = ShapeSegment::pinned(Pattern::Up, 0.0, 2.0);
        assert!(ev.eval_segment(&seg, 0, 2, None) > 0.0);
        assert_eq!(ev.eval_segment(&seg, 0, 4, None), -1.0);
    }

    #[test]
    fn sharp_vs_gradual_modifiers() {
        let c = Ctx::new();
        // Steep rise: y goes 0..100 over x 0..4 on canvas = slope after
        // normalization is 1 over the whole range; sub-range [0,1] is x=0.25
        // wide and y spans 0.9 of the range -> steep.
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 90.0),
            (2.0, 92.0),
            (3.0, 95.0),
            (4.0, 100.0),
        ]);
        let ev = c.ev(&v);
        let sharp = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::MuchMore);
        let s_steep = ev.eval_segment(&sharp, 0, 1, None);
        let s_shallow = ev.eval_segment(&sharp, 1, 3, None);
        assert!(s_steep > s_shallow, "{s_steep} vs {s_shallow}");
        let gradual = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::More(None));
        let g_shallow = ev.eval_segment(&gradual, 1, 4, None);
        let g_steep = ev.eval_segment(&gradual, 0, 1, None);
        assert!(g_shallow > g_steep, "{g_shallow} vs {g_steep}");
    }

    #[test]
    fn quantifier_counts_two_peaks() {
        let c = Ctx::new();
        // Two clear peaks.
        let v = viz(&[(0.0, 0.0), (1.0, 5.0), (2.0, 0.5), (3.0, 5.5), (4.0, 0.0)]);
        let ev = c.ev(&v);
        let two_ups = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::exactly(2));
        let s = ev.eval_segment(&two_ups, 0, 4, None);
        assert!(s > 0.5, "two rises should satisfy m=2, got {s}");
        let three_ups = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::exactly(3));
        assert_eq!(ev.eval_segment(&three_ups, 0, 4, None), -1.0);
        let at_most_2_downs =
            ShapeSegment::pattern(Pattern::Down).with_modifier(Modifier::at_most(2));
        assert!(ev.eval_segment(&at_most_2_downs, 0, 4, None) > 0.0);
    }

    #[test]
    fn quantifier_zero_occurrences_at_most() {
        let c = Ctx::new();
        let v = rising();
        let ev = c.ev(&v);
        // "falls at most once" on a monotone rise: zero falls, satisfied,
        // and clearly so.
        let seg = ShapeSegment::pattern(Pattern::Down).with_modifier(Modifier::at_most(1));
        let s = ev.eval_segment(&seg, 0, 4, None);
        assert!(s > 0.0, "satisfied at-most with zero occurrences: {s}");
        // "rises at least once" must fail on a monotone fall.
        let v2 = viz(&[(0.0, 4.0), (1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0)]);
        let ev2 = c.ev(&v2);
        let seg2 = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::at_least(1));
        assert_eq!(ev2.eval_segment(&seg2, 0, 4, None), -1.0);
    }

    #[test]
    fn nested_quantifier_counts_peaks() {
        let c = Ctx::new();
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 5.0),
            (2.0, 0.5),
            (3.0, 5.5),
            (4.0, 0.2),
            (5.0, 4.8),
            (6.0, 0.0),
        ]);
        let ev = c.ev(&v);
        let peak = Pattern::Nested(Box::new(ShapeQuery::concat(vec![
            ShapeQuery::up(),
            ShapeQuery::down(),
        ])));
        let seg = ShapeSegment::pattern(peak.clone()).with_modifier(Modifier::at_least(2));
        let s = ev.eval_segment(&seg, 0, 6, None);
        assert!(s > 0.3, "three peaks satisfy at-least-2, got {s}");
        let seg4 = ShapeSegment::pattern(peak).with_modifier(Modifier::at_least(4));
        assert_eq!(ev.eval_segment(&seg4, 0, 6, None), -1.0);
    }

    #[test]
    fn udp_lookup_and_missing() {
        let mut c = Ctx::new();
        c.udps
            .register("always_half", Arc::new(|_ys: &[f64]| 0.5) as UdpFn);
        let v = rising();
        let ev = c.ev(&v);
        let good = ShapeSegment::pattern(Pattern::Udp("always_half".into()));
        assert_eq!(ev.eval_segment(&good, 0, 4, None), 0.5);
        let missing = ShapeSegment::pattern(Pattern::Udp("nope".into()));
        assert_eq!(ev.eval_segment(&missing, 0, 4, None), -1.0);
    }

    #[test]
    fn sketch_scores_similarity() {
        let c = Ctx::new();
        let v = peak();
        let ev = c.ev(&v);
        let match_sketch = ShapeSegment {
            sketch: Some(vec![
                (0.0, 0.0),
                (1.0, 2.0),
                (2.0, 4.0),
                (3.0, 2.0),
                (4.0, 0.0),
            ]),
            ..ShapeSegment::default()
        };
        let anti_sketch = ShapeSegment {
            sketch: Some(vec![
                (0.0, 4.0),
                (1.0, 2.0),
                (2.0, 0.0),
                (3.0, 2.0),
                (4.0, 4.0),
            ]),
            ..ShapeSegment::default()
        };
        let s_match = ev.eval_segment(&match_sketch, 0, 4, None);
        let s_anti = ev.eval_segment(&anti_sketch, 0, 4, None);
        assert!(s_match > 0.9, "exact sketch should score ~1, got {s_match}");
        assert!(s_anti < s_match);
    }

    #[test]
    fn position_refs_need_context() {
        let c = Ctx::new();
        let v = rising();
        let ev = c.ev(&v);
        let seg = ShapeSegment::pattern(Pattern::Position(PosRef::Absolute(0)))
            .with_modifier(Modifier::Less(None));
        // No context: neutral.
        assert_eq!(ev.eval_segment(&seg, 0, 2, None), 0.0);
        // With context: slope(2..4)=1 vs referenced slope 3 ⇒ "less" holds.
        let slopes = vec![3.0, 1.0];
        let ctx = PosContext {
            slopes: &slopes,
            current: 1,
        };
        let s = ev.eval_segment(&seg, 2, 4, Some(ctx));
        assert!(s > 0.5, "slope 1 < 3 should satisfy <, got {s}");
        // More should fail.
        let seg_more = ShapeSegment::pattern(Pattern::Position(PosRef::Absolute(0)))
            .with_modifier(Modifier::More(None));
        assert!(ev.eval_segment(&seg_more, 2, 4, Some(ctx)) < 0.0);
    }

    #[test]
    fn chain_score_with_positions_resolves_refs() {
        let c = Ctx::new();
        // Steep rise then gentle rise.
        let v = viz(&[
            (0.0, 0.0),
            (1.0, 80.0),
            (2.0, 85.0),
            (3.0, 90.0),
            (4.0, 95.0),
        ]);
        let ev = c.ev(&v);
        let q = ShapeQuery::concat(vec![
            ShapeQuery::up(),
            ShapeQuery::Segment(
                ShapeSegment::pattern(Pattern::Position(PosRef::Absolute(0)))
                    .with_modifier(Modifier::Less(None)),
            ),
        ]);
        let chains = crate::chain::expand_chains(&q);
        let score = chain_score_with_positions(&ev, &chains[0], &[(0, 1), (1, 4)]);
        assert!(score > 0.5, "slowing rise matches [up][$0,<]: {score}");
    }

    #[test]
    fn any_pattern_is_always_one() {
        let c = Ctx::new();
        let v = peak();
        let ev = c.ev(&v);
        assert_eq!(
            ev.eval_segment(&ShapeSegment::pattern(Pattern::Any), 0, 4, None),
            1.0
        );
        // A bare segment (no primitives) is a wildcard too.
        assert_eq!(ev.eval_segment(&ShapeSegment::default(), 0, 4, None), 1.0);
    }
}
