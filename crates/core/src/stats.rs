//! Summarized statistics and O(1) range regression (paper §5.3, Theorem 5.1).
//!
//! GROUP "passes only five numbers, called summarized statistics, for each
//! line segment, namely Σxᵢ, Σyᵢ, Σxᵢyᵢ, Σxᵢ², n". These are additive
//! (Theorem 5.1): the least-squares line over the union of two adjacent
//! VisualSegments is computed exactly from the sums of their statistics.
//!
//! [`StatsIndex`] stores prefix sums over a trendline's points so any
//! contiguous point range's statistics — and hence its fitted slope and
//! intercept — are available in O(1), which is what makes the DP and
//! SegmentTree algorithms fast.

/// The five summarized statistics of a set of points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SummaryStats {
    /// Σ xᵢ
    pub sx: f64,
    /// Σ yᵢ
    pub sy: f64,
    /// Σ xᵢ·yᵢ
    pub sxy: f64,
    /// Σ xᵢ²
    pub sxx: f64,
    /// Number of points.
    pub n: u32,
}

impl SummaryStats {
    /// Statistics of a single point.
    pub fn point(x: f64, y: f64) -> Self {
        Self {
            sx: x,
            sy: y,
            sxy: x * y,
            sxx: x * x,
            n: 1,
        }
    }

    /// Statistics of a point set.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        points.iter().fold(Self::default(), |acc, &(x, y)| {
            acc.merge(&Self::point(x, y))
        })
    }

    /// Additive merge (Theorem 5.1): statistics of the disjoint union of two
    /// point sets.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            sx: self.sx + other.sx,
            sy: self.sy + other.sy,
            sxy: self.sxy + other.sxy,
            sxx: self.sxx + other.sxx,
            n: self.n + other.n,
        }
    }

    /// Least-squares slope θ = (n·Σxy − Σx·Σy) / (n·Σx² − (Σx)²).
    ///
    /// Returns 0 for degenerate ranges (fewer than 2 points or zero x
    /// variance) — a single point renders as a flat mark.
    pub fn slope(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let denom = n * self.sxx - self.sx * self.sx;
        if denom.abs() < 1e-12 {
            return 0.0;
        }
        (n * self.sxy - self.sx * self.sy) / denom
    }

    /// Least-squares intercept δ = (Σy − θ·Σx) / n.
    pub fn intercept(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (self.sy - self.slope() * self.sx) / self.n as f64
    }

    /// Mean x of the range.
    pub fn mean_x(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sx / self.n as f64
        }
    }

    /// Mean y of the range.
    pub fn mean_y(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sy / self.n as f64
        }
    }
}

/// Prefix-sum index over a trendline's points: O(1) statistics, slope, and
/// fitted line for any contiguous point range.
#[derive(Debug, Clone)]
pub struct StatsIndex {
    /// prefix[i] = statistics over points [0, i).
    prefix: Vec<SummaryStats>,
}

impl StatsIndex {
    /// Builds the index from (x, y) points.
    pub fn new(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs and ys must align");
        let mut prefix = Vec::with_capacity(xs.len() + 1);
        prefix.push(SummaryStats::default());
        let mut acc = SummaryStats::default();
        for (&x, &y) in xs.iter().zip(ys) {
            acc = acc.merge(&SummaryStats::point(x, y));
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics over the inclusive point range `[i, j]`.
    ///
    /// # Panics
    /// Panics when `j < i` or `j` is out of bounds (debug builds index-check).
    pub fn range(&self, i: usize, j: usize) -> SummaryStats {
        debug_assert!(i <= j, "range [{i}, {j}] is inverted");
        let hi = &self.prefix[j + 1];
        let lo = &self.prefix[i];
        SummaryStats {
            sx: hi.sx - lo.sx,
            sy: hi.sy - lo.sy,
            sxy: hi.sxy - lo.sxy,
            sxx: hi.sxx - lo.sxx,
            n: hi.n - lo.n,
        }
    }

    /// Fitted slope over the inclusive point range `[i, j]`.
    pub fn slope(&self, i: usize, j: usize) -> f64 {
        self.range(i, j).slope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_stats() {
        let s = SummaryStats::point(2.0, 3.0);
        assert_eq!(s.sx, 2.0);
        assert_eq!(s.sy, 3.0);
        assert_eq!(s.sxy, 6.0);
        assert_eq!(s.sxx, 4.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn slope_of_perfect_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        let s = SummaryStats::from_points(&pts);
        assert!((s.slope() - 2.0).abs() < 1e-12);
        assert!((s.intercept() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_from_points_on_union() {
        let a: Vec<(f64, f64)> = vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)];
        let b: Vec<(f64, f64)> = vec![(3.0, 5.0), (4.0, 4.0)];
        let merged = SummaryStats::from_points(&a).merge(&SummaryStats::from_points(&b));
        let all: Vec<(f64, f64)> = a.into_iter().chain(b).collect();
        let direct = SummaryStats::from_points(&all);
        assert!((merged.slope() - direct.slope()).abs() < 1e-12);
        assert!((merged.intercept() - direct.intercept()).abs() < 1e-12);
        assert_eq!(merged.n, direct.n);
    }

    #[test]
    fn degenerate_slopes_are_zero() {
        assert_eq!(SummaryStats::default().slope(), 0.0);
        assert_eq!(SummaryStats::point(1.0, 5.0).slope(), 0.0);
        // Two points with the same x: vertical, reported as 0 (degenerate).
        let s = SummaryStats::from_points(&[(1.0, 0.0), (1.0, 5.0)]);
        assert_eq!(s.slope(), 0.0);
    }

    #[test]
    fn index_matches_direct_computation() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x * 0.1 - x).collect();
        let idx = StatsIndex::new(&xs, &ys);
        for i in 0..xs.len() {
            for j in i..xs.len() {
                let pts: Vec<(f64, f64)> = (i..=j).map(|t| (xs[t], ys[t])).collect();
                let direct = SummaryStats::from_points(&pts);
                let ranged = idx.range(i, j);
                assert!((direct.slope() - ranged.slope()).abs() < 1e-9);
                assert_eq!(direct.n, ranged.n);
            }
        }
    }

    #[test]
    fn index_len() {
        let idx = StatsIndex::new(&[0.0, 1.0, 2.0], &[5.0, 6.0, 7.0]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert!((idx.slope(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn means() {
        let s = SummaryStats::from_points(&[(0.0, 2.0), (2.0, 4.0)]);
        assert_eq!(s.mean_x(), 1.0);
        assert_eq!(s.mean_y(), 3.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_inputs_panic() {
        StatsIndex::new(&[0.0], &[]);
    }
}
