//! Built-in mathematical user-defined patterns.
//!
//! The paper's user study (§7.2, "How can ShapeSearch be improved?") found
//! that "a large number of participants wanted ShapeSearch to support more
//! mathematical patterns by default like concave, convex, exponential, or
//! statistical measures such as entropy". This module provides those as
//! ready-made UDPs, registered under the names
//! `concave`, `convex`, `exponential`, `logarithmic`, `entropy_high`,
//! `entropy_low`, `v_shape`, and `spike` (use them in queries as
//! `p=udp:concave` etc., or via [`UdpRegistry::with_builtins`]).
//!
//! Every scorer takes the normalized y values of a VisualSegment and returns
//! a score in [−1, 1], per §5.2's UDP contract.

use crate::eval::{UdpFn, UdpRegistry};
use crate::stats::SummaryStats;
use std::sync::Arc;

impl UdpRegistry {
    /// A registry pre-loaded with all built-in mathematical patterns.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        register_builtins(&mut reg);
        reg
    }
}

/// Registers every built-in pattern into an existing registry.
pub fn register_builtins(reg: &mut UdpRegistry) {
    reg.register("concave", Arc::new(score_concave) as UdpFn);
    reg.register("convex", Arc::new(score_convex) as UdpFn);
    reg.register("exponential", Arc::new(score_exponential) as UdpFn);
    reg.register("logarithmic", Arc::new(score_logarithmic) as UdpFn);
    reg.register("entropy_high", Arc::new(score_entropy_high) as UdpFn);
    reg.register(
        "entropy_low",
        Arc::new(|ys: &[f64]| -score_entropy_high(ys)) as UdpFn,
    );
    reg.register("v_shape", Arc::new(score_v_shape) as UdpFn);
    reg.register("spike", Arc::new(score_spike) as UdpFn);
}

/// Fits the second difference trend: positive curvature = convex (opening
/// upward), negative = concave. Returns the mean sign-consistency of the
/// discrete second derivative, weighted by magnitude.
fn curvature(ys: &[f64]) -> f64 {
    if ys.len() < 3 {
        return 0.0;
    }
    // Regress the first differences against the index: a positive slope of
    // the derivative means convex.
    let diffs: Vec<(f64, f64)> = ys
        .windows(2)
        .enumerate()
        .map(|(i, w)| (i as f64 / (ys.len() - 1) as f64, w[1] - w[0]))
        .collect();
    let slope = SummaryStats::from_points(&diffs).slope();
    // Map the derivative slope through the same perceptual atan transform.
    2.0 * (slope * (ys.len() as f64)).atan() / std::f64::consts::PI
}

/// Concave (∩-shaped curvature): score > 0 when the slope decreases.
pub fn score_concave(ys: &[f64]) -> f64 {
    -curvature(ys)
}

/// Convex (∪-shaped curvature): score > 0 when the slope increases.
pub fn score_convex(ys: &[f64]) -> f64 {
    curvature(ys)
}

/// Exponential growth: the series fits `a·e^{bx}` with b > 0 better than a
/// straight line. Measured as convexity restricted to rising series.
pub fn score_exponential(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 3 {
        return -1.0;
    }
    let rising = ys[n - 1] > ys[0];
    if !rising {
        return -1.0;
    }
    score_convex(ys).clamp(-1.0, 1.0)
}

/// Logarithmic growth: rising but with diminishing increments.
pub fn score_logarithmic(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 3 {
        return -1.0;
    }
    if ys[n - 1] <= ys[0] {
        return -1.0;
    }
    score_concave(ys).clamp(-1.0, 1.0)
}

/// High sample entropy of the (binned) increments: noisy / erratic series
/// score near 1, smooth monotone series near −1.
pub fn score_entropy_high(ys: &[f64]) -> f64 {
    if ys.len() < 3 {
        return -1.0;
    }
    // Histogram the signs/magnitudes of increments into 5 buckets and
    // compute normalized Shannon entropy.
    let diffs: Vec<f64> = ys.windows(2).map(|w| w[1] - w[0]).collect();
    let max = diffs.iter().map(|d| d.abs()).fold(0.0, f64::max);
    if max == 0.0 {
        return -1.0; // perfectly constant: zero entropy
    }
    let mut buckets = [0usize; 5];
    for d in &diffs {
        let t = (d / max + 1.0) / 2.0; // [0, 1]
        let idx = ((t * 5.0) as usize).min(4);
        buckets[idx] += 1;
    }
    let n = diffs.len() as f64;
    let entropy: f64 = buckets
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    let max_entropy = 5f64.ln();
    (2.0 * entropy / max_entropy - 1.0).clamp(-1.0, 1.0)
}

/// A V shape: falls to a minimum near the middle then recovers.
pub fn score_v_shape(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 3 {
        return -1.0;
    }
    let (min_idx, _) =
        ys.iter().enumerate().fold(
            (0, f64::INFINITY),
            |(bi, bv), (i, &v)| {
                if v < bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            },
        );
    let centered = 1.0 - 2.0 * ((min_idx as f64 / (n - 1) as f64) - 0.5).abs() * 2.0;
    let left = SummaryStats::from_points(
        &ys[..=min_idx.max(1)]
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 / (n - 1) as f64, y))
            .collect::<Vec<_>>(),
    )
    .slope();
    let right = SummaryStats::from_points(
        &ys[min_idx.min(n - 2)..]
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 / (n - 1) as f64, y))
            .collect::<Vec<_>>(),
    )
    .slope();
    let fall = (2.0 * (-left).atan() / std::f64::consts::PI).max(-1.0);
    let rise = (2.0 * right.atan() / std::f64::consts::PI).max(-1.0);
    ((fall + rise) / 2.0 * centered.max(0.1)).clamp(-1.0, 1.0)
}

/// A narrow spike: the peak value is far above the typical level and the
/// high region is narrow.
pub fn score_spike(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 4 {
        return -1.0;
    }
    let mut sorted = ys.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[n / 2];
    let max = sorted[n - 1];
    let range = (sorted[n - 1] - sorted[0]).max(1e-12);
    let prominence = (max - median) / range; // 0..1
    let wide = ys
        .iter()
        .filter(|&&y| y > median + 0.5 * (max - median))
        .count() as f64
        / n as f64;
    (2.0 * prominence * (1.0 - wide) * 2.0 - 1.0).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| f(i as f64 / (n - 1) as f64)).collect()
    }

    #[test]
    fn concave_vs_convex() {
        let concave = series(|t| -(t - 0.5).powi(2), 32); // ∩
        let convex = series(|t| (t - 0.5).powi(2), 32); // ∪
        assert!(score_concave(&concave) > 0.5, "{}", score_concave(&concave));
        assert!(score_concave(&convex) < -0.5);
        assert!(score_convex(&convex) > 0.5);
        assert!(score_convex(&concave) < -0.5);
        let line = series(|t| t, 32);
        assert!(score_concave(&line).abs() < 0.2);
    }

    #[test]
    fn exponential_and_logarithmic() {
        let exp = series(|t| (4.0 * t).exp(), 32);
        let log = series(|t| (1.0 + 20.0 * t).ln(), 32);
        assert!(score_exponential(&exp) > 0.5, "{}", score_exponential(&exp));
        assert!(score_exponential(&log) < 0.0);
        assert!(score_logarithmic(&log) > 0.5, "{}", score_logarithmic(&log));
        assert!(score_logarithmic(&exp) < 0.0);
        // Falling series are neither.
        let fall = series(|t| -t, 32);
        assert_eq!(score_exponential(&fall), -1.0);
        assert_eq!(score_logarithmic(&fall), -1.0);
    }

    #[test]
    fn entropy_separates_noise_from_trend() {
        let smooth = series(|t| t, 64);
        // A deterministic pseudo-noise series.
        let noisy: Vec<f64> = (0..64)
            .map(|i| ((i * 2654435761u64 as usize) % 97) as f64)
            .collect();
        assert!(score_entropy_high(&noisy) > score_entropy_high(&smooth));
        assert!(score_entropy_high(&smooth) < 0.0);
        assert_eq!(score_entropy_high(&[5.0, 5.0, 5.0, 5.0]), -1.0);
    }

    #[test]
    fn v_shape_detection() {
        let v = series(|t| (t - 0.5).abs(), 33);
        let rise = series(|t| t, 33);
        assert!(score_v_shape(&v) > 0.4, "{}", score_v_shape(&v));
        assert!(score_v_shape(&v) > score_v_shape(&rise));
    }

    #[test]
    fn spike_detection() {
        let mut flat = vec![0.0; 40];
        flat[20] = 10.0;
        flat[21] = 8.0;
        assert!(score_spike(&flat) > 0.5, "{}", score_spike(&flat));
        let ramp = series(|t| t, 40);
        assert!(score_spike(&flat) > score_spike(&ramp));
    }

    #[test]
    fn builtins_registered() {
        let reg = UdpRegistry::with_builtins();
        for name in [
            "concave",
            "convex",
            "exponential",
            "logarithmic",
            "entropy_high",
            "entropy_low",
            "v_shape",
            "spike",
        ] {
            assert!(reg.contains(name), "{name} missing");
        }
    }

    #[test]
    fn degenerate_inputs() {
        for f in [
            score_concave as fn(&[f64]) -> f64,
            score_convex,
            score_v_shape,
            score_spike,
            score_entropy_high,
        ] {
            let s = f(&[1.0, 2.0]);
            assert!((-1.0..=1.0).contains(&s));
        }
    }
}
