//! Sharded execution: one trendline collection partitioned into N
//! independent engine shards, queried with a fan-out / merge step.
//!
//! The paper's §5 executor scores every candidate visualization
//! independently before the top-k selection, which makes the collection
//! embarrassingly partitionable: a [`ShardedEngine`] splits the
//! trendlines at build time into size-balanced contiguous shards (each a
//! plain [`ShapeEngine`] carrying its partition offset so reported
//! `viz_index`es stay collection-global), runs each shard's
//! GROUP→SEGMENT→SCORE pass independently, and merges the per-shard
//! top-k partials under the engine's deterministic order (score
//! descending, then the lower global index — the same contract the
//! unsharded heap uses), so results are **byte-identical to an unsharded
//! run for every shard count**, including tie ordering and fitted
//! `ranges`.
//!
//! Shards are held behind `Arc` so an embedder (e.g. the server's
//! dataset catalog) can hand individual shard tasks to its own worker
//! pool and merge with [`merge_topk`]; [`ShardedEngine::top_k_batch`]
//! does the same fan-out in-process with scoped threads when parallelism
//! is on (or the collection crosses
//! [`EngineOptions::parallel_threshold`]).

use super::{EngineOptions, ShapeEngine, SharedThresholds, TopKResult};
use crate::error::Result;
use crate::eval::UdpFn;
use crate::ShapeQuery;
use shapesearch_datastore::{extract, ExtractOptions, Table, Trendline, VisualSpec};
use std::sync::Arc;

/// A trendline collection partitioned into N independently queryable
/// engine shards with a deterministic top-k merge.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Arc<ShapeEngine>>,
    options: EngineOptions,
    trendline_count: usize,
    point_count: usize,
}

impl ShardedEngine {
    /// Builds a sharded engine by running EXTRACT over a table, then
    /// partitioning the trendlines into (at most) `shard_count` shards.
    ///
    /// # Errors
    /// Propagates extraction errors (unknown columns, non-numeric axes).
    pub fn new(table: &Table, spec: &VisualSpec, shard_count: usize) -> Result<Self> {
        let trendlines = extract(table, spec, &ExtractOptions::default())?;
        Ok(Self::from_trendlines(trendlines, shard_count))
    }

    /// Builds an engine over **one partition** of the collection: runs
    /// EXTRACT, computes the same deterministic partition bounds a full
    /// `shard_count`-way [`Self::new`] would, and keeps only shard
    /// `index` (with its global `base_index` preserved). This is the
    /// shard-server constructor for multi-machine sharding: a process
    /// that loads the same source with the same visual spec and the same
    /// `shard_count` owns byte-identically the partition a single-process
    /// run would have given that shard, so its top-k partials merge with
    /// the others under [`merge_topk`] exactly like local partials.
    ///
    /// # Errors
    /// Propagates extraction errors, and rejects `index`es at or beyond
    /// the *effective* shard count (the requested count is capped by the
    /// collection size, exactly as in [`Self::new`]).
    pub fn shard_of(
        table: &Table,
        spec: &VisualSpec,
        shard_count: usize,
        index: usize,
    ) -> Result<Self> {
        let trendlines = extract(table, spec, &ExtractOptions::default())?;
        Self::from_trendlines_shard_of(trendlines, shard_count, index)
    }

    /// [`Self::shard_of`] over already-extracted trendlines.
    ///
    /// # Errors
    /// Rejects `index`es at or beyond the effective shard count.
    pub fn from_trendlines_shard_of(
        trendlines: Vec<Trendline>,
        shard_count: usize,
        index: usize,
    ) -> Result<Self> {
        let bounds = partition_bounds(&trendlines, shard_count);
        let Some(&(start, end)) = bounds.get(index) else {
            return Err(crate::CoreError::Config(format!(
                "shard index {index} out of range: the collection partitions \
                 into {} shard(s)",
                bounds.len()
            )));
        };
        let mut rest = trendlines;
        rest.truncate(end);
        let part = rest.split_off(start);
        let trendline_count = part.len();
        let point_count = part.iter().map(|t| t.points.len()).sum();
        Ok(Self {
            shards: vec![Arc::new(
                ShapeEngine::from_trendlines(part).with_base_index(start),
            )],
            options: EngineOptions::default(),
            trendline_count,
            point_count,
        })
    }

    /// Partitions `trendlines` into (at most) `shard_count` contiguous,
    /// size-balanced shards. Balancing is by **point count**, not
    /// trendline count — points drive segmentation cost — while keeping
    /// partitions contiguous so each shard's global indices are its base
    /// offset plus the local index. The effective shard count is clamped
    /// to `[1, trendline_count]` (never an empty shard).
    pub fn from_trendlines(trendlines: Vec<Trendline>, shard_count: usize) -> Self {
        let trendline_count = trendlines.len();
        let point_count: usize = trendlines.iter().map(|t| t.points.len()).sum();
        let bounds = partition_bounds(&trendlines, shard_count);

        let mut shards = Vec::with_capacity(bounds.len());
        let mut rest = trendlines;
        // Split back-to-front so each boundary is a cheap `split_off`.
        for &(start, _) in bounds.iter().rev() {
            let part = rest.split_off(start);
            shards.push(Arc::new(
                ShapeEngine::from_trendlines(part).with_base_index(start),
            ));
        }
        shards.reverse();
        Self {
            shards,
            options: EngineOptions::default(),
            trendline_count,
            point_count,
        }
    }

    /// Assembles a sharded engine from pre-built shard engines — the
    /// snapshot load path, where each shard was materialized from a
    /// mapped snapshot partition (its `base_index` already set to the
    /// partition start). The shards must be the deterministic
    /// contiguous partitions of one collection, in partition order —
    /// [`partition_bounds_by_points`] is the rule — so merges stay
    /// byte-identical to every other sharding path. Counts are summed
    /// from the shards.
    pub fn from_shard_engines(shards: Vec<Arc<ShapeEngine>>) -> Self {
        let trendline_count = shards.iter().map(|s| s.trendlines().len()).sum();
        let point_count = shards
            .iter()
            .flat_map(|s| s.trendlines().iter())
            .map(|t| t.points.len())
            .sum();
        Self {
            shards,
            options: EngineOptions::default(),
            trendline_count,
            point_count,
        }
    }

    /// Replaces the engine options, returning `self` for chaining.
    #[must_use]
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the segmentation algorithm, returning `self` for chaining.
    #[must_use]
    pub fn with_segmenter(mut self, kind: crate::SegmenterKind) -> Self {
        self.options.segmenter = kind;
        self
    }

    /// Current options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Mutable options access.
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Number of shards the collection is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, in partition order. Each shard reports
    /// collection-global `viz_index`es; partial results from individual
    /// shards recombine with [`merge_topk`]. Shard handles are `Arc`s so
    /// an embedder can move per-shard work onto long-lived worker
    /// threads.
    pub fn shards(&self) -> &[Arc<ShapeEngine>] {
        &self.shards
    }

    /// Pre-builds every shard's columnar GROUP arena for the current
    /// options' bin width, so the first query pays only SEGMENT+SCORE.
    /// Registration-time warming: the arenas are `Arc`-cached inside
    /// each [`ShapeEngine`] and shared by all subsequent queries.
    pub fn warm(&self) {
        for shard in &self.shards {
            shard.warm(self.options.bin_width);
        }
    }

    /// Total trendlines across all shards.
    pub fn trendline_count(&self) -> usize {
        self.trendline_count
    }

    /// Total raw points across all shards.
    pub fn point_count(&self) -> usize {
        self.point_count
    }

    /// The trendline at global index `i`, if any.
    pub fn trendline(&self, i: usize) -> Option<&Trendline> {
        let shard = self
            .shards
            .iter()
            .take_while(|s| s.base_index() <= i)
            .last()?;
        shard.trendlines().get(i - shard.base_index())
    }

    /// Iterates every trendline in global index order.
    pub fn trendlines(&self) -> impl Iterator<Item = &Trendline> {
        self.shards.iter().flat_map(|s| s.trendlines().iter())
    }

    /// Releases shard `index`'s trendline payload, replacing its engine
    /// with an empty one that keeps the partition's `base_index`. For
    /// embedders that place a shard's *execution* elsewhere (the
    /// server's remote shard placement): the partition bounds stay
    /// deterministic and the shard count unchanged, but the router no
    /// longer holds collection data it will never query — an all-remote
    /// placement costs near-zero resident memory. After eviction the
    /// collection-level query methods on *this* engine no longer see the
    /// partition; only callers that route per shard (consulting their
    /// placement) may use it.
    ///
    /// # Panics
    /// Like UDP registration, only valid before shard handles have been
    /// shared, and `index` must be in range.
    pub fn evict_shard(&mut self, index: usize) {
        let base = self.shards[index].base_index();
        assert!(
            Arc::get_mut(&mut self.shards[index]).is_some(),
            "evict shards before sharing shard handles"
        );
        self.shards[index] =
            Arc::new(ShapeEngine::from_trendlines(Vec::new()).with_base_index(base));
    }

    /// Registers a user-defined pattern on every shard.
    ///
    /// # Panics
    /// UDPs must be registered during construction, before any shard
    /// handle from [`Self::shards`] has been cloned out.
    pub fn register_udp(&mut self, name: impl Into<String>, f: UdpFn) {
        let name = name.into();
        for shard in &mut self.shards {
            Arc::get_mut(shard)
                .expect("register UDPs before sharing shard handles")
                .register_udp(name.clone(), Arc::clone(&f));
        }
    }

    /// Registers all built-in mathematical patterns on every shard (see
    /// [`ShapeEngine::register_builtin_udps`]).
    ///
    /// # Panics
    /// Like [`Self::register_udp`], only valid before shard handles have
    /// been shared.
    pub fn register_builtin_udps(&mut self) {
        for shard in &mut self.shards {
            Arc::get_mut(shard)
                .expect("register UDPs before sharing shard handles")
                .register_builtin_udps();
        }
    }

    /// Executes a ShapeQuery across all shards, returning the merged top
    /// `k`. Identical to an unsharded [`ShapeEngine::top_k`] over the
    /// same collection, for every shard count.
    ///
    /// # Errors
    /// Fails when the query references unregistered UDPs or is
    /// structurally empty.
    pub fn top_k(&self, query: &ShapeQuery, k: usize) -> Result<Vec<TopKResult>> {
        self.top_k_with_options(query, k, &self.options)
    }

    /// [`Self::top_k`] under explicit options (the shared-engine seam —
    /// see [`ShapeEngine::top_k_with_options`]).
    ///
    /// # Errors
    /// Fails when the query references unregistered UDPs or is
    /// structurally empty.
    pub fn top_k_with_options(
        &self,
        query: &ShapeQuery,
        k: usize,
        options: &EngineOptions,
    ) -> Result<Vec<TopKResult>> {
        self.top_k_batch(&[(query, k)], options)
            .pop()
            .expect("one outcome per batched query")
    }

    /// Executes a whole batch of ShapeQueries: every shard runs the full
    /// batched pass ([`ShapeEngine::top_k_batch`], sharing its GROUP
    /// stage across the batch) over its own partition, then each query's
    /// per-shard partials are merged deterministically.
    ///
    /// Shards run on scoped threads when `options.parallel` is set or
    /// the collection holds at least `options.parallel_threshold`
    /// trendlines — the "parallel" knob now simply fans out shards —
    /// and sequentially otherwise. Either way the outcome is
    /// bit-identical to the unsharded engine, per query.
    ///
    /// The server's `execute_on_shards` is the pool-task twin of this
    /// fan-out (long-lived threads need `'static` tasks over `Arc`s,
    /// where this path borrows); the single-shard and inner-options
    /// policy must stay in sync between the two.
    pub fn top_k_batch(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
    ) -> Vec<Result<Vec<TopKResult>>> {
        self.top_k_batch_shared(items, options, &SharedThresholds::new(items.len()))
    }

    /// [`Self::top_k_batch`] against caller-owned shared execution state
    /// (see [`ShapeEngine::top_k_batch_shared`]): every shard consumes
    /// and tightens the same per-query [`super::ThresholdCell`]s, so a
    /// shard that has found k strong results prunes the other shards'
    /// candidates — across threads here, and across processes when the
    /// embedder also seeds the cells from remote `threshold_hint`s.
    ///
    /// # Panics
    /// When `shared` was not built for exactly `items.len()` queries.
    pub fn top_k_batch_shared(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
        shared: &SharedThresholds,
    ) -> Vec<Result<Vec<TopKResult>>> {
        self.top_k_batch_observed(items, options, shared, &super::observe::NOOP_OBSERVER)
    }

    /// [`Self::top_k_batch_shared`] with per-stage timings reported to
    /// `observer` (see [`ShapeEngine::top_k_batch_observed`]). Every
    /// shard feeds the same observer — samples aggregate across the
    /// fan-out exactly like the pruning counters do.
    ///
    /// # Panics
    /// When `shared` was not built for exactly `items.len()` queries.
    pub fn top_k_batch_observed(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
        shared: &SharedThresholds,
        observer: &dyn super::observe::StageObserver,
    ) -> Vec<Result<Vec<TopKResult>>> {
        if self.shards.len() == 1 {
            // Single shard: the plain engine path, viz-level parallelism
            // and all.
            return self.shards[0].top_k_batch_observed(items, options, shared, observer);
        }
        let fan_out = options.parallel || self.trendline_count >= options.parallel_threshold;
        let partials: Vec<Vec<Result<Vec<TopKResult>>>> = if fan_out {
            // One thread per shard; shard work is the unit of
            // parallelism, so the engine's *inner* viz-level parallelism
            // is switched off rather than oversubscribing cores.
            let inner = EngineOptions {
                parallel: false,
                parallel_threshold: usize::MAX,
                ..options.clone()
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| {
                        let inner = &inner;
                        scope.spawn(move || {
                            shard.top_k_batch_observed(items, inner, shared, observer)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread panicked"))
                    .collect()
            })
        } else {
            self.shards
                .iter()
                .map(|shard| shard.top_k_batch_observed(items, options, shared, observer))
                .collect()
        };
        merge_shard_outcomes(partials, items.iter().map(|&(_, k)| k))
    }
}

/// Contiguous `(start, end)` trendline ranges for (at most) `shard_count`
/// size-balanced shards. Balancing minimizes the spread of per-shard
/// point totals by cutting at the cumulative-points quantiles.
fn partition_bounds(trendlines: &[Trendline], shard_count: usize) -> Vec<(usize, usize)> {
    let counts: Vec<usize> = trendlines.iter().map(|t| t.points.len()).collect();
    partition_bounds_by_points(&counts, shard_count)
}

/// [`partition_bounds`](ShardedEngine) over bare per-trendline **raw**
/// point counts: contiguous `(start, end)` trendline ranges for (at
/// most) `shard_count` size-balanced shards, cutting at the
/// cumulative-points quantiles with every shard kept non-empty. This is
/// the single deterministic partitioning rule every sharding path uses —
/// in-process shards, `--shard-of` shard servers, and the snapshot
/// loader (which stores raw point counts precisely so it can reproduce
/// these bounds without materializing trendlines).
pub fn partition_bounds_by_points(
    point_counts: &[usize],
    shard_count: usize,
) -> Vec<(usize, usize)> {
    let n = point_counts.len();
    let shards = shard_count.clamp(1, n.max(1));
    if n == 0 || shards == 1 {
        return vec![(0, n)];
    }
    let total: usize = point_counts.iter().sum();
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut seen = 0usize;
    let mut cut = 1usize; // which quantile boundary is being sought
    for (i, &points) in point_counts.iter().enumerate() {
        seen += points;
        if cut == shards {
            break;
        }
        // Close the current shard once it reaches its points quantile —
        // but only while enough trendlines remain for every later shard
        // to stay non-empty, and immediately once exactly that many are
        // left.
        let remaining = n - (i + 1);
        let quota_met = seen * shards >= total * cut;
        let must_cut = remaining == shards - cut;
        if remaining >= shards - cut && (quota_met || must_cut) {
            bounds.push((start, i + 1));
            start = i + 1;
            cut += 1;
        }
    }
    bounds.push((start, n));
    bounds
}

/// Merges per-shard top-k partials for one query into the final top `k`,
/// under the engine's deterministic order: score descending, ties to the
/// lower global `viz_index`. Each partial must itself be sorted engine
/// output (which per-shard [`ShapeEngine::top_k_batch`] guarantees);
/// the merge then equals the unsharded top-k exactly, because any
/// collection-global top-k member is necessarily inside its own shard's
/// top-k.
pub fn merge_topk(partials: Vec<Vec<TopKResult>>, k: usize) -> Vec<TopKResult> {
    let mut all: Vec<TopKResult> = partials.into_iter().flatten().collect();
    all.sort_by(|a, b| super::topk::rank(a.score, a.viz_index, b.score, b.viz_index));
    all.truncate(k);
    all
}

/// [`merge_topk`] over borrowed partials: the same ordering contract,
/// cloning only the k winners — for embedders that must keep the
/// per-shard partials around after the merge (e.g. the server's
/// hint-verification pass, which may need to re-merge after a retry).
pub fn merge_topk_refs<'a>(
    partials: impl IntoIterator<Item = &'a [TopKResult]>,
    k: usize,
) -> Vec<TopKResult> {
    let mut all: Vec<&TopKResult> = partials.into_iter().flatten().collect();
    all.sort_by(|a, b| super::topk::rank(a.score, a.viz_index, b.score, b.viz_index));
    all.truncate(k);
    all.into_iter().cloned().collect()
}

/// Recombines per-shard batch outcomes (one
/// [`ShapeEngine::top_k_batch`] result per shard, over the same items)
/// into per-query outcomes, merging each query's partials with
/// [`merge_topk`] under its `k`. A query's validation error is
/// shard-independent (every shard holds the same UDP registry and sees
/// the same AST), so the first shard's error stands for all shards.
/// Exposed so embedders that run shard tasks on their own worker pool
/// (e.g. the server) recombine exactly like the in-process fan-out.
pub fn merge_shard_outcomes(
    partials: Vec<Vec<Result<Vec<TopKResult>>>>,
    ks: impl Iterator<Item = usize>,
) -> Vec<Result<Vec<TopKResult>>> {
    let mut per_shard: Vec<_> = partials.into_iter().map(Vec::into_iter).collect();
    ks.map(|k| {
        let mut parts = Vec::with_capacity(per_shard.len());
        let mut first_err = None;
        for shard in per_shard.iter_mut() {
            match shard.next().expect("one outcome per query per shard") {
                Ok(results) => parts.push(results),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(merge_topk(parts, k)),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreError, Pattern, SegmenterKind, ShapeSegment};

    /// A deterministic pseudo-random collection with mixed shapes and
    /// lengths (so point-balanced shards are *not* count-balanced) and
    /// several exactly-duplicated trendlines (so the top-k contains real
    /// score ties straddling shard boundaries).
    fn collection(n: usize) -> Vec<Trendline> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 1.0 // [-1, 1)
        };
        (0..n)
            .map(|i| {
                if i % 5 == 3 {
                    // Exact duplicates of one peak shape: tied scores.
                    let pairs: Vec<(f64, f64)> = (0..20)
                        .map(|t| {
                            let t = t as f64;
                            (t, if t < 10.0 { t } else { 20.0 - t })
                        })
                        .collect();
                    return Trendline::from_pairs(format!("dup{i}"), &pairs);
                }
                let len = 12 + (i * 7) % 40;
                let mut y = 0.0;
                let pairs: Vec<(f64, f64)> = (0..len)
                    .map(|t| {
                        y += next() + ((i % 3) as f64 - 1.0) * 0.2;
                        (t as f64, y)
                    })
                    .collect();
                Trendline::from_pairs(format!("walk{i}"), &pairs)
            })
            .collect()
    }

    fn updown() -> ShapeQuery {
        ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()])
    }

    #[test]
    fn partition_is_contiguous_nonempty_and_offset_stable() {
        let tls = collection(23);
        for shards in [1, 2, 4, 7, 23, 100] {
            let engine = ShardedEngine::from_trendlines(tls.clone(), shards);
            assert_eq!(engine.shard_count(), shards.min(23));
            assert_eq!(engine.trendline_count(), 23);
            let mut expected_base = 0;
            for shard in engine.shards() {
                assert_eq!(shard.base_index(), expected_base);
                assert!(!shard.trendlines().is_empty());
                expected_base += shard.trendlines().len();
            }
            assert_eq!(expected_base, 23);
            // Global order preserved, and global lookup agrees.
            for (i, t) in engine.trendlines().enumerate() {
                assert_eq!(t.key, tls[i].key);
                assert_eq!(engine.trendline(i).unwrap().key, tls[i].key);
            }
            assert!(engine.trendline(23).is_none());
        }
    }

    #[test]
    fn partition_balances_points_not_counts() {
        // 1 long trendline + 15 short ones: a count split would give
        // shard 0 eight trendlines; a points split isolates the giant.
        let mut tls = vec![Trendline::from_pairs(
            "giant",
            &(0..1000).map(|t| (t as f64, t as f64)).collect::<Vec<_>>(),
        )];
        for i in 0..15 {
            tls.push(Trendline::from_pairs(
                format!("small{i}"),
                &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)],
            ));
        }
        let engine = ShardedEngine::from_trendlines(tls, 2);
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(engine.shards()[0].trendlines().len(), 1);
        assert_eq!(engine.shards()[1].trendlines().len(), 15);
    }

    #[test]
    fn empty_collection_gets_one_empty_shard() {
        let engine = ShardedEngine::from_trendlines(Vec::new(), 4);
        assert_eq!(engine.shard_count(), 1);
        assert!(engine.top_k(&updown(), 3).unwrap().is_empty());
    }

    #[test]
    fn sharded_top_k_identical_to_unsharded_for_every_segmenter() {
        let tls = collection(23);
        let queries = [
            updown(),
            ShapeQuery::down(),
            ShapeQuery::concat(vec![
                ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 2.0, 8.0)),
                ShapeQuery::down(),
            ]),
        ];
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
            SegmenterKind::Dtw,
            SegmenterKind::Euclidean,
        ] {
            let reference = ShapeEngine::from_trendlines(tls.clone()).with_segmenter(kind);
            for shards in [1usize, 2, 7, 23] {
                let sharded =
                    ShardedEngine::from_trendlines(tls.clone(), shards).with_segmenter(kind);
                for q in &queries {
                    for k in [1usize, 5, 23] {
                        let want = reference.top_k(q, k).unwrap();
                        let got = sharded.top_k(q, k).unwrap();
                        assert_eq!(got, want, "{kind:?} shards={shards} k={k} diverged on {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn tie_order_is_global_index_order_across_shard_boundaries() {
        // Duplicated trendlines land in different shards but must come
        // back in ascending global index order.
        let tls = collection(20);
        let sharded = ShardedEngine::from_trendlines(tls.clone(), 7);
        let results = sharded.top_k(&updown(), 20).unwrap();
        let dup_indices: Vec<usize> = results
            .iter()
            .filter(|r| r.key.starts_with("dup"))
            .map(|r| r.viz_index)
            .collect();
        assert!(dup_indices.len() >= 3, "expected several tied duplicates");
        assert!(
            dup_indices.windows(2).all(|w| w[0] < w[1]),
            "tied duplicates out of global order: {dup_indices:?}"
        );
        // And identical to the unsharded ordering.
        let reference = ShapeEngine::from_trendlines(tls)
            .top_k(&updown(), 20)
            .unwrap();
        assert_eq!(results, reference);
    }

    #[test]
    fn sharded_batch_matches_unsharded_batch_and_isolates_errors() {
        let tls = collection(19);
        let good = updown();
        let bad = ShapeQuery::pattern(Pattern::Udp("mystery".into()));
        let items: Vec<(&ShapeQuery, usize)> = vec![(&good, 4), (&bad, 2), (&good, 19)];
        let reference = ShapeEngine::from_trendlines(tls.clone());
        let want = reference.top_k_batch(&items, reference.options());
        for shards in [2usize, 7, 19] {
            let sharded = ShardedEngine::from_trendlines(tls.clone(), shards);
            let got = sharded.top_k_batch(&items, sharded.options());
            assert_eq!(got.len(), want.len());
            assert_eq!(got[0].as_ref().unwrap(), want[0].as_ref().unwrap());
            assert!(matches!(got[1], Err(CoreError::UnknownUdp(_))));
            assert_eq!(got[2].as_ref().unwrap(), want[2].as_ref().unwrap());
        }
    }

    #[test]
    fn parallel_and_auto_threshold_fan_out_match_sequential() {
        let tls = collection(23);
        let reference = ShapeEngine::from_trendlines(tls.clone());
        let want = reference.top_k(&updown(), 10).unwrap();
        // Explicit parallel fan-out.
        let parallel = EngineOptions {
            parallel: true,
            ..EngineOptions::default()
        };
        let sharded = ShardedEngine::from_trendlines(tls.clone(), 4).with_options(parallel);
        assert_eq!(sharded.top_k(&updown(), 10).unwrap(), want);
        // Auto-parallel: the collection crosses the configured threshold.
        let auto = EngineOptions {
            parallel: false,
            parallel_threshold: 23,
            ..EngineOptions::default()
        };
        let sharded = ShardedEngine::from_trendlines(tls, 4).with_options(auto);
        assert_eq!(sharded.top_k(&updown(), 10).unwrap(), want);
    }

    #[test]
    fn udps_register_on_every_shard() {
        let mut sharded = ShardedEngine::from_trendlines(collection(12), 3);
        sharded.register_builtin_udps();
        sharded.register_udp(
            "net_gain",
            Arc::new(|ys: &[f64]| if ys.last() > ys.first() { 1.0 } else { -1.0 }),
        );
        let q = ShapeQuery::pattern(Pattern::Udp("net_gain".into()));
        assert!(!sharded.top_k(&q, 4).unwrap().is_empty());
        let q = ShapeQuery::pattern(Pattern::Udp("spike".into()));
        assert!(sharded.top_k(&q, 4).is_ok());
    }

    #[test]
    fn shard_of_owns_exactly_the_full_partition_slice() {
        let tls = collection(23);
        for shards in [1usize, 2, 4, 7] {
            let full = ShardedEngine::from_trendlines(tls.clone(), shards);
            for index in 0..full.shard_count() {
                let one =
                    ShardedEngine::from_trendlines_shard_of(tls.clone(), shards, index).unwrap();
                assert_eq!(one.shard_count(), 1);
                let want = &full.shards()[index];
                let got = &one.shards()[0];
                assert_eq!(got.base_index(), want.base_index());
                let want_keys: Vec<_> = want.trendlines().iter().map(|t| &t.key).collect();
                let got_keys: Vec<_> = got.trendlines().iter().map(|t| &t.key).collect();
                assert_eq!(got_keys, want_keys, "shards={shards} index={index}");
                assert_eq!(one.trendline_count(), want.trendlines().len());
            }
            // Out-of-range index is a structured error, not a panic.
            assert!(matches!(
                ShardedEngine::from_trendlines_shard_of(tls.clone(), shards, full.shard_count()),
                Err(CoreError::Config(_))
            ));
        }
    }

    #[test]
    fn shard_of_partials_merge_to_the_unsharded_answer() {
        // The distributed invariant, in-process: per-partition engines
        // built independently via shard_of produce partials whose merge
        // is byte-identical to the unsharded top-k.
        let tls = collection(23);
        let reference = ShapeEngine::from_trendlines(tls.clone());
        let want = reference.top_k(&updown(), 10).unwrap();
        for shards in [2usize, 4, 7] {
            let partials: Vec<Vec<TopKResult>> = (0..shards)
                .map(|i| {
                    ShardedEngine::from_trendlines_shard_of(tls.clone(), shards, i)
                        .unwrap()
                        .top_k(&updown(), 10)
                        .unwrap()
                })
                .collect();
            assert_eq!(merge_topk(partials, 10), want, "shards={shards}");
        }
    }

    #[test]
    fn merge_topk_is_deterministic_on_ties() {
        let r = |viz: usize, score: f64| TopKResult {
            key: format!("k{viz}"),
            score,
            viz_index: viz,
            ranges: vec![(0, 1)],
        };
        let merged = merge_topk(
            vec![
                vec![r(4, 0.5), r(6, 0.5)],
                vec![r(1, 0.5), r(2, 0.3)],
                vec![r(0, 0.9)],
            ],
            4,
        );
        let order: Vec<usize> = merged.iter().map(|m| m.viz_index).collect();
        assert_eq!(order, vec![0, 1, 4, 6]);
    }

    /// The acceptance benchmark: with real parallel hardware, fanning a
    /// large collection across ≥4 shards must beat a single shard on
    /// wall-clock. Self-gates on single-core machines (where there is
    /// nothing to win) but still asserts result equality there.
    #[test]
    fn multi_shard_parallel_beats_single_shard_wall_clock() {
        let tls: Vec<Trendline> = (0..48)
            .map(|i| {
                let pairs: Vec<(f64, f64)> = (0..400)
                    .map(|t| {
                        let t = t as f64;
                        (t, (t * (0.01 + i as f64 * 0.001)).sin() * 3.0 + t * 0.002)
                    })
                    .collect();
                Trendline::from_pairs(format!("s{i}"), &pairs)
            })
            .collect();
        let opts = EngineOptions {
            segmenter: SegmenterKind::Dp,
            bin_width: 4,
            parallel: true,
            ..EngineOptions::default()
        };
        let single = ShardedEngine::from_trendlines(tls.clone(), 1).with_options(EngineOptions {
            parallel: false,
            ..opts.clone()
        });
        let sharded = ShardedEngine::from_trendlines(tls, 4).with_options(opts);
        let q = updown();

        let want = single.top_k(&q, 8).unwrap();
        assert_eq!(sharded.top_k(&q, 8).unwrap(), want);

        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 {
            eprintln!("single-core machine: skipping the wall-clock comparison");
            return;
        }
        let time = |engine: &ShardedEngine| {
            let mut best = std::time::Duration::MAX;
            for _ in 0..3 {
                let started = std::time::Instant::now();
                let _ = engine.top_k(&q, 8).unwrap();
                best = best.min(started.elapsed());
            }
            best
        };
        let t_single = time(&single);
        let t_sharded = time(&sharded);
        assert!(
            t_sharded < t_single,
            "4-shard parallel run should beat 1 shard on {cores} cores: \
             sharded {t_sharded:?} vs single {t_single:?}"
        );
    }
}
