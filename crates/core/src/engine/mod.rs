//! The ShapeSearch execution engine (paper §5): the pipelined
//! EXTRACT → GROUP → SEGMENT → SCORE executor solving Problem 1 — "given a
//! dataset D, a ShapeQuery Q, visual parameters R, and a scoring function SF,
//! find top k visualizations that maximize SF(Q, Vᵢ)".

pub mod group;
pub mod observe;
pub mod pushdown;
pub mod shard;
mod topk;

use crate::algo::baseline::{BaselineMethod, WholeSeriesBaseline};
use crate::algo::dp::DpSegmenter;
use crate::algo::greedy::GreedySegmenter;
use crate::algo::pruning::{
    PruningConfig, PruningCounters, PruningDriver, PruningMode, PruningSnapshot, ThresholdCell,
};
use crate::algo::segment_tree::SegmentTreeSegmenter;
use crate::algo::{MatchResult, Segmenter, SegmenterKind};
use crate::ast::Pattern;
use crate::chain::{expand_chains, Chain};
use crate::error::{CoreError, Result};
use crate::eval::{Evaluator, UdpFn, UdpRegistry};
use crate::score::ScoreParams;
use crate::ShapeQuery;
use group::VizData;
use observe::{EngineStage, StageObserver, NOOP_OBSERVER};
use shapesearch_datastore::{extract, ExtractOptions, Table, Trendline, VisualSpec};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use topk::TopK;

/// Collection size (in trendlines) at or above which a single query runs
/// with engine-level parallelism even when [`EngineOptions::parallel`] is
/// off — past this point the per-thread fan-out cost is noise next to the
/// segmentation work it spreads across cores.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Segmentation algorithm (Figure 10's competitors).
    pub segmenter: SegmenterKind,
    /// GROUP binning width in raw points per bin (1 = no binning).
    pub bin_width: usize,
    /// Enables the §5.4 push-down optimizations.
    pub pushdown: bool,
    /// Scores candidate visualizations on multiple threads.
    pub parallel: bool,
    /// Collections with at least this many trendlines are scored in
    /// parallel even when [`Self::parallel`] is `false`
    /// ([`DEFAULT_PARALLEL_THRESHOLD`] by default; `usize::MAX` disables
    /// the auto-parallel policy entirely). Like `parallel`, this changes
    /// scheduling only, never results.
    pub parallel_threshold: usize,
    /// Scoring parameters.
    pub params: ScoreParams,
    /// When §6.3 bound pruning applies (default [`PruningMode::Auto`]:
    /// every exact segmenter prunes). Like the scheduling knobs, pruning
    /// never changes results — it only skips candidates that provably
    /// cannot enter the top k.
    pub pruning_mode: PruningMode,
    /// Two-stage pruning configuration (stage-1 sample size).
    pub pruning: PruningConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            segmenter: SegmenterKind::default(),
            bin_width: 1,
            pushdown: true,
            parallel: false,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            params: ScoreParams::default(),
            pruning_mode: PruningMode::default(),
            pruning: PruningConfig::default(),
        }
    }
}

/// Cross-executor shared state for one batched computation: one
/// [`ThresholdCell`] per query plus one set of pruning counters.
///
/// Everything that executes parts of the *same* logical computation —
/// `run_per_viz`'s parallel chunks, a [`shard::ShardedEngine`]'s shards,
/// the server's compute-pool shard tasks, even remote shard servers (via
/// the wire `threshold_hint`) — should share one of these so every
/// executor's progress tightens the pruning bound everywhere else. The
/// plain entry points create a private one per call; embedders that fan
/// a computation out themselves build it once via [`Self::new`] and pass
/// clones (clones share the same cells) to every executor, then read the
/// effectiveness [`Self::snapshot`] and any per-query hint debt
/// ([`Self::hint_pruned`]) afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedThresholds {
    cells: Vec<Arc<ThresholdCell>>,
    counters: Arc<PruningCounters>,
}

impl SharedThresholds {
    /// Fresh state for a computation over `queries` queries.
    pub fn new(queries: usize) -> Self {
        Self {
            cells: (0..queries)
                .map(|_| Arc::new(ThresholdCell::new()))
                .collect(),
            counters: Arc::new(PruningCounters::new()),
        }
    }

    /// Number of per-query cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when built for zero queries.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The shared threshold cell of query `query`.
    ///
    /// # Panics
    /// When `query` is out of range.
    pub fn cell(&self, query: usize) -> &ThresholdCell {
        &self.cells[query]
    }

    /// The shared counter sink every driver of this computation feeds.
    pub fn counters(&self) -> &PruningCounters {
        &self.counters
    }

    /// A point-in-time copy of the pruning effectiveness counters.
    pub fn snapshot(&self) -> PruningSnapshot {
        self.counters.snapshot()
    }

    /// Plants an unproven `threshold_hint` for query `query` (see
    /// [`ThresholdCell::seed_hint`]).
    pub fn seed_hint(&self, query: usize, value: f64) {
        self.cells[query].seed_hint(value);
    }

    /// The largest upper bound pruned on hint authority alone for query
    /// `query`, if any (see [`ThresholdCell::hint_pruned`]).
    pub fn hint_pruned(&self, query: usize) -> Option<f64> {
        self.cells[query].hint_pruned()
    }
}

/// One entry of the top-k answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The `z` value of the matched visualization.
    pub key: String,
    /// Final score in [−1, 1].
    pub score: f64,
    /// Global index of the matched trendline in the *collection*: for a
    /// standalone engine this indexes [`ShapeEngine::trendlines`]; for a
    /// shard of a [`shard::ShardedEngine`] it is the shard's base offset
    /// plus the local index, so indices (and the tie order built on them)
    /// are stable no matter how the collection is partitioned.
    pub viz_index: usize,
    /// Canvas point range fitted to each unit of the winning chain (empty
    /// for whole-series baselines) — the "green line segments" the
    /// front-end overlays on results.
    pub ranges: Vec<(usize, usize)>,
}

/// The ShapeSearch execution engine over one visualization collection
/// (or over one shard of a larger, partitioned collection — see
/// [`shard::ShardedEngine`]).
#[derive(Debug)]
pub struct ShapeEngine {
    trendlines: Vec<Trendline>,
    options: EngineOptions,
    udps: UdpRegistry,
    /// Global index of `trendlines[0]` in the enclosing collection: 0 for
    /// a standalone engine, the shard's partition offset otherwise.
    /// Added to every local index on the way out so reported
    /// `viz_index`es are collection-global.
    base_index: usize,
    /// Lazily built columnar GROUP state, keyed by bin width: one
    /// [`crate::ColumnarArena`]-backed collection per width ever queried.
    /// `Arc`-shared so repeated batches (and everything holding this
    /// engine behind an `Arc` — shards, the server catalog) reuse one
    /// arena instead of re-running GROUP per call. A handful of widths at
    /// most, so a linear scan beats a map.
    grouped_cache: Mutex<Vec<(usize, GroupedCollection)>>,
}

/// One `Arc`-shared GROUP run over the whole collection: `None` where
/// GROUP rejected the trendline (fewer than two canvas points).
type GroupedCollection = Arc<Vec<Option<VizData>>>;

impl ShapeEngine {
    /// Builds an engine by running EXTRACT over a table with the given
    /// visual parameters.
    ///
    /// # Errors
    /// Propagates extraction errors (unknown columns, non-numeric axes).
    pub fn new(table: &Table, spec: &VisualSpec) -> Result<Self> {
        let trendlines = extract(table, spec, &ExtractOptions::default())?;
        Ok(Self::from_trendlines(trendlines))
    }

    /// Builds an engine directly from trendlines (e.g. from a generator).
    pub fn from_trendlines(trendlines: Vec<Trendline>) -> Self {
        Self {
            trendlines,
            options: EngineOptions::default(),
            udps: UdpRegistry::new(),
            base_index: 0,
            grouped_cache: Mutex::new(Vec::new()),
        }
    }

    /// The GROUPed collection for `bin_width`, built on first use and
    /// cached: every trendline normalized/binned into one shared
    /// [`crate::ColumnarArena`], `None` where GROUP rejects (fewer than
    /// two points). Handles are bit-identical to per-trendline GROUP.
    fn grouped(&self, bin_width: usize) -> GroupedCollection {
        let mut cache = self
            .grouped_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((_, g)) = cache.iter().find(|(b, _)| *b == bin_width) {
            return Arc::clone(g);
        }
        let g = Arc::new(group::group_collection(&self.trendlines, bin_width));
        cache.push((bin_width, Arc::clone(&g)));
        g
    }

    /// Eagerly builds (and caches) the columnar GROUP state for
    /// `bin_width`, so the first query pays segmentation only. Embedders
    /// that register an engine long before its first query — the server
    /// catalog — call this at registration time.
    pub fn warm(&self, bin_width: usize) {
        let _ = self.grouped(bin_width);
    }

    /// Total bytes of columnar GROUP state this engine currently holds
    /// resident: the sum of each cached bin width's arena byte size.
    /// Every [`VizData`] in one GROUP run shares a single arena, so one
    /// handle per width is enough to account for the whole collection.
    /// This is the dominant memory cost of a resident snapshot shard —
    /// the server's `--resident-bytes` budget evicts on it.
    pub fn grouped_byte_size(&self) -> usize {
        let cache = self
            .grouped_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        cache
            .iter()
            .map(|(_, grouped)| {
                grouped
                    .iter()
                    .flatten()
                    .next()
                    .map_or(0, |viz| viz.arena().byte_size())
            })
            .sum()
    }

    /// Installs a pre-built GROUP run for `bin_width` into the engine's
    /// cache — the snapshot load path: a [`crate::snapshot::Snapshot`]
    /// partition hands back the mapped arena plus its `VizData` handles,
    /// and seeding them here means the default-width query path never
    /// re-runs GROUP. The caller guarantees `grouped` is the GROUP of
    /// this engine's trendlines at `bin_width` (the snapshot writer and
    /// loader keep that bit-identical); queries at *other* bin widths
    /// still re-GROUP from the trendlines as usual. A width already in
    /// the cache is left untouched.
    ///
    /// # Panics
    /// Panics when `grouped` does not have one entry per trendline.
    pub fn seed_grouped(&self, bin_width: usize, grouped: Vec<Option<VizData>>) {
        assert_eq!(
            grouped.len(),
            self.trendlines.len(),
            "seeded GROUP must cover every trendline"
        );
        let mut cache = self
            .grouped_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if cache.iter().any(|(b, _)| *b == bin_width) {
            return;
        }
        cache.push((bin_width, Arc::new(grouped)));
    }

    /// Declares this engine a shard of a larger collection whose first
    /// trendline sits at global index `base`: every reported `viz_index`
    /// becomes `base + local index`, keeping indices (and tie ordering)
    /// stable across any partitioning. Returns `self` for chaining.
    #[must_use]
    pub fn with_base_index(mut self, base: usize) -> Self {
        self.base_index = base;
        self
    }

    /// The global index of this engine's first trendline (0 unless the
    /// engine is a shard).
    pub fn base_index(&self) -> usize {
        self.base_index
    }

    /// Replaces the engine options, returning `self` for chaining.
    #[must_use]
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the segmentation algorithm, returning `self` for chaining.
    #[must_use]
    pub fn with_segmenter(mut self, kind: SegmenterKind) -> Self {
        self.options.segmenter = kind;
        self
    }

    /// Registers a user-defined pattern usable as `p=udp:<name>`.
    pub fn register_udp(&mut self, name: impl Into<String>, f: UdpFn) {
        self.udps.register(name, f);
    }

    /// Registers all built-in mathematical patterns (`concave`, `convex`,
    /// `exponential`, `logarithmic`, `entropy_high`, `entropy_low`,
    /// `v_shape`, `spike`) — the §7.2 user-requested extensions.
    pub fn register_builtin_udps(&mut self) {
        crate::udps::register_builtins(&mut self.udps);
    }

    /// The extracted candidate trendlines.
    pub fn trendlines(&self) -> &[Trendline] {
        &self.trendlines
    }

    /// Current options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Mutable options access.
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Executes a ShapeQuery, returning the top `k` visualizations by score.
    ///
    /// # Errors
    /// Fails when the query references unregistered UDPs or is structurally
    /// empty.
    pub fn top_k(&self, query: &ShapeQuery, k: usize) -> Result<Vec<TopKResult>> {
        self.top_k_with_options(query, k, &self.options)
    }

    /// Executes a ShapeQuery under the given options instead of the
    /// engine's own — the seam that lets a shared, immutable engine (e.g.
    /// one behind an `Arc` in a server catalog) serve requests that pick
    /// their own algorithm or scoring parameters without cloning the
    /// extracted trendlines.
    ///
    /// # Errors
    /// Fails when the query references unregistered UDPs or is structurally
    /// empty.
    pub fn top_k_with_options(
        &self,
        query: &ShapeQuery,
        k: usize,
        options: &EngineOptions,
    ) -> Result<Vec<TopKResult>> {
        self.top_k_batch(&[(query, k)], options)
            .pop()
            .expect("one outcome per batched query")
    }

    /// Executes a whole batch of ShapeQueries over **one pass** of the
    /// trendline collection (the paper's §5 pipelining argument, lifted
    /// from sharing work *within* a query to sharing it *across* queries):
    /// the GROUP stage — normalization, binning, and the prefix statistics
    /// index — runs at most once per trendline for the entire batch, no
    /// matter how many queries reference it, instead of once per query.
    /// Only the per-query segmentation and scoring remain proportional to
    /// the batch size.
    ///
    /// Outcomes are per query, in input order, and are bit-identical to
    /// running [`Self::top_k_with_options`] on each `(query, k)` pair
    /// individually — one malformed query fails only its own slot, never
    /// the rest of the batch. Queries that need a restricted GROUP
    /// (push-down (c): fully pinned x ranges) fall back to a private
    /// per-query GROUP so their restriction cannot leak into neighbours.
    pub fn top_k_batch(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
    ) -> Vec<Result<Vec<TopKResult>>> {
        self.top_k_batch_shared(items, options, &SharedThresholds::new(items.len()))
    }

    /// [`Self::top_k_batch`] against caller-owned shared execution state:
    /// the seam that lets an embedder fanning one computation across
    /// several engines (the sharded engine's partitions, the server's
    /// compute-pool shard tasks) give every executor the *same* per-query
    /// [`ThresholdCell`]s, so each executor's proven top-k progress
    /// prunes work in all the others. Results are byte-identical to the
    /// private-state path — pruning only ever skips candidates that
    /// provably cannot enter the top k.
    ///
    /// # Panics
    /// When `shared` was not built for exactly `items.len()` queries.
    pub fn top_k_batch_shared(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
        shared: &SharedThresholds,
    ) -> Vec<Result<Vec<TopKResult>>> {
        self.top_k_batch_observed(items, options, shared, &NOOP_OBSERVER)
    }

    /// [`Self::top_k_batch_shared`] with stage timing reported to
    /// `observer`: the GROUP stage once per batch, SEGMENT+SCORE once
    /// per query, and §6.3 bound computations per bound-checked
    /// candidate (see [`observe::EngineStage`]). Observation never
    /// changes results — the observer only receives durations.
    ///
    /// # Panics
    /// When `shared` was not built for exactly `items.len()` queries.
    pub fn top_k_batch_observed(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
        shared: &SharedThresholds,
        observer: &dyn StageObserver,
    ) -> Vec<Result<Vec<TopKResult>>> {
        assert_eq!(
            items.len(),
            shared.len(),
            "shared state must carry one ThresholdCell per query"
        );
        struct Prep<'q> {
            query: &'q ShapeQuery,
            k: usize,
            chains: Vec<Chain>,
            pinned: Vec<(f64, f64)>,
            /// Push-down (c): fully pinned queries GROUP privately over
            /// their own x ranges.
            restrict: bool,
        }

        let preps: Vec<Result<Prep<'_>>> = items
            .iter()
            .map(|&(query, k)| {
                self.validate(query)?;
                let chains = expand_chains(query);
                if chains.is_empty() || chains.iter().any(Chain::is_empty) {
                    return Err(CoreError::InvalidQuery("query has no segments".into()));
                }
                Ok(Prep {
                    query,
                    k,
                    chains,
                    pinned: query.pinned_x_ranges(),
                    restrict: options.pushdown && pushdown::fully_pinned(query),
                })
            })
            .collect();

        // Push-down (a): a query considers a trendline only when the
        // trendline covers the query's pinned x ranges.
        let wants = |p: &Prep<'_>, t: &Trendline| {
            !options.pushdown || p.pinned.is_empty() || pushdown::covers_ranges(t, &p.pinned)
        };

        // Shared GROUP: the whole collection is normalized/binned into one
        // columnar arena at most once per bin width for the engine's entire
        // lifetime (see [`Self::grouped`]) — every batch after the first
        // reuses the cached arena, so repeated queries pay segmentation
        // only. Grouping is per-trendline-independent, so grouping
        // trendlines a query later filters out cannot change any result.
        let group_started = Instant::now();
        let grouped: GroupedCollection = self.grouped(options.bin_width);
        observer.stage(
            EngineStage::Group,
            group_started.elapsed().as_micros() as u64,
        );

        preps
            .into_iter()
            .enumerate()
            .map(|(qi, prep)| {
                let p = prep?;
                let private: Vec<VizData>;
                let vizzes: Vec<&VizData> = if p.restrict {
                    private = self
                        .trendlines
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| wants(&p, t))
                        .filter_map(|(source, t)| {
                            VizData::from_trendline_restricted(
                                t,
                                source,
                                options.bin_width,
                                &p.pinned,
                            )
                        })
                        .collect();
                    private.iter().collect()
                } else {
                    self.trendlines
                        .iter()
                        .zip(grouped.iter())
                        .filter(|(t, _)| wants(&p, t))
                        .filter_map(|(_, v)| v.as_ref())
                        .collect()
                };

                let driver = options.pruning_mode.active_for(options.segmenter).then(|| {
                    PruningDriver::new(
                        p.query,
                        &options.params,
                        shared.cell(qi),
                        shared.counters(),
                        p.k,
                    )
                    .with_observer(observer)
                });
                let score_started = Instant::now();
                let results = self.run_per_viz(
                    &vizzes,
                    &p.chains,
                    options.segmenter,
                    p.k,
                    options,
                    driver.as_ref(),
                );
                observer.stage(
                    EngineStage::SegmentScore,
                    score_started.elapsed().as_micros() as u64,
                );

                Ok(results
                    .into_sorted()
                    .into_iter()
                    .map(|s| TopKResult {
                        key: self.trendlines[s.viz].key.clone(),
                        score: s.result.score,
                        viz_index: self.base_index + s.viz,
                        ranges: s.result.ranges,
                    })
                    .collect())
            })
            .collect()
    }

    fn run_per_viz(
        &self,
        vizzes: &[&VizData],
        chains: &[Chain],
        kind: SegmenterKind,
        k: usize,
        options: &EngineOptions,
        prune: Option<&PruningDriver<'_>>,
    ) -> TopK {
        let score_one = |viz: &VizData| -> MatchResult {
            let ev = Evaluator::new(viz, &options.params, &self.udps);
            if options.pushdown && pushdown::eager_discard(&ev, chains) {
                return MatchResult::infeasible();
            }
            match kind {
                SegmenterKind::Dp => DpSegmenter.match_viz(&ev, chains),
                // The pruned variant is SegmentTree scoring; what made it
                // "pruned" — the §6.3 bound check — is now the driver
                // below, shared by every exact segmenter.
                SegmenterKind::SegmentTree | SegmenterKind::SegmentTreePruned => {
                    SegmentTreeSegmenter::default().match_viz(&ev, chains)
                }
                SegmenterKind::Greedy => GreedySegmenter::new().match_viz(&ev, chains),
                SegmenterKind::Dtw => WholeSeriesBaseline {
                    method: BaselineMethod::Dtw,
                }
                .match_viz(&ev, chains),
                SegmenterKind::Euclidean => WholeSeriesBaseline {
                    method: BaselineMethod::Euclidean,
                }
                .match_viz(&ev, chains),
            }
        };
        // One candidate through the driver: bound-check (skip if provably
        // out), score, and publish the tightened proven k-th best. The
        // threshold only prunes *strictly* below itself and only once some
        // executor has k exact results, so the surviving top k is
        // byte-identical to a prune-free pass.
        let process = |viz: &VizData, topk: &mut TopK| {
            if let Some(driver) = prune {
                if driver.try_prune(viz) {
                    return;
                }
                driver.record_scored();
            }
            let result = score_one(viz);
            let score = result.score;
            // "No match" placeholders — floor score with nothing fitted —
            // are filtered at ADMISSION, not after the k-cut: a filtered
            // candidate must never occupy a top-k slot, or an unsharded
            // cut could spend its k on placeholders that a per-shard cut
            // (which filters before the merge) would have skipped, making
            // the merged answer differ from the unsharded one.
            if score > -1.0 || !result.ranges.is_empty() {
                topk.push(viz.source, result);
            }
            if let Some(driver) = prune {
                // Pool the exact score: once k scores exist *anywhere*
                // (across chunks, shards, even processes via the server's
                // fan-out), the global k-th becomes the proven threshold.
                // Filtered placeholders still offer their −1 floor — it
                // can never raise the threshold above a real score, and
                // no upper bound sits strictly below −1.
                driver.observe(score);
            }
        };

        let mut topk = TopK::new(k);
        // §6.3 stage 1, exactness-preserving form: score a strided sample
        // first (exactly — the resulting threshold is proven, not
        // estimated), so the bulk of the collection faces a live
        // threshold from the start. Skipped when the collection is not
        // meaningfully larger than the sample.
        let sample = match prune {
            Some(_) if k > 0 && vizzes.len() > options.pruning.sample_size.max(k) => {
                let take = options.pruning.sample_size.max(1);
                Some((vizzes.len() / take, take))
            }
            _ => None,
        };
        if let Some((stride, take)) = sample {
            for pos in (0..vizzes.len()).step_by(stride).take(take) {
                process(vizzes[pos], &mut topk);
            }
        }
        let in_sample = move |pos: usize| match sample {
            Some((stride, take)) => pos.is_multiple_of(stride) && pos / stride < take,
            None => false,
        };

        let parallel = options.parallel || vizzes.len() >= options.parallel_threshold;
        if parallel && vizzes.len() > 1 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(vizzes.len());
            let chunk = vizzes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                // Each chunk keeps a local top-k (pushing into it raises
                // the shared threshold as results land, so chunks prune
                // each other's work); merging the chunk top-ks is exact
                // because a global top-k member is in its chunk's top-k.
                let handles: Vec<_> = vizzes
                    .chunks(chunk)
                    .enumerate()
                    .map(|(ci, part)| {
                        scope.spawn(move || {
                            let mut local = TopK::new(k);
                            for (off, v) in part.iter().enumerate() {
                                if in_sample(ci * chunk + off) {
                                    continue;
                                }
                                process(v, &mut local);
                            }
                            local.into_sorted()
                        })
                    })
                    .collect();
                for h in handles {
                    for s in h.join().expect("scoring thread panicked") {
                        topk.push(s.viz, s.result);
                    }
                }
            });
        } else {
            for (pos, v) in vizzes.iter().enumerate() {
                if in_sample(pos) {
                    continue;
                }
                process(v, &mut topk);
            }
        }
        topk
    }

    /// Validates a query against this engine (UDP registration).
    fn validate(&self, query: &ShapeQuery) -> Result<()> {
        for seg in query.segments() {
            if let Some(Pattern::Udp(name)) = &seg.pattern {
                if !self.udps.contains(name) {
                    return Err(CoreError::UnknownUdp(name.clone()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ShapeSegment;
    use std::sync::Arc;

    fn peaked(key: &str, peak_at: f64, n: usize) -> Trendline {
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = i as f64;
                let y = if x < peak_at { x } else { 2.0 * peak_at - x };
                (x, y)
            })
            .collect();
        Trendline::from_pairs(key, &pairs)
    }

    fn falling(key: &str, n: usize) -> Trendline {
        let pairs: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, (n - i) as f64)).collect();
        Trendline::from_pairs(key, &pairs)
    }

    fn collection() -> Vec<Trendline> {
        vec![
            peaked("peak_mid", 8.0, 16),
            falling("fall_a", 16),
            peaked("peak_late", 12.0, 16),
            falling("fall_b", 16),
        ]
    }

    fn updown() -> ShapeQuery {
        ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()])
    }

    #[test]
    fn top_k_ranks_peaks_first() {
        let engine = ShapeEngine::from_trendlines(collection());
        let results = engine.top_k(&updown(), 2).unwrap();
        assert_eq!(results.len(), 2);
        let keys: Vec<&str> = results.iter().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"peak_mid"));
        assert!(keys.contains(&"peak_late"));
        assert!(results[0].score >= results[1].score);
        assert!(!results[0].ranges.is_empty());
    }

    #[test]
    fn all_segmenters_agree_on_easy_data() {
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
        ] {
            let engine = ShapeEngine::from_trendlines(collection()).with_segmenter(kind);
            let results = engine.top_k(&updown(), 2).unwrap();
            let keys: Vec<&str> = results.iter().map(|r| r.key.as_str()).collect();
            assert!(
                keys.contains(&"peak_mid") && keys.contains(&"peak_late"),
                "{kind:?} got {keys:?}"
            );
        }
        // The whole-series baselines compare against a symmetric prototype;
        // the asymmetric late peak may rank below (that weakness is exactly
        // what §7.3 measures). They must still put a peak first.
        for kind in [SegmenterKind::Dtw, SegmenterKind::Euclidean] {
            let engine = ShapeEngine::from_trendlines(collection()).with_segmenter(kind);
            let results = engine.top_k(&updown(), 2).unwrap();
            assert!(
                results[0].key.starts_with("peak"),
                "{kind:?} ranked {} first",
                results[0].key
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let opts = EngineOptions {
            parallel: true,
            ..EngineOptions::default()
        };
        let par = ShapeEngine::from_trendlines(collection()).with_options(opts);
        let seq = ShapeEngine::from_trendlines(collection());
        let a = par.top_k(&updown(), 4).unwrap();
        let b = seq.top_k(&updown(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pushdown_prunes_uncovered_trendlines() {
        let mut tls = collection();
        // A short trendline that does not reach x = 12.
        tls.push(Trendline::from_pairs(
            "short",
            &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)],
        ));
        let engine = ShapeEngine::from_trendlines(tls);
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 10.0, 14.0)),
            ShapeQuery::down(),
        ]);
        let results = engine.top_k(&q, 10).unwrap();
        assert!(results.iter().all(|r| r.key != "short"));
    }

    #[test]
    fn pushdown_on_off_same_results() {
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 8.0)),
            ShapeQuery::down(),
        ]);
        let on = ShapeEngine::from_trendlines(collection());
        let off_opts = EngineOptions {
            pushdown: false,
            ..EngineOptions::default()
        };
        let off = ShapeEngine::from_trendlines(collection()).with_options(off_opts);
        let a = on.top_k(&q, 2).unwrap();
        let b = off.top_k(&q, 2).unwrap();
        let ka: Vec<&str> = a.iter().map(|r| r.key.as_str()).collect();
        let kb: Vec<&str> = b.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn batch_matches_sequential_for_every_segmenter() {
        let queries = [
            updown(),
            ShapeQuery::concat(vec![ShapeQuery::down(), ShapeQuery::up()]),
            ShapeQuery::concat(vec![
                ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 8.0)),
                ShapeQuery::down(),
            ]),
            ShapeQuery::down(),
        ];
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
            SegmenterKind::Dtw,
            SegmenterKind::Euclidean,
        ] {
            let engine = ShapeEngine::from_trendlines(collection()).with_segmenter(kind);
            let items: Vec<(&ShapeQuery, usize)> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| (q, i + 1))
                .collect();
            let batched = engine.top_k_batch(&items, engine.options());
            assert_eq!(batched.len(), queries.len());
            for ((q, k), got) in items.iter().zip(batched) {
                let want = engine.top_k(q, *k).unwrap();
                assert_eq!(got.unwrap(), want, "{kind:?} diverged on {q}");
            }
        }
    }

    #[test]
    fn batch_isolates_per_query_errors() {
        let engine = ShapeEngine::from_trendlines(collection());
        let good = updown();
        let bad = ShapeQuery::pattern(Pattern::Udp("mystery".into()));
        let outcomes = engine.top_k_batch(&[(&good, 2), (&bad, 2), (&good, 1)], engine.options());
        assert!(outcomes[0].is_ok());
        assert!(matches!(outcomes[1], Err(CoreError::UnknownUdp(_))));
        let solo = engine.top_k(&good, 1).unwrap();
        assert_eq!(outcomes[2].as_ref().unwrap(), &solo);
    }

    /// A needle-in-a-haystack collection: a few peaks buried in falls.
    fn haystack(n: usize) -> Vec<Trendline> {
        (0..n)
            .map(|i| {
                if i % 17 == 3 {
                    peaked(&format!("peak{i}"), 8.0, 16)
                } else {
                    falling(&format!("fall{i}"), 16)
                }
            })
            .collect()
    }

    #[test]
    fn default_pruning_is_byte_identical_and_actually_prunes() {
        let tls = haystack(120);
        let q = updown();
        let off = EngineOptions {
            pruning_mode: PruningMode::Off,
            ..EngineOptions::default()
        };
        let engine = ShapeEngine::from_trendlines(tls);
        let want = engine.top_k_with_options(&q, 3, &off).unwrap();

        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
        ] {
            let opts = EngineOptions {
                segmenter: kind,
                ..EngineOptions::default()
            };
            let want = if kind == SegmenterKind::Dp {
                engine
                    .top_k_with_options(
                        &q,
                        3,
                        &EngineOptions {
                            segmenter: kind,
                            ..off.clone()
                        },
                    )
                    .unwrap()
            } else {
                want.clone()
            };
            let shared = SharedThresholds::new(1);
            let got = engine
                .top_k_batch_shared(&[(&q, 3)], &opts, &shared)
                .pop()
                .unwrap()
                .unwrap();
            assert_eq!(got, want, "{kind:?} diverged under default pruning");
            let snap = shared.snapshot();
            assert!(
                snap.pruned > 50,
                "{kind:?}: expected most falls pruned, got {snap:?}"
            );
            assert!(
                snap.bounded >= snap.pruned && snap.scored >= 3,
                "inconsistent counters: {snap:?}"
            );
        }
    }

    #[test]
    fn poisoned_hint_is_always_detectable() {
        // The satellite contract: a too-high threshold_hint may drop
        // results from a partial, but the cell's hint-pruned debt must
        // then fail the sender's safety check (k results with the k-th
        // strictly above the debt), so a verifying caller always notices
        // and retries hint-less — a poisoned hint can never *silently*
        // drop a true top-k result.
        let tls = haystack(60);
        let q = updown();
        let k = 3;
        let engine = ShapeEngine::from_trendlines(tls);
        let exact = engine.top_k(&q, k).unwrap();

        let shared = SharedThresholds::new(1);
        shared.seed_hint(0, 0.999); // above every real score: poison
        let got = engine
            .top_k_batch_shared(&[(&q, k)], engine.options(), &shared)
            .pop()
            .unwrap()
            .unwrap();
        assert_ne!(got, exact, "the poison must bite for this test to bite");
        let debt = shared
            .hint_pruned(0)
            .expect("hint-justified prunes must be recorded");
        let safe = got.len() == k && got[k - 1].score > debt;
        assert!(!safe, "a deficient partial must fail the safety check");

        // An honest hint (at/below the true k-th best) never trips the
        // check even when it prunes.
        let honest = SharedThresholds::new(1);
        honest.seed_hint(0, exact[k - 1].score - 1e-9);
        let got = engine
            .top_k_batch_shared(&[(&q, k)], engine.options(), &honest)
            .pop()
            .unwrap()
            .unwrap();
        assert_eq!(got, exact, "an honest hint must not change results");
        if let Some(debt) = honest.hint_pruned(0) {
            assert!(
                got[k - 1].score > debt,
                "honest-hint debt must clear the safety check"
            );
        }
    }

    #[test]
    fn unknown_udp_is_an_error() {
        let engine = ShapeEngine::from_trendlines(collection());
        let q = ShapeQuery::pattern(Pattern::Udp("mystery".into()));
        assert!(matches!(engine.top_k(&q, 1), Err(CoreError::UnknownUdp(_))));
    }

    #[test]
    fn registered_udp_runs() {
        let mut engine = ShapeEngine::from_trendlines(collection());
        // "ends higher than it starts".
        engine.register_udp(
            "net_gain",
            Arc::new(|ys: &[f64]| if ys.last() > ys.first() { 1.0 } else { -1.0 }),
        );
        let q = ShapeQuery::pattern(Pattern::Udp("net_gain".into()));
        let results = engine.top_k(&q, 4).unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn from_table_via_extract() {
        use shapesearch_datastore::table_from_series;
        let table = table_from_series(
            "stock",
            "week",
            "price",
            &[
                (
                    "rises".into(),
                    (0..8).map(|i| (i as f64, i as f64)).collect(),
                ),
                (
                    "falls".into(),
                    (0..8).map(|i| (i as f64, -(i as f64))).collect(),
                ),
            ],
        );
        let spec = VisualSpec::new("stock", "week", "price");
        let engine = ShapeEngine::new(&table, &spec).unwrap();
        let results = engine.top_k(&ShapeQuery::up(), 1).unwrap();
        assert_eq!(results[0].key, "rises");
    }
}
