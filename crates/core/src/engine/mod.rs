//! The ShapeSearch execution engine (paper §5): the pipelined
//! EXTRACT → GROUP → SEGMENT → SCORE executor solving Problem 1 — "given a
//! dataset D, a ShapeQuery Q, visual parameters R, and a scoring function SF,
//! find top k visualizations that maximize SF(Q, Vᵢ)".

pub mod group;
pub mod pushdown;
pub mod shard;
mod topk;

use crate::algo::baseline::{BaselineMethod, WholeSeriesBaseline};
use crate::algo::dp::DpSegmenter;
use crate::algo::greedy::GreedySegmenter;
use crate::algo::pruning::{run_pruned, PrunedOutcome, PruningConfig};
use crate::algo::segment_tree::SegmentTreeSegmenter;
use crate::algo::{MatchResult, Segmenter, SegmenterKind};
use crate::ast::Pattern;
use crate::chain::{expand_chains, Chain};
use crate::error::{CoreError, Result};
use crate::eval::{Evaluator, UdpFn, UdpRegistry};
use crate::score::ScoreParams;
use crate::ShapeQuery;
use group::VizData;
use shapesearch_datastore::{extract, ExtractOptions, Table, Trendline, VisualSpec};
use topk::TopK;

/// Collection size (in trendlines) at or above which a single query runs
/// with engine-level parallelism even when [`EngineOptions::parallel`] is
/// off — past this point the per-thread fan-out cost is noise next to the
/// segmentation work it spreads across cores.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Segmentation algorithm (Figure 10's competitors).
    pub segmenter: SegmenterKind,
    /// GROUP binning width in raw points per bin (1 = no binning).
    pub bin_width: usize,
    /// Enables the §5.4 push-down optimizations.
    pub pushdown: bool,
    /// Scores candidate visualizations on multiple threads.
    pub parallel: bool,
    /// Collections with at least this many trendlines are scored in
    /// parallel even when [`Self::parallel`] is `false`
    /// ([`DEFAULT_PARALLEL_THRESHOLD`] by default; `usize::MAX` disables
    /// the auto-parallel policy entirely). Like `parallel`, this changes
    /// scheduling only, never results.
    pub parallel_threshold: usize,
    /// Scoring parameters.
    pub params: ScoreParams,
    /// Two-stage pruning configuration (used by
    /// [`SegmenterKind::SegmentTreePruned`]).
    pub pruning: PruningConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            segmenter: SegmenterKind::default(),
            bin_width: 1,
            pushdown: true,
            parallel: false,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            params: ScoreParams::default(),
            pruning: PruningConfig::default(),
        }
    }
}

/// One entry of the top-k answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The `z` value of the matched visualization.
    pub key: String,
    /// Final score in [−1, 1].
    pub score: f64,
    /// Global index of the matched trendline in the *collection*: for a
    /// standalone engine this indexes [`ShapeEngine::trendlines`]; for a
    /// shard of a [`shard::ShardedEngine`] it is the shard's base offset
    /// plus the local index, so indices (and the tie order built on them)
    /// are stable no matter how the collection is partitioned.
    pub viz_index: usize,
    /// Canvas point range fitted to each unit of the winning chain (empty
    /// for whole-series baselines) — the "green line segments" the
    /// front-end overlays on results.
    pub ranges: Vec<(usize, usize)>,
}

/// The ShapeSearch execution engine over one visualization collection
/// (or over one shard of a larger, partitioned collection — see
/// [`shard::ShardedEngine`]).
#[derive(Debug)]
pub struct ShapeEngine {
    trendlines: Vec<Trendline>,
    options: EngineOptions,
    udps: UdpRegistry,
    /// Global index of `trendlines[0]` in the enclosing collection: 0 for
    /// a standalone engine, the shard's partition offset otherwise.
    /// Added to every local index on the way out so reported
    /// `viz_index`es are collection-global.
    base_index: usize,
}

impl ShapeEngine {
    /// Builds an engine by running EXTRACT over a table with the given
    /// visual parameters.
    ///
    /// # Errors
    /// Propagates extraction errors (unknown columns, non-numeric axes).
    pub fn new(table: &Table, spec: &VisualSpec) -> Result<Self> {
        let trendlines = extract(table, spec, &ExtractOptions::default())?;
        Ok(Self::from_trendlines(trendlines))
    }

    /// Builds an engine directly from trendlines (e.g. from a generator).
    pub fn from_trendlines(trendlines: Vec<Trendline>) -> Self {
        Self {
            trendlines,
            options: EngineOptions::default(),
            udps: UdpRegistry::new(),
            base_index: 0,
        }
    }

    /// Declares this engine a shard of a larger collection whose first
    /// trendline sits at global index `base`: every reported `viz_index`
    /// becomes `base + local index`, keeping indices (and tie ordering)
    /// stable across any partitioning. Returns `self` for chaining.
    #[must_use]
    pub fn with_base_index(mut self, base: usize) -> Self {
        self.base_index = base;
        self
    }

    /// The global index of this engine's first trendline (0 unless the
    /// engine is a shard).
    pub fn base_index(&self) -> usize {
        self.base_index
    }

    /// Replaces the engine options, returning `self` for chaining.
    #[must_use]
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the segmentation algorithm, returning `self` for chaining.
    #[must_use]
    pub fn with_segmenter(mut self, kind: SegmenterKind) -> Self {
        self.options.segmenter = kind;
        self
    }

    /// Registers a user-defined pattern usable as `p=udp:<name>`.
    pub fn register_udp(&mut self, name: impl Into<String>, f: UdpFn) {
        self.udps.register(name, f);
    }

    /// Registers all built-in mathematical patterns (`concave`, `convex`,
    /// `exponential`, `logarithmic`, `entropy_high`, `entropy_low`,
    /// `v_shape`, `spike`) — the §7.2 user-requested extensions.
    pub fn register_builtin_udps(&mut self) {
        crate::udps::register_builtins(&mut self.udps);
    }

    /// The extracted candidate trendlines.
    pub fn trendlines(&self) -> &[Trendline] {
        &self.trendlines
    }

    /// Current options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Mutable options access.
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Executes a ShapeQuery, returning the top `k` visualizations by score.
    ///
    /// # Errors
    /// Fails when the query references unregistered UDPs or is structurally
    /// empty.
    pub fn top_k(&self, query: &ShapeQuery, k: usize) -> Result<Vec<TopKResult>> {
        self.top_k_with_options(query, k, &self.options)
    }

    /// Executes a ShapeQuery under the given options instead of the
    /// engine's own — the seam that lets a shared, immutable engine (e.g.
    /// one behind an `Arc` in a server catalog) serve requests that pick
    /// their own algorithm or scoring parameters without cloning the
    /// extracted trendlines.
    ///
    /// # Errors
    /// Fails when the query references unregistered UDPs or is structurally
    /// empty.
    pub fn top_k_with_options(
        &self,
        query: &ShapeQuery,
        k: usize,
        options: &EngineOptions,
    ) -> Result<Vec<TopKResult>> {
        self.top_k_batch(&[(query, k)], options)
            .pop()
            .expect("one outcome per batched query")
    }

    /// Executes a whole batch of ShapeQueries over **one pass** of the
    /// trendline collection (the paper's §5 pipelining argument, lifted
    /// from sharing work *within* a query to sharing it *across* queries):
    /// the GROUP stage — normalization, binning, and the prefix statistics
    /// index — runs at most once per trendline for the entire batch, no
    /// matter how many queries reference it, instead of once per query.
    /// Only the per-query segmentation and scoring remain proportional to
    /// the batch size.
    ///
    /// Outcomes are per query, in input order, and are bit-identical to
    /// running [`Self::top_k_with_options`] on each `(query, k)` pair
    /// individually — one malformed query fails only its own slot, never
    /// the rest of the batch. Queries that need a restricted GROUP
    /// (push-down (c): fully pinned x ranges) fall back to a private
    /// per-query GROUP so their restriction cannot leak into neighbours.
    pub fn top_k_batch(
        &self,
        items: &[(&ShapeQuery, usize)],
        options: &EngineOptions,
    ) -> Vec<Result<Vec<TopKResult>>> {
        struct Prep<'q> {
            query: &'q ShapeQuery,
            k: usize,
            chains: Vec<Chain>,
            pinned: Vec<(f64, f64)>,
            /// Push-down (c): fully pinned queries GROUP privately over
            /// their own x ranges.
            restrict: bool,
        }

        let preps: Vec<Result<Prep<'_>>> = items
            .iter()
            .map(|&(query, k)| {
                self.validate(query)?;
                let chains = expand_chains(query);
                if chains.is_empty() || chains.iter().any(Chain::is_empty) {
                    return Err(CoreError::InvalidQuery("query has no segments".into()));
                }
                Ok(Prep {
                    query,
                    k,
                    chains,
                    pinned: query.pinned_x_ranges(),
                    restrict: options.pushdown && pushdown::fully_pinned(query),
                })
            })
            .collect();

        // Push-down (a): a query considers a trendline only when the
        // trendline covers the query's pinned x ranges.
        let wants = |p: &Prep<'_>, t: &Trendline| {
            !options.pushdown || p.pinned.is_empty() || pushdown::covers_ranges(t, &p.pinned)
        };

        // Shared GROUP: each trendline is normalized/binned/indexed at most
        // once for the whole batch. A trendline every query prunes (or that
        // only restricted queries touch) is never GROUPed at all, so the
        // single-query case keeps its pre-batch work profile exactly.
        let shared: Vec<Option<VizData>> = self
            .trendlines
            .iter()
            .enumerate()
            .map(|(source, t)| {
                preps
                    .iter()
                    .flatten()
                    .any(|p| !p.restrict && wants(p, t))
                    .then(|| VizData::from_trendline(t, source, options.bin_width))
                    .flatten()
            })
            .collect();

        preps
            .into_iter()
            .map(|prep| {
                let p = prep?;
                let private: Vec<VizData>;
                let vizzes: Vec<&VizData> = if p.restrict {
                    private = self
                        .trendlines
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| wants(&p, t))
                        .filter_map(|(source, t)| {
                            VizData::from_trendline_restricted(
                                t,
                                source,
                                options.bin_width,
                                &p.pinned,
                            )
                        })
                        .collect();
                    private.iter().collect()
                } else {
                    self.trendlines
                        .iter()
                        .zip(&shared)
                        .filter(|(t, _)| wants(&p, t))
                        .filter_map(|(_, v)| v.as_ref())
                        .collect()
                };

                let results = match options.segmenter {
                    SegmenterKind::SegmentTreePruned => {
                        self.run_pruned_driver(&vizzes, p.query, &p.chains, p.k, options)
                    }
                    kind => self.run_per_viz(&vizzes, &p.chains, kind, p.k, options),
                };

                Ok(results
                    .into_sorted()
                    .into_iter()
                    .filter(|s| s.result.score > -1.0 || !s.result.ranges.is_empty())
                    .map(|s| TopKResult {
                        key: self.trendlines[s.viz].key.clone(),
                        score: s.result.score,
                        viz_index: self.base_index + s.viz,
                        ranges: s.result.ranges,
                    })
                    .collect())
            })
            .collect()
    }

    fn run_per_viz(
        &self,
        vizzes: &[&VizData],
        chains: &[Chain],
        kind: SegmenterKind,
        k: usize,
        options: &EngineOptions,
    ) -> TopK {
        let score_one = |viz: &VizData| -> MatchResult {
            let ev = Evaluator::new(viz, &options.params, &self.udps);
            if options.pushdown && pushdown::eager_discard(&ev, chains) {
                return MatchResult::infeasible();
            }
            match kind {
                SegmenterKind::Dp => DpSegmenter.match_viz(&ev, chains),
                SegmenterKind::SegmentTree => {
                    SegmentTreeSegmenter::default().match_viz(&ev, chains)
                }
                SegmenterKind::Greedy => GreedySegmenter::new().match_viz(&ev, chains),
                SegmenterKind::Dtw => WholeSeriesBaseline {
                    method: BaselineMethod::Dtw,
                }
                .match_viz(&ev, chains),
                SegmenterKind::Euclidean => WholeSeriesBaseline {
                    method: BaselineMethod::Euclidean,
                }
                .match_viz(&ev, chains),
                SegmenterKind::SegmentTreePruned => unreachable!("handled by the pruned driver"),
            }
        };

        let mut topk = TopK::new(k);
        let parallel = options.parallel || vizzes.len() >= options.parallel_threshold;
        if parallel && vizzes.len() > 1 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(vizzes.len());
            let chunk = vizzes.len().div_ceil(threads);
            let mut all: Vec<(usize, MatchResult)> = Vec::with_capacity(vizzes.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = vizzes
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|v| (v.source, score_one(v)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    all.extend(h.join().expect("scoring thread panicked"));
                }
            });
            for (src, r) in all {
                topk.push(src, r);
            }
        } else {
            for v in vizzes {
                topk.push(v.source, score_one(v));
            }
        }
        topk
    }

    fn run_pruned_driver(
        &self,
        vizzes: &[&VizData],
        query: &ShapeQuery,
        chains: &[Chain],
        k: usize,
        options: &EngineOptions,
    ) -> TopK {
        let outcomes = run_pruned(
            vizzes,
            query,
            chains,
            &options.params,
            &self.udps,
            k,
            &options.pruning,
        );
        let mut topk = TopK::new(k);
        for (viz, outcome) in vizzes.iter().zip(outcomes) {
            if let PrunedOutcome::Scored(r) = outcome {
                topk.push(viz.source, r);
            }
        }
        topk
    }

    /// Validates a query against this engine (UDP registration).
    fn validate(&self, query: &ShapeQuery) -> Result<()> {
        for seg in query.segments() {
            if let Some(Pattern::Udp(name)) = &seg.pattern {
                if !self.udps.contains(name) {
                    return Err(CoreError::UnknownUdp(name.clone()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ShapeSegment;
    use std::sync::Arc;

    fn peaked(key: &str, peak_at: f64, n: usize) -> Trendline {
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = i as f64;
                let y = if x < peak_at { x } else { 2.0 * peak_at - x };
                (x, y)
            })
            .collect();
        Trendline::from_pairs(key, &pairs)
    }

    fn falling(key: &str, n: usize) -> Trendline {
        let pairs: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, (n - i) as f64)).collect();
        Trendline::from_pairs(key, &pairs)
    }

    fn collection() -> Vec<Trendline> {
        vec![
            peaked("peak_mid", 8.0, 16),
            falling("fall_a", 16),
            peaked("peak_late", 12.0, 16),
            falling("fall_b", 16),
        ]
    }

    fn updown() -> ShapeQuery {
        ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down()])
    }

    #[test]
    fn top_k_ranks_peaks_first() {
        let engine = ShapeEngine::from_trendlines(collection());
        let results = engine.top_k(&updown(), 2).unwrap();
        assert_eq!(results.len(), 2);
        let keys: Vec<&str> = results.iter().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"peak_mid"));
        assert!(keys.contains(&"peak_late"));
        assert!(results[0].score >= results[1].score);
        assert!(!results[0].ranges.is_empty());
    }

    #[test]
    fn all_segmenters_agree_on_easy_data() {
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
        ] {
            let engine = ShapeEngine::from_trendlines(collection()).with_segmenter(kind);
            let results = engine.top_k(&updown(), 2).unwrap();
            let keys: Vec<&str> = results.iter().map(|r| r.key.as_str()).collect();
            assert!(
                keys.contains(&"peak_mid") && keys.contains(&"peak_late"),
                "{kind:?} got {keys:?}"
            );
        }
        // The whole-series baselines compare against a symmetric prototype;
        // the asymmetric late peak may rank below (that weakness is exactly
        // what §7.3 measures). They must still put a peak first.
        for kind in [SegmenterKind::Dtw, SegmenterKind::Euclidean] {
            let engine = ShapeEngine::from_trendlines(collection()).with_segmenter(kind);
            let results = engine.top_k(&updown(), 2).unwrap();
            assert!(
                results[0].key.starts_with("peak"),
                "{kind:?} ranked {} first",
                results[0].key
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let opts = EngineOptions {
            parallel: true,
            ..EngineOptions::default()
        };
        let par = ShapeEngine::from_trendlines(collection()).with_options(opts);
        let seq = ShapeEngine::from_trendlines(collection());
        let a = par.top_k(&updown(), 4).unwrap();
        let b = seq.top_k(&updown(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pushdown_prunes_uncovered_trendlines() {
        let mut tls = collection();
        // A short trendline that does not reach x = 12.
        tls.push(Trendline::from_pairs(
            "short",
            &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)],
        ));
        let engine = ShapeEngine::from_trendlines(tls);
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 10.0, 14.0)),
            ShapeQuery::down(),
        ]);
        let results = engine.top_k(&q, 10).unwrap();
        assert!(results.iter().all(|r| r.key != "short"));
    }

    #[test]
    fn pushdown_on_off_same_results() {
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 8.0)),
            ShapeQuery::down(),
        ]);
        let on = ShapeEngine::from_trendlines(collection());
        let off_opts = EngineOptions {
            pushdown: false,
            ..EngineOptions::default()
        };
        let off = ShapeEngine::from_trendlines(collection()).with_options(off_opts);
        let a = on.top_k(&q, 2).unwrap();
        let b = off.top_k(&q, 2).unwrap();
        let ka: Vec<&str> = a.iter().map(|r| r.key.as_str()).collect();
        let kb: Vec<&str> = b.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn batch_matches_sequential_for_every_segmenter() {
        let queries = [
            updown(),
            ShapeQuery::concat(vec![ShapeQuery::down(), ShapeQuery::up()]),
            ShapeQuery::concat(vec![
                ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 8.0)),
                ShapeQuery::down(),
            ]),
            ShapeQuery::down(),
        ];
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
            SegmenterKind::Dtw,
            SegmenterKind::Euclidean,
        ] {
            let engine = ShapeEngine::from_trendlines(collection()).with_segmenter(kind);
            let items: Vec<(&ShapeQuery, usize)> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| (q, i + 1))
                .collect();
            let batched = engine.top_k_batch(&items, engine.options());
            assert_eq!(batched.len(), queries.len());
            for ((q, k), got) in items.iter().zip(batched) {
                let want = engine.top_k(q, *k).unwrap();
                assert_eq!(got.unwrap(), want, "{kind:?} diverged on {q}");
            }
        }
    }

    #[test]
    fn batch_isolates_per_query_errors() {
        let engine = ShapeEngine::from_trendlines(collection());
        let good = updown();
        let bad = ShapeQuery::pattern(Pattern::Udp("mystery".into()));
        let outcomes = engine.top_k_batch(&[(&good, 2), (&bad, 2), (&good, 1)], engine.options());
        assert!(outcomes[0].is_ok());
        assert!(matches!(outcomes[1], Err(CoreError::UnknownUdp(_))));
        let solo = engine.top_k(&good, 1).unwrap();
        assert_eq!(outcomes[2].as_ref().unwrap(), &solo);
    }

    #[test]
    fn unknown_udp_is_an_error() {
        let engine = ShapeEngine::from_trendlines(collection());
        let q = ShapeQuery::pattern(Pattern::Udp("mystery".into()));
        assert!(matches!(engine.top_k(&q, 1), Err(CoreError::UnknownUdp(_))));
    }

    #[test]
    fn registered_udp_runs() {
        let mut engine = ShapeEngine::from_trendlines(collection());
        // "ends higher than it starts".
        engine.register_udp(
            "net_gain",
            Arc::new(|ys: &[f64]| if ys.last() > ys.first() { 1.0 } else { -1.0 }),
        );
        let q = ShapeQuery::pattern(Pattern::Udp("net_gain".into()));
        let results = engine.top_k(&q, 4).unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn from_table_via_extract() {
        use shapesearch_datastore::table_from_series;
        let table = table_from_series(
            "stock",
            "week",
            "price",
            &[
                (
                    "rises".into(),
                    (0..8).map(|i| (i as f64, i as f64)).collect(),
                ),
                (
                    "falls".into(),
                    (0..8).map(|i| (i as f64, -(i as f64))).collect(),
                ),
            ],
        );
        let spec = VisualSpec::new("stock", "week", "price");
        let engine = ShapeEngine::new(&table, &spec).unwrap();
        let results = engine.top_k(&ShapeQuery::up(), 1).unwrap();
        assert_eq!(results[0].key, "rises");
    }
}
