//! Stage timing hooks: the dependency-free seam the engine reports
//! per-stage latencies through.
//!
//! The core crate stays free of any metrics/export machinery — it only
//! calls [`StageObserver::stage`] with a stage tag and a duration, and
//! embedders (the server's `/metrics` registries, a test harness, a
//! benchmark) decide what to do with the samples. The default
//! [`NoopObserver`] compiles to nothing, so un-observed executions pay
//! only a virtual call per stage, never any aggregation cost.

/// Engine pipeline stages that report timings (the observable subset of
/// the paper's EXTRACT → GROUP → SEGMENT → SCORE pipeline; EXTRACT runs
/// at registration time and is not on the query path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStage {
    /// The shared GROUP stage: normalization, binning, and the prefix
    /// statistics index over the trendline collection (at most once per
    /// batch — see `ShapeEngine::top_k_batch`).
    Group,
    /// One query's SEGMENT + SCORE pass over the candidate
    /// visualizations (per query, covers the whole `run_per_viz` walk
    /// including any parallel fan-out).
    SegmentScore,
    /// §6.3 bound computation inside the pruning driver (accumulated
    /// over every bound-checked candidate; reported per candidate).
    PruneBound,
}

impl EngineStage {
    /// Stable lowercase identifier used in span names and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            EngineStage::Group => "group",
            EngineStage::SegmentScore => "segment_score",
            EngineStage::PruneBound => "prune_bound",
        }
    }
}

/// A sink for engine stage timings.
///
/// Implementations must be cheap and lock-free on the hot path — the
/// engine calls [`Self::stage`] from scoring threads (possibly many
/// concurrently, hence the `Sync` bound) and from inside the pruning
/// driver's per-candidate bound check.
pub trait StageObserver: Sync {
    /// Reports that `stage` work took `micros` microseconds. One
    /// invocation per timed region, not a running total; implementations
    /// aggregate.
    fn stage(&self, stage: EngineStage, micros: u64);
}

/// The default observer: discards every sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl StageObserver for NoopObserver {
    fn stage(&self, _stage: EngineStage, _micros: u64) {}
}

/// The shared no-op instance un-observed entry points pass down.
pub static NOOP_OBSERVER: NoopObserver = NoopObserver;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(EngineStage::Group.name(), "group");
        assert_eq!(EngineStage::SegmentScore.name(), "segment_score");
        assert_eq!(EngineStage::PruneBound.name(), "prune_bound");
    }

    #[test]
    fn observers_receive_samples() {
        #[derive(Default)]
        struct Sum(AtomicU64);
        impl StageObserver for Sum {
            fn stage(&self, _stage: EngineStage, micros: u64) {
                self.0.fetch_add(micros, Ordering::Relaxed);
            }
        }
        let sum = Sum::default();
        sum.stage(EngineStage::Group, 3);
        sum.stage(EngineStage::PruneBound, 4);
        assert_eq!(sum.0.load(Ordering::Relaxed), 7);
        NOOP_OBSERVER.stage(EngineStage::SegmentScore, 99);
    }
}
