//! Top-k selection: a bounded min-heap over match scores with deterministic
//! tie-breaking (lower visualization index wins ties, so runs are
//! reproducible).
//!
//! [`rank`] is the single ordering contract: the per-collection heap, the
//! final sort, and the cross-shard merge in [`crate::engine::shard`] all
//! compare candidates through it, which is what makes sharded execution
//! return byte-identical results (including tie order) to an unsharded run.

use crate::algo::MatchResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The deterministic result ordering: higher score first, ties broken by
/// the lower (global) visualization index. Returns `Less` when `a` ranks
/// ahead of `b`, so sorting by `rank` yields descending score order.
pub(crate) fn rank(a_score: f64, a_viz: usize, b_score: f64, b_viz: usize) -> Ordering {
    b_score.total_cmp(&a_score).then_with(|| a_viz.cmp(&b_viz))
}

/// One scored candidate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Scored {
    pub viz: usize,
    pub result: MatchResult,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        // `rank` orders best-first; the heap wants best = greatest, so flip.
        rank(other.result.score, other.viz, self.result.score, self.viz)
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collector of the k best candidates.
#[derive(Debug)]
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<std::cmp::Reverse<Scored>>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps only the k best.
    pub fn push(&mut self, viz: usize, result: MatchResult) {
        if self.k == 0 {
            return;
        }
        self.heap.push(std::cmp::Reverse(Scored { viz, result }));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The current k-th best score — the proven pruning lower bound the
    /// engine publishes into its shared
    /// [`crate::algo::pruning::ThresholdCell`].
    ///
    /// **Pre-fill semantics:** returns `f64::NEG_INFINITY` until `k`
    /// candidates have been admitted. That sentinel means "no pruning
    /// possible yet" — fewer than k scores exist, so *nothing* can be
    /// proven out of the top k. Consumers must treat it as the explicit
    /// absence of a threshold (`PruningDriver` skips its bound check and
    /// `publish` drops the value), never compare candidate bounds
    /// against it.
    // Not called on the engine's hot path anymore — thresholds are now
    // proven through the ThresholdCell score pool — but kept (with its
    // tests) for embedders that publish an already-collected k-th best
    // via `PruningDriver::publish`.
    #[allow(dead_code)]
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap
                .peek()
                .map_or(f64::NEG_INFINITY, |s| s.0.result.score)
        }
    }

    /// Drains into descending score order.
    pub fn into_sorted(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(score: f64) -> MatchResult {
        MatchResult {
            score,
            ranges: Vec::new(),
        }
    }

    #[test]
    fn keeps_k_best_in_order() {
        let mut tk = TopK::new(3);
        for (i, s) in [0.1, 0.9, -0.5, 0.7, 0.3].into_iter().enumerate() {
            tk.push(i, res(s));
        }
        let out = tk.into_sorted();
        let scores: Vec<f64> = out.iter().map(|s| s.result.score).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.3]);
        assert_eq!(out[0].viz, 1);
    }

    #[test]
    fn threshold_tracks_kth_best() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), f64::NEG_INFINITY);
        tk.push(0, res(0.5));
        assert_eq!(tk.threshold(), f64::NEG_INFINITY);
        tk.push(1, res(0.8));
        assert_eq!(tk.threshold(), 0.5);
        tk.push(2, res(0.9));
        assert_eq!(tk.threshold(), 0.8);
    }

    #[test]
    fn ties_break_by_lower_index() {
        let mut tk = TopK::new(2);
        tk.push(5, res(0.5));
        tk.push(1, res(0.5));
        tk.push(3, res(0.5));
        let out = tk.into_sorted();
        assert_eq!(out[0].viz, 1);
        assert_eq!(out[1].viz, 3);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut tk = TopK::new(0);
        tk.push(0, res(1.0));
        assert!(tk.into_sorted().is_empty());
    }
}
