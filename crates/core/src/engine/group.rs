//! The GROUP physical operator (paper §5.3, step 2).
//!
//! GROUP turns each extracted trendline into the engine's internal
//! representation: coordinates are normalized onto the rendering canvas
//! (x and y each mapped to `[0, 1]`, matching how the visualization is
//! perceived on screen — a slope of 1 is the 45° diagonal), optionally binned
//! ("each visualization is approximated using a sequence of small
//! line-segments of length b, the binning width"), and indexed with prefix
//! summarized statistics so any sub-range's fitted line is O(1)
//! (Theorem 5.1).
//!
//! Push-down optimization (c) of §5.4 is supported via
//! [`VizData::from_trendline_restricted`]: statistics are computed only over
//! the x ranges the query references.
//!
//! *Normalization note.* The paper applies z-score normalization when the
//! query has no y constraints. Because all pattern scores are functions of
//! the *perceived* slope, this implementation normalizes both axes onto the
//! unit canvas, which is invariant to affine y transforms — it subsumes
//! z-normalization for slope-based scoring while keeping raw coordinate
//! mappings available for y-location constraints.

use crate::stats::StatsIndex;
use shapesearch_datastore::Trendline;

/// A candidate visualization prepared for segmentation and scoring.
#[derive(Debug, Clone)]
pub struct VizData {
    /// The `z` value identifying the visualization.
    pub key: String,
    /// Canvas x coordinates in `[0, 1]`, ascending.
    pub xs: Vec<f64>,
    /// Canvas y coordinates in `[0, 1]`.
    pub ys: Vec<f64>,
    /// Raw x domain (min, max) for mapping query literals.
    pub raw_x: (f64, f64),
    /// Raw y domain (min, max).
    pub raw_y: (f64, f64),
    /// Prefix summarized statistics over the canvas coordinates.
    pub stats: StatsIndex,
    /// Smallest slope among the intervals between adjacent canvas points
    /// (the leaf level of the SegmentTree). Cached at GROUP time from the
    /// prefix sums so the §6.3 score bounds are O(1) per query: any merged
    /// range's fitted slope is a convex combination of its interval slopes
    /// (the "law of the triangle" of Theorem 6.4), so it lies in
    /// `[slope_min, slope_max]`.
    pub slope_min: f64,
    /// Largest interval slope; see [`Self::slope_min`].
    pub slope_max: f64,
    /// Index of the source trendline in the engine's collection.
    pub source: usize,
}

impl VizData {
    /// Builds the GROUP output for a trendline, binning every `bin` raw
    /// points into one canvas point (bin = 1 keeps all points). Returns
    /// `None` when fewer than two canvas points remain.
    pub fn from_trendline(t: &Trendline, source: usize, bin: usize) -> Option<Self> {
        Self::build(t, source, bin, None)
    }

    /// GROUP with push-down (c): only points whose raw x falls inside one of
    /// `ranges` are retained (normalization still uses the full extents so
    /// scores are identical to unrestricted execution over those ranges).
    pub fn from_trendline_restricted(
        t: &Trendline,
        source: usize,
        bin: usize,
        ranges: &[(f64, f64)],
    ) -> Option<Self> {
        Self::build(t, source, bin, Some(ranges))
    }

    fn build(
        t: &Trendline,
        source: usize,
        bin: usize,
        restrict: Option<&[(f64, f64)]>,
    ) -> Option<Self> {
        if t.points.len() < 2 {
            return None;
        }
        let bin = bin.max(1);
        let raw_x = extent(t.points.iter().map(|p| p.x));
        let raw_y = extent(t.points.iter().map(|p| p.y));
        let x_span = span(raw_x);
        let y_span = span(raw_y);

        let mut xs = Vec::with_capacity(t.points.len() / bin + 1);
        let mut ys = Vec::with_capacity(xs.capacity());
        let mut chunk_x = 0.0;
        let mut chunk_y = 0.0;
        let mut chunk_n = 0usize;
        for p in &t.points {
            if let Some(ranges) = restrict {
                if !ranges.iter().any(|&(lo, hi)| p.x >= lo && p.x <= hi) {
                    continue;
                }
            }
            chunk_x += (p.x - raw_x.0) / x_span;
            chunk_y += (p.y - raw_y.0) / y_span;
            chunk_n += 1;
            if chunk_n == bin {
                xs.push(chunk_x / bin as f64);
                ys.push(chunk_y / bin as f64);
                chunk_x = 0.0;
                chunk_y = 0.0;
                chunk_n = 0;
            }
        }
        if chunk_n > 0 {
            xs.push(chunk_x / chunk_n as f64);
            ys.push(chunk_y / chunk_n as f64);
        }
        if xs.len() < 2 {
            return None;
        }
        let stats = StatsIndex::new(&xs, &ys);
        let (slope_min, slope_max) = slope_extent(&stats);
        Some(Self {
            key: t.key.clone(),
            xs,
            ys,
            raw_x,
            raw_y,
            stats,
            slope_min,
            slope_max,
            source,
        })
    }

    /// Number of canvas points.
    pub fn n(&self) -> usize {
        self.xs.len()
    }

    /// A coarsened copy with at most `target_points` points (§6.3's "a
    /// DP-based scoring on a subset of points distributed uniformly across
    /// the visualization"; the engine's pruning driver now scores its
    /// stage-1 sample exactly so the threshold stays a proven bound, but
    /// coarsening remains available for approximate embedders).
    pub fn coarsened(&self, target_points: usize) -> VizData {
        let target = target_points.max(2);
        if self.n() <= target {
            return self.clone();
        }
        let bin = self.n().div_ceil(target);
        let mut xs = Vec::with_capacity(target);
        let mut ys = Vec::with_capacity(target);
        for chunk in self.xs.chunks(bin).zip(self.ys.chunks(bin)) {
            let (cx, cy) = chunk;
            xs.push(cx.iter().sum::<f64>() / cx.len() as f64);
            ys.push(cy.iter().sum::<f64>() / cy.len() as f64);
        }
        let stats = StatsIndex::new(&xs, &ys);
        let (slope_min, slope_max) = slope_extent(&stats);
        VizData {
            key: self.key.clone(),
            xs,
            ys,
            raw_x: self.raw_x,
            raw_y: self.raw_y,
            stats,
            slope_min,
            slope_max,
            source: self.source,
        }
    }

    /// Maps a raw x value onto the canvas.
    pub fn norm_x(&self, raw: f64) -> f64 {
        (raw - self.raw_x.0) / span(self.raw_x)
    }

    /// Maps a raw y value onto the canvas.
    pub fn norm_y(&self, raw: f64) -> f64 {
        (raw - self.raw_y.0) / span(self.raw_y)
    }

    /// Index of the canvas point closest to raw x value `raw`, clamped to
    /// the valid range.
    pub fn x_to_index(&self, raw: f64) -> usize {
        let target = self.norm_x(raw);
        match self.xs.binary_search_by(|probe| probe.total_cmp(&target)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) if i >= self.xs.len() => self.xs.len() - 1,
            Err(i) => {
                // Choose the nearer neighbour.
                if (self.xs[i] - target).abs() < (target - self.xs[i - 1]).abs() {
                    i
                } else {
                    i - 1
                }
            }
        }
    }

    /// Converts an x-axis width (raw units) into a number of canvas point
    /// steps (at least 1).
    pub fn width_to_points(&self, raw_width: f64) -> usize {
        let frac = raw_width / span(self.raw_x);
        let avg_step = 1.0 / (self.n() - 1) as f64;
        ((frac / avg_step).round() as usize).max(1)
    }
}

/// `(min, max)` of the slopes of the intervals between adjacent points —
/// the leaf level of the SegmentTree, read off the prefix sums. The index
/// always holds at least two points, so both extremes exist.
fn slope_extent(stats: &StatsIndex) -> (f64, f64) {
    extent((0..stats.len() - 1).map(|i| stats.slope(i, i + 1)))
}

fn extent(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Width of an extent, guarded against zero (constant series).
fn span((lo, hi): (f64, f64)) -> f64 {
    let s = hi - lo;
    if s > 0.0 {
        s
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trend(pairs: &[(f64, f64)]) -> Trendline {
        Trendline::from_pairs("t", pairs)
    }

    #[test]
    fn normalizes_to_unit_canvas() {
        let t = trend(&[(10.0, 100.0), (20.0, 300.0), (30.0, 200.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        assert_eq!(v.xs, vec![0.0, 0.5, 1.0]);
        assert_eq!(v.ys, vec![0.0, 1.0, 0.5]);
        assert_eq!(v.raw_x, (10.0, 30.0));
        assert_eq!(v.raw_y, (100.0, 300.0));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let t = trend(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        assert!(v.ys.iter().all(|&y| y == 0.0));
    }

    #[test]
    fn binning_averages_chunks() {
        let t = trend(&[(0.0, 0.0), (1.0, 4.0), (2.0, 0.0), (3.0, 4.0)]);
        let v = VizData::from_trendline(&t, 0, 2).unwrap();
        assert_eq!(v.n(), 2);
        // First bin: x mean of (0, 1/3), y mean of (0, 1) = 0.5.
        assert!((v.ys[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_is_none() {
        let t = trend(&[(0.0, 1.0)]);
        assert!(VizData::from_trendline(&t, 0, 1).is_none());
        let t = trend(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert!(VizData::from_trendline(&t, 0, 3).is_none());
    }

    #[test]
    fn x_to_index_picks_nearest() {
        let t = trend(&[(0.0, 0.0), (10.0, 1.0), (20.0, 2.0), (30.0, 1.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        assert_eq!(v.x_to_index(0.0), 0);
        assert_eq!(v.x_to_index(9.0), 1);
        assert_eq!(v.x_to_index(14.0), 1);
        assert_eq!(v.x_to_index(16.0), 2);
        assert_eq!(v.x_to_index(35.0), 3);
        assert_eq!(v.x_to_index(-5.0), 0);
    }

    #[test]
    fn width_conversion() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        // 2 raw-x units = half the span = 2 of the 4 steps.
        assert_eq!(v.width_to_points(2.0), 2);
        assert_eq!(v.width_to_points(0.1), 1); // floor at 1
    }

    #[test]
    fn restriction_keeps_only_ranged_points() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        let v = VizData::from_trendline_restricted(&t, 0, 1, &[(1.0, 3.0)]).unwrap();
        assert_eq!(v.n(), 3);
        // Normalization still spans the full extents.
        assert_eq!(v.xs, vec![0.25, 0.5, 0.75]);
    }

    #[test]
    fn restriction_below_two_points_is_none() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert!(VizData::from_trendline_restricted(&t, 0, 1, &[(0.9, 1.1)]).is_none());
    }

    #[test]
    fn coarsened_reduces_points_and_preserves_shape() {
        let pairs: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let v = VizData::from_trendline(&trend(&pairs), 0, 1).unwrap();
        let c = v.coarsened(10);
        assert!(c.n() <= 10);
        assert!(c.n() >= 2);
        // A straight diagonal stays a straight diagonal.
        assert!((c.stats.slope(0, c.n() - 1) - 1.0).abs() < 1e-9);
        // Raw extents preserved for literal mapping.
        assert_eq!(c.raw_x, v.raw_x);
        assert_eq!(c.raw_y, v.raw_y);
    }

    #[test]
    fn coarsened_is_noop_when_small_enough() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        let c = v.coarsened(10);
        assert_eq!(c.n(), 3);
        assert_eq!(c.xs, v.xs);
    }

    #[test]
    fn slope_extremes_cover_every_interval() {
        let t = trend(&[(0.0, 0.0), (1.0, 3.0), (2.0, 1.0), (3.0, 2.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..v.n() - 1 {
            let s = v.stats.slope(i, i + 1);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert_eq!(v.slope_min, lo);
        assert_eq!(v.slope_max, hi);
        assert!(v.slope_min < 0.0 && v.slope_max > 0.0);
        // A monotone line's extremes collapse onto one slope.
        let mono = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let v = VizData::from_trendline(&mono, 0, 1).unwrap();
        assert!((v.slope_min - v.slope_max).abs() < 1e-12);
    }

    #[test]
    fn stats_index_slope_on_canvas() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        // Canvas diagonal: slope 1.
        assert!((v.stats.slope(0, 2) - 1.0).abs() < 1e-12);
    }
}
