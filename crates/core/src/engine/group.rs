//! The GROUP physical operator (paper §5.3, step 2).
//!
//! GROUP turns each extracted trendline into the engine's internal
//! representation: coordinates are normalized onto the rendering canvas
//! (x and y each mapped to `[0, 1]`, matching how the visualization is
//! perceived on screen — a slope of 1 is the 45° diagonal), optionally binned
//! ("each visualization is approximated using a sequence of small
//! line-segments of length b, the binning width"), and indexed with prefix
//! summarized statistics so any sub-range's fitted line is O(1)
//! (Theorem 5.1).
//!
//! The prefix statistics live in a shared structure-of-arrays
//! [`ColumnarArena`] (see [`crate::columnar`]): [`group_collection`]
//! GROUPs a whole collection into one arena and every [`VizData`] is an
//! `Arc`-shared handle (slot + offsets) into it, which is what lets the
//! scoring kernels stream over contiguous columns instead of chasing
//! per-viz `Vec`s.
//!
//! Push-down optimization (c) of §5.4 is supported via
//! [`VizData::from_trendline_restricted`]: statistics are computed only over
//! the x ranges the query references.
//!
//! *Normalization note.* The paper applies z-score normalization when the
//! query has no y constraints. Because all pattern scores are functions of
//! the *perceived* slope, this implementation normalizes both axes onto the
//! unit canvas, which is invariant to affine y transforms — it subsumes
//! z-normalization for slope-based scoring while keeping raw coordinate
//! mappings available for y-location constraints.

use crate::columnar::{ArenaBuilder, ColumnarArena};
use crate::stats::SummaryStats;
use shapesearch_datastore::Trendline;
use std::sync::Arc;

/// A candidate visualization prepared for segmentation and scoring: an
/// `Arc`-shared handle into a [`ColumnarArena`] slot plus the per-viz
/// scalars scoring needs (raw extents, slope extremes, source index).
#[derive(Debug, Clone)]
pub struct VizData {
    /// The `z` value identifying the visualization.
    pub key: String,
    /// Raw x domain (min, max) for mapping query literals.
    pub raw_x: (f64, f64),
    /// Raw y domain (min, max).
    pub raw_y: (f64, f64),
    /// Smallest slope among the intervals between adjacent canvas points
    /// (the leaf level of the SegmentTree). Cached at GROUP time from the
    /// prefix sums so the §6.3 score bounds are O(1) per query: any merged
    /// range's fitted slope is a convex combination of its interval slopes
    /// (the "law of the triangle" of Theorem 6.4), so it lies in
    /// `[slope_min, slope_max]`.
    pub slope_min: f64,
    /// Largest interval slope; see [`Self::slope_min`].
    pub slope_max: f64,
    /// Index of the source trendline in the engine's collection.
    pub source: usize,
    arena: Arc<ColumnarArena>,
    slot: usize,
}

/// The normalized canvas points of one trendline, pre-arena.
struct Normalized {
    xs: Vec<f64>,
    ys: Vec<f64>,
    raw_x: (f64, f64),
    raw_y: (f64, f64),
}

/// GROUPs a whole collection into **one shared arena**: every returned
/// [`VizData`] handle (index = source index; `None` where GROUP rejects
/// the trendline) points into the same `Arc`-shared columns. This is the
/// engine's batch/cached GROUP path — per-viz construction stays
/// available via [`VizData::from_trendline`], which builds a one-slot
/// arena with identical bits.
pub fn group_collection(trendlines: &[Trendline], bin: usize) -> Vec<Option<VizData>> {
    let parts: Vec<Option<Normalized>> =
        trendlines.iter().map(|t| normalize(t, bin, None)).collect();
    let points = parts.iter().flatten().map(|p| p.xs.len()).sum::<usize>();
    let mut builder = ArenaBuilder::with_capacity(trendlines.len(), points);
    let slots: Vec<Option<usize>> = parts
        .iter()
        .map(|p| p.as_ref().map(|p| builder.push_viz(&p.xs, &p.ys)))
        .collect();
    let arena = Arc::new(builder.finish());
    parts
        .into_iter()
        .zip(slots)
        .enumerate()
        .map(|(source, (part, slot))| {
            let (part, slot) = (part?, slot?);
            Some(VizData::from_slot(
                trendlines[source].key.clone(),
                part,
                source,
                &arena,
                slot,
            ))
        })
        .collect()
}

/// Rebuilds the GROUP handles for `trendlines` over a pre-built arena —
/// the snapshot load path ([`crate::snapshot`]). Slot assignments come
/// from the snapshot (`None` where GROUP rejected the trendline at
/// build time) and the per-viz raw extents are recomputed with the
/// exact `extent` fold [`normalize`] uses, so the returned handles are
/// bit-identical to an eager [`group_collection`] over the same
/// trendlines.
pub(crate) fn vizzes_from_arena(
    trendlines: &[Trendline],
    slots: &[Option<usize>],
    arena: &Arc<ColumnarArena>,
) -> Vec<Option<VizData>> {
    debug_assert_eq!(trendlines.len(), slots.len());
    trendlines
        .iter()
        .zip(slots)
        .enumerate()
        .map(|(source, (t, slot))| {
            let slot = (*slot)?;
            let part = Normalized {
                xs: Vec::new(),
                ys: Vec::new(),
                raw_x: extent(t.points.iter().map(|p| p.x)),
                raw_y: extent(t.points.iter().map(|p| p.y)),
            };
            Some(VizData::from_slot(t.key.clone(), part, source, arena, slot))
        })
        .collect()
}

impl VizData {
    /// Builds the GROUP output for a trendline, binning every `bin` raw
    /// points into one canvas point (bin = 1 keeps all points). Returns
    /// `None` when fewer than two canvas points remain.
    pub fn from_trendline(t: &Trendline, source: usize, bin: usize) -> Option<Self> {
        Self::build(t, source, bin, None)
    }

    /// GROUP with push-down (c): only points whose raw x falls inside one of
    /// `ranges` are retained (normalization still uses the full extents so
    /// scores are identical to unrestricted execution over those ranges).
    pub fn from_trendline_restricted(
        t: &Trendline,
        source: usize,
        bin: usize,
        ranges: &[(f64, f64)],
    ) -> Option<Self> {
        Self::build(t, source, bin, Some(ranges))
    }

    fn build(
        t: &Trendline,
        source: usize,
        bin: usize,
        restrict: Option<&[(f64, f64)]>,
    ) -> Option<Self> {
        let part = normalize(t, bin, restrict)?;
        let mut builder = ArenaBuilder::with_capacity(1, part.xs.len());
        let slot = builder.push_viz(&part.xs, &part.ys);
        let arena = Arc::new(builder.finish());
        Some(Self::from_slot(t.key.clone(), part, source, &arena, slot))
    }

    fn from_slot(
        key: String,
        part: Normalized,
        source: usize,
        arena: &Arc<ColumnarArena>,
        slot: usize,
    ) -> Self {
        let (slope_min, slope_max) = arena.slope_extent(slot);
        Self {
            key,
            raw_x: part.raw_x,
            raw_y: part.raw_y,
            slope_min,
            slope_max,
            source,
            arena: Arc::clone(arena),
            slot,
        }
    }

    /// Number of canvas points.
    pub fn n(&self) -> usize {
        self.arena.n(self.slot)
    }

    /// Canvas x coordinates in `[0, 1]`, ascending.
    pub fn xs(&self) -> &[f64] {
        self.arena.xs(self.slot)
    }

    /// Canvas y coordinates in `[0, 1]`.
    pub fn ys(&self) -> &[f64] {
        self.arena.ys(self.slot)
    }

    /// Fitted slope over the inclusive canvas point range `[i, j]`
    /// (O(1) from the prefix columns).
    #[inline]
    pub fn slope(&self, i: usize, j: usize) -> f64 {
        self.arena.slope(self.slot, i, j)
    }

    /// Summarized statistics over the inclusive canvas point range
    /// `[i, j]`.
    #[inline]
    pub fn range_stats(&self, i: usize, j: usize) -> SummaryStats {
        self.arena.range_stats(self.slot, i, j)
    }

    /// The shared column arena this visualization lives in (for the
    /// batched window kernels).
    pub fn arena(&self) -> &ColumnarArena {
        &self.arena
    }

    /// This visualization's slot in [`Self::arena`].
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// A coarsened copy with at most `target_points` points (§6.3's "a
    /// DP-based scoring on a subset of points distributed uniformly across
    /// the visualization"; the engine's pruning driver now scores its
    /// stage-1 sample exactly so the threshold stays a proven bound, but
    /// coarsening remains available for approximate embedders). The copy
    /// owns a fresh one-slot arena.
    pub fn coarsened(&self, target_points: usize) -> VizData {
        let target = target_points.max(2);
        if self.n() <= target {
            return self.clone();
        }
        let bin = self.n().div_ceil(target);
        let mut xs = Vec::with_capacity(target);
        let mut ys = Vec::with_capacity(target);
        for chunk in self.xs().chunks(bin).zip(self.ys().chunks(bin)) {
            let (cx, cy) = chunk;
            xs.push(cx.iter().sum::<f64>() / cx.len() as f64);
            ys.push(cy.iter().sum::<f64>() / cy.len() as f64);
        }
        let mut builder = ArenaBuilder::with_capacity(1, xs.len());
        let slot = builder.push_viz(&xs, &ys);
        let arena = Arc::new(builder.finish());
        Self::from_slot(
            self.key.clone(),
            Normalized {
                xs,
                ys,
                raw_x: self.raw_x,
                raw_y: self.raw_y,
            },
            self.source,
            &arena,
            slot,
        )
    }

    /// Maps a raw x value onto the canvas.
    pub fn norm_x(&self, raw: f64) -> f64 {
        (raw - self.raw_x.0) / span(self.raw_x)
    }

    /// Maps a raw y value onto the canvas.
    pub fn norm_y(&self, raw: f64) -> f64 {
        (raw - self.raw_y.0) / span(self.raw_y)
    }

    /// Index of the canvas point closest to raw x value `raw`, clamped to
    /// the valid range.
    pub fn x_to_index(&self, raw: f64) -> usize {
        let target = self.norm_x(raw);
        let xs = self.xs();
        match xs.binary_search_by(|probe| probe.total_cmp(&target)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) if i >= xs.len() => xs.len() - 1,
            Err(i) => {
                // Choose the nearer neighbour.
                if (xs[i] - target).abs() < (target - xs[i - 1]).abs() {
                    i
                } else {
                    i - 1
                }
            }
        }
    }

    /// Converts an x-axis width (raw units) into a number of canvas point
    /// steps (at least 1).
    pub fn width_to_points(&self, raw_width: f64) -> usize {
        let frac = raw_width / span(self.raw_x);
        let avg_step = 1.0 / (self.n() - 1) as f64;
        ((frac / avg_step).round() as usize).max(1)
    }
}

/// Normalizes a trendline onto the unit canvas with binning and optional
/// x-range restriction; `None` when fewer than two canvas points remain.
fn normalize(t: &Trendline, bin: usize, restrict: Option<&[(f64, f64)]>) -> Option<Normalized> {
    if t.points.len() < 2 {
        return None;
    }
    let bin = bin.max(1);
    let raw_x = extent(t.points.iter().map(|p| p.x));
    let raw_y = extent(t.points.iter().map(|p| p.y));
    let x_span = span(raw_x);
    let y_span = span(raw_y);

    let mut xs = Vec::with_capacity(t.points.len() / bin + 1);
    let mut ys = Vec::with_capacity(xs.capacity());
    let mut chunk_x = 0.0;
    let mut chunk_y = 0.0;
    let mut chunk_n = 0usize;
    for p in &t.points {
        if let Some(ranges) = restrict {
            if !ranges.iter().any(|&(lo, hi)| p.x >= lo && p.x <= hi) {
                continue;
            }
        }
        chunk_x += (p.x - raw_x.0) / x_span;
        chunk_y += (p.y - raw_y.0) / y_span;
        chunk_n += 1;
        if chunk_n == bin {
            xs.push(chunk_x / bin as f64);
            ys.push(chunk_y / bin as f64);
            chunk_x = 0.0;
            chunk_y = 0.0;
            chunk_n = 0;
        }
    }
    if chunk_n > 0 {
        xs.push(chunk_x / chunk_n as f64);
        ys.push(chunk_y / chunk_n as f64);
    }
    if xs.len() < 2 {
        return None;
    }
    Some(Normalized {
        xs,
        ys,
        raw_x,
        raw_y,
    })
}

fn extent(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Width of an extent, guarded against zero (constant series).
fn span((lo, hi): (f64, f64)) -> f64 {
    let s = hi - lo;
    if s > 0.0 {
        s
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trend(pairs: &[(f64, f64)]) -> Trendline {
        Trendline::from_pairs("t", pairs)
    }

    #[test]
    fn normalizes_to_unit_canvas() {
        let t = trend(&[(10.0, 100.0), (20.0, 300.0), (30.0, 200.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        assert_eq!(v.xs(), &[0.0, 0.5, 1.0]);
        assert_eq!(v.ys(), &[0.0, 1.0, 0.5]);
        assert_eq!(v.raw_x, (10.0, 30.0));
        assert_eq!(v.raw_y, (100.0, 300.0));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let t = trend(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        assert!(v.ys().iter().all(|&y| y == 0.0));
    }

    #[test]
    fn binning_averages_chunks() {
        let t = trend(&[(0.0, 0.0), (1.0, 4.0), (2.0, 0.0), (3.0, 4.0)]);
        let v = VizData::from_trendline(&t, 0, 2).unwrap();
        assert_eq!(v.n(), 2);
        // First bin: x mean of (0, 1/3), y mean of (0, 1) = 0.5.
        assert!((v.ys()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_is_none() {
        let t = trend(&[(0.0, 1.0)]);
        assert!(VizData::from_trendline(&t, 0, 1).is_none());
        let t = trend(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert!(VizData::from_trendline(&t, 0, 3).is_none());
    }

    #[test]
    fn x_to_index_picks_nearest() {
        let t = trend(&[(0.0, 0.0), (10.0, 1.0), (20.0, 2.0), (30.0, 1.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        assert_eq!(v.x_to_index(0.0), 0);
        assert_eq!(v.x_to_index(9.0), 1);
        assert_eq!(v.x_to_index(14.0), 1);
        assert_eq!(v.x_to_index(16.0), 2);
        assert_eq!(v.x_to_index(35.0), 3);
        assert_eq!(v.x_to_index(-5.0), 0);
    }

    #[test]
    fn width_conversion() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        // 2 raw-x units = half the span = 2 of the 4 steps.
        assert_eq!(v.width_to_points(2.0), 2);
        assert_eq!(v.width_to_points(0.1), 1); // floor at 1
    }

    #[test]
    fn restriction_keeps_only_ranged_points() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        let v = VizData::from_trendline_restricted(&t, 0, 1, &[(1.0, 3.0)]).unwrap();
        assert_eq!(v.n(), 3);
        // Normalization still spans the full extents.
        assert_eq!(v.xs(), &[0.25, 0.5, 0.75]);
    }

    #[test]
    fn restriction_below_two_points_is_none() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert!(VizData::from_trendline_restricted(&t, 0, 1, &[(0.9, 1.1)]).is_none());
    }

    #[test]
    fn coarsened_reduces_points_and_preserves_shape() {
        let pairs: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let v = VizData::from_trendline(&trend(&pairs), 0, 1).unwrap();
        let c = v.coarsened(10);
        assert!(c.n() <= 10);
        assert!(c.n() >= 2);
        // A straight diagonal stays a straight diagonal.
        assert!((c.slope(0, c.n() - 1) - 1.0).abs() < 1e-9);
        // Raw extents preserved for literal mapping.
        assert_eq!(c.raw_x, v.raw_x);
        assert_eq!(c.raw_y, v.raw_y);
    }

    #[test]
    fn coarsened_is_noop_when_small_enough() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        let c = v.coarsened(10);
        assert_eq!(c.n(), 3);
        assert_eq!(c.xs(), v.xs());
    }

    #[test]
    fn slope_extremes_cover_every_interval() {
        let t = trend(&[(0.0, 0.0), (1.0, 3.0), (2.0, 1.0), (3.0, 2.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..v.n() - 1 {
            let s = v.slope(i, i + 1);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert_eq!(v.slope_min, lo);
        assert_eq!(v.slope_max, hi);
        assert!(v.slope_min < 0.0 && v.slope_max > 0.0);
        // A monotone line's extremes collapse onto one slope.
        let mono = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let v = VizData::from_trendline(&mono, 0, 1).unwrap();
        assert!((v.slope_min - v.slope_max).abs() < 1e-12);
    }

    #[test]
    fn stats_index_slope_on_canvas() {
        let t = trend(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let v = VizData::from_trendline(&t, 0, 1).unwrap();
        // Canvas diagonal: slope 1.
        assert!((v.slope(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collection_group_matches_per_viz_group_bit_for_bit() {
        let tls = vec![
            trend(&[(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 4.0)]),
            Trendline::from_pairs("short", &[(0.0, 1.0)]), // rejected by GROUP
            Trendline::from_pairs("u", &[(0.0, 3.0), (1.0, 0.0), (2.0, 3.5)]),
        ];
        let grouped = group_collection(&tls, 1);
        assert_eq!(grouped.len(), 3);
        assert!(grouped[1].is_none());
        for (source, t) in tls.iter().enumerate() {
            let Some(got) = &grouped[source] else {
                continue;
            };
            let want = VizData::from_trendline(t, source, 1).unwrap();
            assert_eq!(got.key, want.key);
            assert_eq!(got.source, source);
            assert_eq!(got.xs(), want.xs());
            assert_eq!(got.ys(), want.ys());
            assert_eq!(got.slope_min.to_bits(), want.slope_min.to_bits());
            assert_eq!(got.slope_max.to_bits(), want.slope_max.to_bits());
            for i in 0..got.n() {
                for j in i..got.n() {
                    assert_eq!(got.slope(i, j).to_bits(), want.slope(i, j).to_bits());
                }
            }
        }
        // All live handles share one arena.
        let a = grouped[0].as_ref().unwrap();
        let b = grouped[2].as_ref().unwrap();
        assert!(std::ptr::eq(a.arena(), b.arena()));
        assert_ne!(a.slot(), b.slot());
    }
}
