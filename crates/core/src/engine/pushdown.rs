//! Push-down optimizations (paper §5.4): exploiting LOCATION primitives to
//! prune visualizations (or parts of them) early in the pipeline.
//!
//! * **(a) LOCATION → EXTRACT**: visualizations without any value in the
//!   query's pinned x ranges are pruned before GROUP — see
//!   [`covers_ranges`] and `ExtractOptions::require_x_ranges` in the
//!   datastore crate.
//! * **(b) Eager discard in SEGMENT**: segments with both endpoints pinned
//!   and an up/down pattern are scored first; a negative score discards the
//!   visualization before any fuzzy segmentation is attempted — see
//!   [`eager_discard`].
//! * **(c) Stat skipping in GROUP**: for fully non-fuzzy queries, summarized
//!   statistics are computed only over the referenced x ranges — see
//!   [`VizData::from_trendline_restricted`](crate::engine::group::VizData::from_trendline_restricted).

use crate::ast::Pattern;
use crate::chain::Chain;
use crate::eval::Evaluator;
use crate::ShapeQuery;
use shapesearch_datastore::Trendline;

/// True when the trendline has at least one point in every required range
/// (push-down (a): "prune visualizations that do not have any value in the
/// specified x ranges").
pub fn covers_ranges(t: &Trendline, ranges: &[(f64, f64)]) -> bool {
    ranges
        .iter()
        .all(|&(lo, hi)| t.points.iter().any(|p| p.x >= lo && p.x <= hi))
}

/// True when *every* segment of the query is non-fuzzy (both x endpoints
/// pinned), enabling GROUP stat skipping (c).
pub fn fully_pinned(q: &ShapeQuery) -> bool {
    let segs = q.segments();
    !segs.is_empty() && segs.iter().all(|s| !s.is_fuzzy())
}

/// Push-down (b): returns `true` when the visualization can be discarded
/// because, in every alternative chain, some fully pinned up/down unit
/// scores negatively over its anchored range ("eagerly checks and discards
/// visualizations with negative scores in these regions").
pub fn eager_discard(ev: &Evaluator<'_>, chains: &[Chain]) -> bool {
    if chains.is_empty() {
        return false;
    }
    chains.iter().all(|chain| {
        chain.units.iter().any(|u| {
            let (Some(xs), Some(xe)) = (u.pin_start, u.pin_end) else {
                return false;
            };
            let is_directional = matches!(
                &u.query,
                ShapeQuery::Segment(s) if matches!(s.pattern, Some(Pattern::Up) | Some(Pattern::Down))
            );
            if !is_directional {
                return false;
            }
            let i = ev.viz.x_to_index(xs);
            let j = ev.viz.x_to_index(xe);
            j > i && ev.eval_node(&u.query, i, j, None) < 0.0
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ShapeSegment;
    use crate::chain::expand_chains;
    use crate::engine::group::VizData;
    use crate::eval::UdpRegistry;
    use crate::score::ScoreParams;

    #[test]
    fn covers_ranges_checks_every_range() {
        let t = Trendline::from_pairs("t", &[(0.0, 1.0), (5.0, 2.0), (10.0, 3.0)]);
        assert!(covers_ranges(&t, &[(0.0, 2.0), (9.0, 11.0)]));
        assert!(!covers_ranges(&t, &[(6.0, 8.0)]));
        assert!(covers_ranges(&t, &[]));
    }

    #[test]
    fn fully_pinned_detection() {
        let pinned = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 5.0)),
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Down, 5.0, 9.0)),
        ]);
        assert!(fully_pinned(&pinned));
        let hybrid = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 5.0)),
            ShapeQuery::down(),
        ]);
        assert!(!fully_pinned(&hybrid));
    }

    #[test]
    fn eager_discard_on_wrong_direction() {
        let falling = Trendline::from_pairs(
            "f",
            &[(0.0, 9.0), (1.0, 7.0), (2.0, 5.0), (3.0, 3.0), (4.0, 1.0)],
        );
        let v = VizData::from_trendline(&falling, 0, 1).unwrap();
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        // Query wants a rise pinned over [0, 2].
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 0.0, 2.0)),
            ShapeQuery::down(),
        ]);
        assert!(eager_discard(&ev, &expand_chains(&q)));
        // A matching rise is not discarded.
        let q2 = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Down, 0.0, 2.0)),
            ShapeQuery::down(),
        ]);
        assert!(!eager_discard(&ev, &expand_chains(&q2)));
    }

    #[test]
    fn fuzzy_units_never_trigger_discard() {
        let falling = Trendline::from_pairs("f", &[(0.0, 9.0), (1.0, 7.0), (2.0, 5.0)]);
        let v = VizData::from_trendline(&falling, 0, 1).unwrap();
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&v, &params, &udps);
        let q = ShapeQuery::up(); // fuzzy: scored normally, never eagerly discarded
        assert!(!eager_discard(&ev, &expand_chains(&q)));
    }
}
