//! Columnar (structure-of-arrays) GROUP state and batched window kernels.
//!
//! The per-viz `Vec`-of-structs [`StatsIndex`](crate::stats::StatsIndex)
//! answers one range query at a time through struct fields that sit 40
//! bytes apart in memory. The scoring hot path, however, asks the same
//! question for *runs* of candidate windows — every DP inner loop, every
//! quantifier scan, and the GROUP-time slope extremes walk adjacent
//! windows in order. [`ColumnarArena`] stores the whole collection's
//! post-GROUP state as contiguous columns (`xs`, `ys`, and the prefix
//! sums `sum_x`/`sum_y`/`sum_xy`/`sum_xx` of §5.3's summarized
//! statistics) so those runs become branch-light streaming loops over
//! flat `f64` slices — the shape the compiler auto-vectorizes without
//! any intrinsics (the `#[ignore]`d `kernel_throughput` test keeps the
//! claim honest).
//!
//! ## Bit-for-bit contract
//!
//! Every kernel reproduces the scalar reference arithmetic exactly:
//! prefix columns are accumulated in the same operation order as
//! [`StatsIndex::new`](crate::stats::StatsIndex::new), range statistics
//! are the same per-field `hi − lo` subtraction, and slopes apply
//! [`SummaryStats::slope`](crate::stats::SummaryStats::slope)'s guards
//! (`n < 2` and `|denom| < 1e-12` → 0) with identical operand order. The
//! same IEEE operations in the same order produce the same bits, so an
//! engine running on columnar state returns byte-identical `top_k*`
//! results to the per-viz index it replaced (`tests/columnar_prop.rs`
//! asserts this across segmenters and shard counts).
//!
//! ## Memory layout
//!
//! One arena holds V visualizations totalling P canvas points:
//!
//! ```text
//! xs, ys                len P      point t of viz v at point_starts[v] + t
//! sum_x … sum_xx        len P + V  prefix sums, one leading 0 per viz
//! point_starts          len V + 1  per-viz point offsets
//! slope_min, slope_max  len V     GROUP-time interval-slope extremes
//! ```
//!
//! The prefix columns carry one extra leading zero per viz (the empty
//! prefix), so viz `v`'s prefix run starts at `point_starts[v] + v` and
//! holds `n + 1` entries. Statistics over the inclusive point range
//! `[i, j]` are then a per-column `prefix[j + 1] − prefix[i]` — O(1),
//! with the four subtractions sitting in four independent streams.
//!
//! This layout is also the on-disk snapshot format
//! ([`crate::snapshot`]): the flat `f64` columns plus the offset column
//! serialize byte for byte, and an opened snapshot's columns map
//! straight back into an arena with no pointer fix-up — each column is
//! then a `Column::Mapped` zero-copy view kept alive by the mapping's
//! `Arc`.

use crate::stats::SummaryStats;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// One flat `f64` column of a [`ColumnarArena`]: either heap-owned (the
/// eager GROUP path) or a zero-copy view into a mapped snapshot, kept
/// alive by an `Arc` on the mapping. Derefs to `&[f64]`, so every kernel
/// reads both backings identically — same bytes, same bits, same
/// results.
#[derive(Clone)]
pub(crate) enum Column {
    /// A heap-allocated column (the [`ArenaBuilder`] output).
    Owned(Vec<f64>),
    /// An aligned little-endian `f64` run inside a mapped snapshot file.
    Mapped {
        /// First element of the run (8-byte aligned, inside `keep`).
        ptr: *const f64,
        /// Element count.
        len: usize,
        /// Keeps the mapping (and so `ptr`) alive; only held, never read.
        #[allow(dead_code)]
        keep: Arc<memmap2::Mmap>,
    },
}

// Safety: a Mapped column points into a read-only private mapping that
// stays alive for as long as `keep` does and is never written through;
// Owned is a plain Vec. Sharing across threads therefore cannot race.
unsafe impl Send for Column {}
unsafe impl Sync for Column {}

impl Column {
    /// A zero-copy column over `len` `f64`s starting `byte_offset` bytes
    /// into `map`.
    ///
    /// # Panics
    /// The run must lie inside the mapping and start 8-byte aligned —
    /// the snapshot loader validates both before calling.
    pub(crate) fn mapped(map: &Arc<memmap2::Mmap>, byte_offset: usize, len: usize) -> Self {
        let bytes = len.checked_mul(8).expect("column byte length overflows");
        let end = byte_offset
            .checked_add(bytes)
            .expect("column end overflows");
        assert!(end <= map.len(), "column run outside the mapping");
        let ptr = unsafe { map.as_ptr().add(byte_offset) };
        assert_eq!(
            ptr as usize % std::mem::align_of::<f64>(),
            0,
            "column run misaligned"
        );
        Self::Mapped {
            ptr: ptr.cast::<f64>(),
            len,
            keep: Arc::clone(map),
        }
    }

    /// Mutable access to the backing vector — builder-side only.
    ///
    /// # Panics
    /// Panics on a mapped column (mapped snapshots are immutable).
    fn vec_mut(&mut self) -> &mut Vec<f64> {
        match self {
            Self::Owned(v) => v,
            Self::Mapped { .. } => unreachable!("mapped columns are immutable"),
        }
    }
}

impl Deref for Column {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        match self {
            Self::Owned(v) => v,
            Self::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl Default for Column {
    fn default() -> Self {
        Self::Owned(Vec::new())
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Self::Owned(v)
    }
}

impl fmt::Debug for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            Self::Owned(_) => "owned",
            Self::Mapped { .. } => "mapped",
        };
        f.debug_struct("Column")
            .field("kind", &kind)
            .field("len", &self.len())
            .finish()
    }
}

/// Borrowed views of every arena column, in snapshot serialization
/// order — the writer's one-stop read access.
pub(crate) struct RawColumns<'a> {
    pub xs: &'a [f64],
    pub ys: &'a [f64],
    pub sum_x: &'a [f64],
    pub sum_y: &'a [f64],
    pub sum_xy: &'a [f64],
    pub sum_xx: &'a [f64],
    pub point_starts: &'a [usize],
    pub slope_min: &'a [f64],
    pub slope_max: &'a [f64],
}

/// Structure-of-arrays GROUP output for a whole collection: contiguous
/// coordinate and prefix-statistic columns shared (via `Arc`) by every
/// [`VizData`](crate::engine::group::VizData) handle cut from it.
#[derive(Clone, Default)]
pub struct ColumnarArena {
    xs: Column,
    ys: Column,
    sum_x: Column,
    sum_y: Column,
    sum_xy: Column,
    sum_xx: Column,
    point_starts: Vec<usize>,
    slope_min: Column,
    slope_max: Column,
}

impl fmt::Debug for ColumnarArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColumnarArena")
            .field("vizzes", &self.viz_count())
            .field("points", &self.xs.len())
            .finish()
    }
}

impl ColumnarArena {
    /// Assembles an arena straight from pre-built columns — the snapshot
    /// loader's constructor. The caller (only [`crate::snapshot`])
    /// guarantees the columns satisfy the layout invariants above:
    /// monotone `point_starts`, prefix columns of length
    /// `points + vizzes`, slope columns of length `vizzes`.
    #[allow(clippy::too_many_arguments)] // nine columns are the format, not an API smell
    pub(crate) fn from_columns(
        xs: Column,
        ys: Column,
        sum_x: Column,
        sum_y: Column,
        sum_xy: Column,
        sum_xx: Column,
        point_starts: Vec<usize>,
        slope_min: Column,
        slope_max: Column,
    ) -> Self {
        Self {
            xs,
            ys,
            sum_x,
            sum_y,
            sum_xy,
            sum_xx,
            point_starts,
            slope_min,
            slope_max,
        }
    }

    /// Borrowed views of every column — the snapshot writer's read
    /// access.
    pub(crate) fn raw(&self) -> RawColumns<'_> {
        RawColumns {
            xs: &self.xs,
            ys: &self.ys,
            sum_x: &self.sum_x,
            sum_y: &self.sum_y,
            sum_xy: &self.sum_xy,
            sum_xx: &self.sum_xx,
            point_starts: &self.point_starts,
            slope_min: &self.slope_min,
            slope_max: &self.slope_max,
        }
    }

    /// Number of visualizations in the arena.
    pub fn viz_count(&self) -> usize {
        self.point_starts.len().saturating_sub(1)
    }

    /// Total bytes held (or mapped) by the arena's columns — the
    /// resident-memory cost a server pays to keep this arena hot, used
    /// by the resident-shard byte budget (`--resident-bytes`).
    pub fn byte_size(&self) -> usize {
        let f64_cells = self.xs.len()
            + self.ys.len()
            + self.sum_x.len()
            + self.sum_y.len()
            + self.sum_xy.len()
            + self.sum_xx.len()
            + self.slope_min.len()
            + self.slope_max.len();
        f64_cells * std::mem::size_of::<f64>()
            + self.point_starts.len() * std::mem::size_of::<usize>()
    }

    /// Total canvas points across all visualizations.
    pub fn point_count(&self) -> usize {
        self.xs.len()
    }

    /// Number of canvas points in viz `slot`.
    pub fn n(&self, slot: usize) -> usize {
        self.point_starts[slot + 1] - self.point_starts[slot]
    }

    /// Canvas x coordinates of viz `slot`.
    pub fn xs(&self, slot: usize) -> &[f64] {
        &self.xs[self.point_starts[slot]..self.point_starts[slot + 1]]
    }

    /// Canvas y coordinates of viz `slot`.
    pub fn ys(&self, slot: usize) -> &[f64] {
        &self.ys[self.point_starts[slot]..self.point_starts[slot + 1]]
    }

    /// GROUP-time `(min, max)` of viz `slot`'s adjacent-interval slopes
    /// (the §6.3 bound inputs).
    pub fn slope_extent(&self, slot: usize) -> (f64, f64) {
        (self.slope_min[slot], self.slope_max[slot])
    }

    /// Start of viz `slot`'s prefix run: each earlier viz contributes
    /// its points plus one leading zero entry.
    #[inline]
    fn prefix_start(&self, slot: usize) -> usize {
        self.point_starts[slot] + slot
    }

    /// Summarized statistics over the inclusive point range `[i, j]` of
    /// viz `slot` — the same per-field subtraction as
    /// [`StatsIndex::range`](crate::stats::StatsIndex::range), so the
    /// result is bit-identical.
    ///
    /// # Panics
    /// Panics when `j < i` (debug) or `j` is out of bounds.
    #[inline]
    pub fn range_stats(&self, slot: usize, i: usize, j: usize) -> SummaryStats {
        debug_assert!(i <= j, "range [{i}, {j}] is inverted");
        let p = self.prefix_start(slot);
        let (lo, hi) = (p + i, p + j + 1);
        debug_assert!(hi <= self.prefix_start(slot) + self.n(slot));
        SummaryStats {
            sx: self.sum_x[hi] - self.sum_x[lo],
            sy: self.sum_y[hi] - self.sum_y[lo],
            sxy: self.sum_xy[hi] - self.sum_xy[lo],
            sxx: self.sum_xx[hi] - self.sum_xx[lo],
            n: (j + 1 - i) as u32,
        }
    }

    /// Fitted slope over the inclusive point range `[i, j]` of viz
    /// `slot` (bit-identical to
    /// [`StatsIndex::slope`](crate::stats::StatsIndex::slope)).
    #[inline]
    pub fn slope(&self, slot: usize, i: usize, j: usize) -> f64 {
        self.range_stats(slot, i, j).slope()
    }

    /// Batched kernel: the fitted slope of every adjacent-point window
    /// `[t, t+1]` of viz `slot`, appended to `out` (cleared first).
    ///
    /// Window statistics are `prefix[t+2] − prefix[t]` per column and
    /// `n = 2` is constant, so the scalar guard `n < 2` vanishes and the
    /// loop body is a handful of independent mul/subs plus one select —
    /// exactly the shape LLVM turns into SIMD lanes.
    pub fn interval_slopes(&self, slot: usize, out: &mut Vec<f64>) {
        let n = self.n(slot);
        if n < 2 {
            out.clear();
            return;
        }
        self.interval_slopes_in(slot, 0, n - 1, out);
    }

    /// [`Self::interval_slopes`] restricted to windows `[t, t+1]` for
    /// `t` in `lo..hi` (so the last window is `[hi-1, hi]`), appended to
    /// `out` (cleared first) — the quantifier scan's candidate set.
    pub fn interval_slopes_in(&self, slot: usize, lo: usize, hi: usize, out: &mut Vec<f64>) {
        out.clear();
        if hi <= lo {
            return;
        }
        debug_assert!(hi < self.n(slot));
        let p = self.prefix_start(slot);
        let sx = &self.sum_x[p + lo..p + hi + 2];
        let sy = &self.sum_y[p + lo..p + hi + 2];
        let sxy = &self.sum_xy[p + lo..p + hi + 2];
        let sxx = &self.sum_xx[p + lo..p + hi + 2];
        out.reserve(hi - lo);
        out.extend(
            sx.windows(3)
                .zip(sy.windows(3))
                .zip(sxy.windows(3).zip(sxx.windows(3)))
                .map(|((wx, wy), (wxy, wxx))| {
                    let dsx = wx[2] - wx[0];
                    let dsy = wy[2] - wy[0];
                    let dsxy = wxy[2] - wxy[0];
                    let dsxx = wxx[2] - wxx[0];
                    let denom = 2.0 * dsxx - dsx * dsx;
                    let num = 2.0 * dsxy - dsx * dsy;
                    let slope = num / denom;
                    if denom.abs() < 1e-12 {
                        0.0
                    } else {
                        slope
                    }
                }),
        );
    }

    /// Batched kernel: fitted slopes of the anchored window run
    /// `[s, e]` for every end `e` in `e_lo..=e_hi` of viz `slot`,
    /// appended to `out` (cleared first) — a DP inner loop's whole
    /// candidate set in one streaming pass over the prefix columns.
    ///
    /// The start-side statistics are loop-invariant scalars; per lane
    /// only the four end-side loads vary, and both scalar guards become
    /// selects.
    pub fn window_slopes(
        &self,
        slot: usize,
        s: usize,
        e_lo: usize,
        e_hi: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if e_hi < e_lo {
            return;
        }
        debug_assert!(s <= e_lo && e_hi < self.n(slot));
        let p = self.prefix_start(slot);
        let (lo_x, lo_y) = (self.sum_x[p + s], self.sum_y[p + s]);
        let (lo_xy, lo_xx) = (self.sum_xy[p + s], self.sum_xx[p + s]);
        let (hb, he) = (p + e_lo + 1, p + e_hi + 2);
        let sx = &self.sum_x[hb..he];
        let sy = &self.sum_y[hb..he];
        let sxy = &self.sum_xy[hb..he];
        let sxx = &self.sum_xx[hb..he];
        let n0 = (e_lo + 1 - s) as f64;
        out.reserve(e_hi - e_lo + 1);
        out.extend(sx.iter().zip(sy).zip(sxy.iter().zip(sxx)).enumerate().map(
            |(idx, ((&hx, &hy), (&hxy, &hxx)))| {
                let nf = n0 + idx as f64;
                let dsx = hx - lo_x;
                let dsy = hy - lo_y;
                let dsxy = hxy - lo_xy;
                let dsxx = hxx - lo_xx;
                let denom = nf * dsxx - dsx * dsx;
                let num = nf * dsxy - dsx * dsy;
                let slope = num / denom;
                if nf < 2.0 || denom.abs() < 1e-12 {
                    0.0
                } else {
                    slope
                }
            },
        ));
    }
}

/// Incremental [`ColumnarArena`] construction: one `push_viz` per
/// GROUP'd visualization, in slot order.
#[derive(Debug, Default)]
pub struct ArenaBuilder {
    arena: ColumnarArena,
}

impl ArenaBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        let mut arena = ColumnarArena::default();
        arena.point_starts.push(0);
        Self { arena }
    }

    /// A builder pre-sized for `points` total canvas points across
    /// `vizzes` visualizations.
    pub fn with_capacity(vizzes: usize, points: usize) -> Self {
        let mut b = Self::new();
        let a = &mut b.arena;
        a.xs.vec_mut().reserve(points);
        a.ys.vec_mut().reserve(points);
        for col in [&mut a.sum_x, &mut a.sum_y, &mut a.sum_xy, &mut a.sum_xx] {
            col.vec_mut().reserve(points + vizzes);
        }
        a.point_starts.reserve(vizzes);
        a.slope_min.vec_mut().reserve(vizzes);
        a.slope_max.vec_mut().reserve(vizzes);
        b
    }

    /// Appends one visualization's canvas points, returning its slot.
    ///
    /// Prefix sums accumulate per column in the same operation order as
    /// [`StatsIndex::new`](crate::stats::StatsIndex::new) (`acc + x`,
    /// `acc + y`, `acc + x·y`, `acc + x·x` per point, after a leading
    /// zero), so every downstream range query is bit-identical to the
    /// scalar index.
    ///
    /// # Panics
    /// Panics when `xs` and `ys` differ in length.
    pub fn push_viz(&mut self, xs: &[f64], ys: &[f64]) -> usize {
        assert_eq!(xs.len(), ys.len(), "xs and ys must align");
        let a = &mut self.arena;
        let slot = a.point_starts.len() - 1;
        a.xs.vec_mut().extend_from_slice(xs);
        a.ys.vec_mut().extend_from_slice(ys);
        let (mut ax, mut ay, mut axy, mut axx) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        a.sum_x.vec_mut().push(0.0);
        a.sum_y.vec_mut().push(0.0);
        a.sum_xy.vec_mut().push(0.0);
        a.sum_xx.vec_mut().push(0.0);
        for (&x, &y) in xs.iter().zip(ys) {
            ax += x;
            ay += y;
            axy += x * y;
            axx += x * x;
            a.sum_x.vec_mut().push(ax);
            a.sum_y.vec_mut().push(ay);
            a.sum_xy.vec_mut().push(axy);
            a.sum_xx.vec_mut().push(axx);
        }
        a.point_starts.push(a.xs.len());
        // GROUP-time slope extremes straight off the fresh prefix run.
        let mut scratch = Vec::new();
        a.interval_slopes(slot, &mut scratch);
        // NaN-propagating fold: `f64::min`/`max` would *ignore* a NaN
        // interval slope and hand pruning a finite bound for a viz whose
        // actual score is NaN — which `total_cmp` ranks above every real
        // score, so pruning it would change the top-k. A NaN extent makes
        // every derived bound NaN and the viz unprunable.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut saw_nan = false;
        for &s in &scratch {
            saw_nan |= s.is_nan();
            lo = lo.min(s);
            hi = hi.max(s);
        }
        if saw_nan {
            lo = f64::NAN;
            hi = f64::NAN;
        }
        a.slope_min.vec_mut().push(lo);
        a.slope_max.vec_mut().push(hi);
        slot
    }

    /// Finalizes the arena.
    pub fn finish(self) -> ColumnarArena {
        self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsIndex;

    fn demo_series(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
        };
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let mut y = 0.0;
        let ys: Vec<f64> = (0..n)
            .map(|_| {
                y += next();
                y
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn range_stats_match_stats_index_bit_for_bit() {
        let mut b = ArenaBuilder::new();
        let mut refs = Vec::new();
        for (seed, n) in [(1u64, 2usize), (7, 13), (42, 48)] {
            let (xs, ys) = demo_series(seed, n);
            b.push_viz(&xs, &ys);
            refs.push(StatsIndex::new(&xs, &ys));
        }
        let a = b.finish();
        assert_eq!(a.viz_count(), 3);
        for (slot, idx) in refs.iter().enumerate() {
            let n = a.n(slot);
            assert_eq!(n, idx.len());
            for i in 0..n {
                for j in i..n {
                    let want = idx.range(i, j);
                    let got = a.range_stats(slot, i, j);
                    assert_eq!(want.sx.to_bits(), got.sx.to_bits());
                    assert_eq!(want.sy.to_bits(), got.sy.to_bits());
                    assert_eq!(want.sxy.to_bits(), got.sxy.to_bits());
                    assert_eq!(want.sxx.to_bits(), got.sxx.to_bits());
                    assert_eq!(want.n, got.n);
                    assert_eq!(
                        idx.slope(i, j).to_bits(),
                        a.slope(slot, i, j).to_bits(),
                        "slot {slot} [{i}, {j}]"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_and_window_kernels_match_scalar_reference() {
        let (xs, ys) = demo_series(9, 48);
        let idx = StatsIndex::new(&xs, &ys);
        let mut b = ArenaBuilder::new();
        let slot = b.push_viz(&xs, &ys);
        let a = b.finish();
        let mut out = Vec::new();
        a.interval_slopes(slot, &mut out);
        assert_eq!(out.len(), 47);
        for (t, &got) in out.iter().enumerate() {
            assert_eq!(got.to_bits(), idx.slope(t, t + 1).to_bits(), "interval {t}");
        }
        for s in [0usize, 3, 20] {
            a.window_slopes(slot, s, s + 1, 47, &mut out);
            for (k, &got) in out.iter().enumerate() {
                let e = s + 1 + k;
                assert_eq!(
                    got.to_bits(),
                    idx.slope(s, e).to_bits(),
                    "window [{s}, {e}]"
                );
            }
        }
    }

    #[test]
    fn degenerate_windows_report_zero_like_the_scalar_path() {
        // Duplicate x values make the denominator collapse below 1e-12.
        let xs = [0.5, 0.5, 0.5];
        let ys = [0.0, 1.0, 2.0];
        let idx = StatsIndex::new(&xs, &ys);
        let mut b = ArenaBuilder::new();
        let slot = b.push_viz(&xs, &ys);
        let a = b.finish();
        let mut out = Vec::new();
        a.interval_slopes(slot, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
        a.window_slopes(slot, 0, 1, 2, &mut out);
        assert_eq!(out[0].to_bits(), idx.slope(0, 1).to_bits());
        assert_eq!(out[1].to_bits(), idx.slope(0, 2).to_bits());
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn nan_inputs_propagate_identically() {
        let xs = [0.0, 0.5, 1.0];
        let ys = [0.0, f64::NAN, 1.0];
        let idx = StatsIndex::new(&xs, &ys);
        let mut b = ArenaBuilder::new();
        let slot = b.push_viz(&xs, &ys);
        let a = b.finish();
        for i in 0..3 {
            for j in i..3 {
                assert_eq!(
                    idx.slope(i, j).to_bits(),
                    a.slope(slot, i, j).to_bits(),
                    "[{i}, {j}]"
                );
            }
        }
    }

    #[test]
    fn slope_extent_matches_group_time_extremes() {
        let (xs, ys) = demo_series(33, 30);
        let idx = StatsIndex::new(&xs, &ys);
        let mut b = ArenaBuilder::new();
        let slot = b.push_viz(&xs, &ys);
        let a = b.finish();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for t in 0..29 {
            let s = idx.slope(t, t + 1);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert_eq!(a.slope_extent(slot), (lo, hi));
    }

    #[test]
    fn empty_arena_and_empty_runs_are_fine() {
        let a = ArenaBuilder::new().finish();
        assert_eq!(a.viz_count(), 0);
        assert_eq!(a.point_count(), 0);
        let mut b = ArenaBuilder::with_capacity(1, 2);
        let slot = b.push_viz(&[0.0, 1.0], &[0.0, 1.0]);
        let a = b.finish();
        let mut out = vec![1.0];
        a.window_slopes(slot, 0, 1, 0, &mut out);
        assert!(out.is_empty());
    }

    /// The honesty check for the "auto-vectorizes" claim: measures the
    /// batched kernels against the scalar `StatsIndex` reference on a
    /// perf_report-sized collection. The bitwise-equivalence assertions
    /// gate; the printed points/sec throughput is informational (run
    /// with `--ignored --nocapture`, ideally `--release`).
    #[test]
    #[ignore = "throughput measurement; run explicitly with --ignored --nocapture"]
    fn kernel_throughput() {
        const VIZZES: usize = 1228;
        const POINTS: usize = 48;
        const PASSES: usize = 40;
        let mut b = ArenaBuilder::with_capacity(VIZZES, VIZZES * POINTS);
        let mut refs = Vec::with_capacity(VIZZES);
        for v in 0..VIZZES {
            let (xs, ys) = demo_series(v as u64 + 1, POINTS);
            b.push_viz(&xs, &ys);
            refs.push(StatsIndex::new(&xs, &ys));
        }
        let a = b.finish();

        // Gating: every window the throughput loop touches is bitwise
        // equal between the batched kernel and the scalar reference.
        let mut out = Vec::new();
        for (slot, idx) in refs.iter().enumerate() {
            a.window_slopes(slot, 0, 1, POINTS - 1, &mut out);
            for (k, &got) in out.iter().enumerate() {
                assert_eq!(got.to_bits(), idx.slope(0, k + 1).to_bits());
            }
            a.interval_slopes(slot, &mut out);
            for (t, &got) in out.iter().enumerate() {
                assert_eq!(got.to_bits(), idx.slope(t, t + 1).to_bits());
            }
        }

        // Non-gating: windows/sec, columnar vs scalar.
        let mut sink = 0.0f64;
        let started = std::time::Instant::now();
        for _ in 0..PASSES {
            for slot in 0..VIZZES {
                for s in 0..POINTS - 1 {
                    a.window_slopes(slot, s, s + 1, POINTS - 1, &mut out);
                    sink += out.iter().sum::<f64>();
                }
            }
        }
        let columnar = started.elapsed();
        let started = std::time::Instant::now();
        for _ in 0..PASSES {
            for idx in &refs {
                for s in 0..POINTS - 1 {
                    for e in s + 1..POINTS {
                        sink += idx.slope(s, e);
                    }
                }
            }
        }
        let scalar = started.elapsed();
        let windows = (PASSES * VIZZES * (POINTS - 1) * POINTS / 2) as f64;
        eprintln!(
            "kernel_throughput: columnar {:.1}M windows/s, scalar {:.1}M windows/s \
             (ratio {:.2}, sink {sink:.3})",
            windows / columnar.as_secs_f64() / 1e6,
            windows / scalar.as_secs_f64() / 1e6,
            scalar.as_secs_f64() / columnar.as_secs_f64(),
        );
    }
}
