//! Chain expansion: rewriting a ShapeQuery into weighted CONCAT chains.
//!
//! The segmentation algorithms (§6) operate on a *sequence* of ShapeExprs
//! separated by CONCAT operators. Nested OR operators are distributed into
//! alternative chains — sound because `max` (OR) commutes with the monotone
//! weighted average used by CONCAT:
//! `avg(a, max(b, c)) = max(avg(a, b), avg(a, c))`.
//!
//! Nested CONCATs contribute *weights*: in `a ⊗ (c ⊗ d)` the inner pair
//! shares the second half, so the chain is `[a:½, c:¼, d:¼]` and the total
//! score is the weighted sum — exactly the algebra's nested-average
//! semantics. AND / OPPOSITE / nested-pattern segments stay opaque units
//! evaluated over a single sub-region (per §3: AND and OR "match ... the
//! same sub-region of the visualization").

use crate::ast::{Modifier, Pattern, PosRef, ShapeQuery, ShapeSegment};

/// One unit of a chain: an atomic sub-query assigned a single VisualSegment,
/// its weight in the final score, and its location constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// The sub-query scored over this unit's VisualSegment.
    pub query: ShapeQuery,
    /// Weight of this unit's score in the chain total (weights sum to 1).
    pub weight: f64,
    /// Pinned raw start x, when the unit's segment carries `x.s`.
    pub pin_start: Option<f64>,
    /// Pinned raw end x, when the unit's segment carries `x.e`.
    pub pin_end: Option<f64>,
    /// Fixed window width in raw x units (ITERATOR sub-primitive).
    pub width: Option<f64>,
}

impl Unit {
    fn from_query(query: ShapeQuery, weight: f64) -> Self {
        let (pin_start, pin_end, width) = match &query {
            ShapeQuery::Segment(s) => (
                s.location.x_start,
                s.location.x_end,
                s.iterator.map(|it| it.width),
            ),
            _ => (None, None, None),
        };
        Self {
            query,
            weight,
            pin_start,
            pin_end,
            width,
        }
    }

    /// True when neither endpoint is pinned and no width constraint applies.
    pub fn is_fuzzy(&self) -> bool {
        self.pin_start.is_none() && self.pin_end.is_none() && self.width.is_none()
    }

    /// True when the unit's pattern is a POSITION (`$`) reference.
    pub fn is_position_ref(&self) -> bool {
        matches!(
            &self.query,
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Position(_)),
                ..
            })
        )
    }

    /// The position reference and comparison modifier, if this is a `$` unit.
    pub fn position_ref(&self) -> Option<(PosRef, Option<Modifier>)> {
        match &self.query {
            ShapeQuery::Segment(ShapeSegment {
                pattern: Some(Pattern::Position(r)),
                modifier,
                ..
            }) => Some((*r, *modifier)),
            _ => None,
        }
    }
}

/// A weighted CONCAT chain — one OR-free alternative of the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The units, in sequence order.
    pub units: Vec<Unit>,
}

impl Chain {
    /// Number of units (the `k` in the paper's complexity analyses).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when the chain has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// True when every unit is fuzzy (a fully fuzzy chain — the SegmentTree
    /// fast path applies).
    pub fn is_fully_fuzzy(&self) -> bool {
        self.units.iter().all(Unit::is_fuzzy)
    }

    /// True when any unit is a POSITION reference (requires re-scoring after
    /// segmentation).
    pub fn has_position_refs(&self) -> bool {
        self.units.iter().any(Unit::is_position_ref)
    }
}

/// Expands a query into its weighted alternative chains.
///
/// The number of alternatives is the product of OR fan-outs; queries are
/// small in practice (the paper's largest has one OR), but a cap prevents
/// pathological blow-up — beyond it, remaining ORs stay opaque units.
pub fn expand_chains(query: &ShapeQuery) -> Vec<Chain> {
    const MAX_CHAINS: usize = 64;
    let raw = expand(query, 1.0, MAX_CHAINS);
    raw.into_iter().map(|units| Chain { units }).collect()
}

fn expand(query: &ShapeQuery, weight: f64, cap: usize) -> Vec<Vec<Unit>> {
    match query {
        ShapeQuery::Segment(_) | ShapeQuery::And(_) | ShapeQuery::Not(_) => {
            vec![vec![Unit::from_query(query.clone(), weight)]]
        }
        ShapeQuery::Or(alts) => {
            let mut out = Vec::new();
            for alt in alts {
                out.extend(expand(alt, weight, cap));
                if out.len() > cap {
                    // Too many alternatives: fall back to an opaque unit.
                    return vec![vec![Unit::from_query(query.clone(), weight)]];
                }
            }
            out
        }
        ShapeQuery::Concat(parts) => {
            let child_weight = weight / parts.len() as f64;
            // Cartesian product of per-part alternatives.
            let mut acc: Vec<Vec<Unit>> = vec![Vec::new()];
            for part in parts {
                let alts = expand(part, child_weight, cap);
                let mut next = Vec::with_capacity(acc.len() * alts.len());
                for prefix in &acc {
                    for alt in &alts {
                        if next.len() > cap {
                            // Blow-up: fall back to one chain with each
                            // child as an opaque unit (evaluating a child
                            // never re-expands this same Concat, so this
                            // cannot recurse).
                            return vec![parts
                                .iter()
                                .map(|p| Unit::from_query(p.clone(), child_weight))
                                .collect()];
                        }
                        let mut chain = prefix.clone();
                        chain.extend(alt.iter().cloned());
                        next.push(chain);
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Pattern, ShapeSegment};

    fn up() -> ShapeQuery {
        ShapeQuery::up()
    }
    fn down() -> ShapeQuery {
        ShapeQuery::down()
    }
    fn flat() -> ShapeQuery {
        ShapeQuery::flat()
    }

    #[test]
    fn simple_chain_weights_are_uniform() {
        let q = ShapeQuery::concat(vec![up(), down(), up()]);
        let chains = expand_chains(&q);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.len(), 3);
        for u in &c.units {
            assert!((u.weight - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_segment_is_one_unit_chain() {
        let chains = expand_chains(&up());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 1);
        assert_eq!(chains[0].units[0].weight, 1.0);
    }

    #[test]
    fn or_distributes_into_alternatives() {
        // up ⊗ (flat ⊕ (down ⊗ up)) — the paper's grouping example.
        let q = ShapeQuery::concat(vec![
            up(),
            ShapeQuery::Or(vec![flat(), ShapeQuery::concat(vec![down(), up()])]),
        ]);
        let chains = expand_chains(&q);
        assert_eq!(chains.len(), 2);
        // Alternative 1: [up:1/2, flat:1/2].
        assert_eq!(chains[0].len(), 2);
        assert!((chains[0].units[1].weight - 0.5).abs() < 1e-12);
        // Alternative 2: [up:1/2, down:1/4, up:1/4].
        assert_eq!(chains[1].len(), 3);
        assert!((chains[1].units[1].weight - 0.25).abs() < 1e-12);
        assert!((chains[1].units[2].weight - 0.25).abs() < 1e-12);
        for c in &chains {
            let total: f64 = c.units.iter().map(|u| u.weight).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nested_concat_weights_multiply() {
        // a ⊗ (c ⊗ d): [a:1/2, c:1/4, d:1/4].
        let q = ShapeQuery::Concat(vec![up(), ShapeQuery::Concat(vec![down(), flat()])]);
        let chains = expand_chains(&q);
        assert_eq!(chains.len(), 1);
        let w: Vec<f64> = chains[0].units.iter().map(|u| u.weight).collect();
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
        assert!((w[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn and_stays_opaque() {
        let q = ShapeQuery::concat(vec![ShapeQuery::And(vec![up(), flat()]), down()]);
        let chains = expand_chains(&q);
        assert_eq!(chains.len(), 1);
        assert!(matches!(chains[0].units[0].query, ShapeQuery::And(_)));
    }

    #[test]
    fn pins_are_lifted_from_segments() {
        let q = ShapeQuery::concat(vec![
            ShapeQuery::Segment(ShapeSegment::pinned(Pattern::Up, 50.0, 100.0)),
            down(),
        ]);
        let chains = expand_chains(&q);
        let u = &chains[0].units[0];
        assert_eq!(u.pin_start, Some(50.0));
        assert_eq!(u.pin_end, Some(100.0));
        assert!(!u.is_fuzzy());
        assert!(chains[0].units[1].is_fuzzy());
        assert!(!chains[0].is_fully_fuzzy());
    }

    #[test]
    fn width_units_detected() {
        let q = ShapeQuery::Segment(ShapeSegment::pattern(Pattern::Up).with_width(3.0));
        let chains = expand_chains(&q);
        assert_eq!(chains[0].units[0].width, Some(3.0));
        assert!(!chains[0].units[0].is_fuzzy());
    }

    #[test]
    fn position_refs_detected() {
        let q = ShapeQuery::concat(vec![
            up(),
            ShapeQuery::Segment(
                ShapeSegment::pattern(Pattern::Position(PosRef::Absolute(0)))
                    .with_modifier(Modifier::Less(None)),
            ),
        ]);
        let chains = expand_chains(&q);
        assert!(chains[0].has_position_refs());
        let (r, m) = chains[0].units[1].position_ref().unwrap();
        assert_eq!(r, PosRef::Absolute(0));
        assert_eq!(m, Some(Modifier::Less(None)));
    }

    #[test]
    fn excessive_or_fanout_falls_back_to_opaque_children() {
        // 4 ORs of 4 alternatives each = 256 > 64 cap: one chain remains,
        // with each OR kept as an opaque unit (NOT the whole concat — that
        // would recurse when evaluated).
        let or4 = ShapeQuery::Or(vec![
            up(),
            down(),
            flat(),
            ShapeQuery::pattern(Pattern::Any),
        ]);
        let q = ShapeQuery::concat(vec![or4.clone(), or4.clone(), or4.clone(), or4.clone()]);
        let chains = expand_chains(&q);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 4);
        for u in &chains[0].units {
            assert_eq!(u.query, or4);
            assert!((u.weight - 0.25).abs() < 1e-12);
        }
    }
}
