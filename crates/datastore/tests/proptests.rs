//! Property tests for the datastore substrate: CSV round trips, filter /
//! take laws, and aggregation identities.

use proptest::prelude::*;
use shapesearch_datastore::{csv, Aggregation, CompareOp, Predicate, Table, TableBuilder, Value};

/// Strategy: a simple cell value (string content restricted to printable
/// non-quote text to keep CSV assertions readable; quoting itself is tested
/// separately with adversarial strings).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(|f| Value::Float((f * 100.0).round() / 100.0)),
        "[a-z]{1,8}".prop_map(Value::Str),
        Just(Value::Null),
    ]
}

fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..5, 0usize..20).prop_flat_map(|(cols, rows)| {
        let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        proptest::collection::vec(proptest::collection::vec(value_strategy(), cols), rows).prop_map(
            move |data| {
                let mut b = TableBuilder::new(names.clone());
                for row in data {
                    b.push_row(row).expect("arity matches");
                }
                b.finish()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_round_trip_preserves_rows(t in table_strategy()) {
        let text = csv::write_str(&t);
        let t2 = csv::read_str(&text);
        // Empty tables (no rows) still carry their header.
        let t2 = t2.expect("written CSV must parse");
        prop_assert_eq!(t.num_rows(), t2.num_rows());
        prop_assert_eq!(t.num_columns(), t2.num_columns());
        for row in 0..t.num_rows() {
            for col in 0..t.num_columns() {
                let a = t.column_at(col).value(row);
                let b = t2.column_at(col).value(row);
                // Numeric formatting may widen Int→Float across type
                // inference; compare by total order.
                prop_assert_eq!(
                    a.total_cmp(&b),
                    std::cmp::Ordering::Equal,
                    "row {} col {}: {:?} vs {:?}", row, col, a, b
                );
            }
        }
    }

    #[test]
    fn filter_take_is_subset_and_idempotent(t in table_strategy(), lit in -1000i64..1000) {
        let p = Predicate::new("c0", CompareOp::Gt, lit);
        let idx = t.filter_indices(std::slice::from_ref(&p)).expect("c0 exists");
        prop_assert!(idx.len() <= t.num_rows());
        let sub = t.take(&idx);
        prop_assert_eq!(sub.num_rows(), idx.len());
        // Filtering the filtered table again changes nothing.
        let idx2 = sub.filter_indices(std::slice::from_ref(&p)).expect("c0 exists");
        prop_assert_eq!(idx2.len(), sub.num_rows());
    }

    #[test]
    fn aggregation_identities(values in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let avg = Aggregation::Avg.apply(&values).unwrap();
        let sum = Aggregation::Sum.apply(&values).unwrap();
        let min = Aggregation::Min.apply(&values).unwrap();
        let max = Aggregation::Max.apply(&values).unwrap();
        let count = Aggregation::Count.apply(&values).unwrap();
        prop_assert!((sum / count - avg).abs() < 1e-9);
        prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9);
        prop_assert_eq!(count as usize, values.len());
    }

    #[test]
    fn value_total_cmp_is_total_order(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (≤).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }
}

#[test]
fn adversarial_quoting_round_trips() {
    let mut b = TableBuilder::new(vec!["weird".into()]);
    for s in ["a,b", "say \"hi\"", "two\nlines", "trailing,", "\"quoted\""] {
        b.push_row(vec![Value::Str(s.into())]).unwrap();
    }
    let t = b.finish();
    let text = csv::write_str(&t);
    let t2 = csv::read_str(&text).unwrap();
    assert_eq!(t, t2);
}
