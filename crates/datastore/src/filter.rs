//! Filter predicates — the `f` constraints of the paper's visual parameters.
//! Users apply on-the-fly filters on values and attributes (e.g.
//! `luminosity < 90 && luminosity > 10` in Figure 1c).

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    fn eval(self, ord: Ordering) -> bool {
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Ne => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A single-column comparison predicate. Null never matches (except `Ne`
/// against a non-null literal, mirroring SQL's `IS DISTINCT FROM` pragmatics
/// that exploration tools favour).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column the predicate applies to.
    pub column: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal to compare against.
    pub literal: Value,
}

impl Predicate {
    /// Creates a predicate `column op literal`.
    pub fn new(column: impl Into<String>, op: CompareOp, literal: impl Into<Value>) -> Self {
        Self {
            column: column.into(),
            op,
            literal: literal.into(),
        }
    }

    /// Evaluates the predicate against one cell value.
    pub fn matches(&self, v: &Value) -> bool {
        if v.is_null() {
            return self.op == CompareOp::Ne && !self.literal.is_null();
        }
        self.op.eval(v.total_cmp(&self.literal))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons() {
        let p = Predicate::new("y", CompareOp::Gt, 10.0);
        assert!(p.matches(&Value::Float(11.0)));
        assert!(p.matches(&Value::Int(11)));
        assert!(!p.matches(&Value::Float(10.0)));
        let p = Predicate::new("y", CompareOp::Le, 10.0);
        assert!(p.matches(&Value::Float(10.0)));
        assert!(!p.matches(&Value::Float(10.5)));
    }

    #[test]
    fn string_equality() {
        let p = Predicate::new("z", CompareOp::Eq, "google");
        assert!(p.matches(&Value::Str("google".into())));
        assert!(!p.matches(&Value::Str("msft".into())));
    }

    #[test]
    fn null_semantics() {
        let gt = Predicate::new("y", CompareOp::Gt, 0.0);
        assert!(!gt.matches(&Value::Null));
        let ne = Predicate::new("y", CompareOp::Ne, 0.0);
        assert!(ne.matches(&Value::Null));
    }

    #[test]
    fn all_operators_cover_orderings() {
        let v = Value::Int(5);
        assert!(Predicate::new("c", CompareOp::Eq, 5i64).matches(&v));
        assert!(Predicate::new("c", CompareOp::Ne, 4i64).matches(&v));
        assert!(Predicate::new("c", CompareOp::Lt, 6i64).matches(&v));
        assert!(Predicate::new("c", CompareOp::Le, 5i64).matches(&v));
        assert!(Predicate::new("c", CompareOp::Gt, 4i64).matches(&v));
        assert!(Predicate::new("c", CompareOp::Ge, 5i64).matches(&v));
    }

    #[test]
    fn display_formats() {
        let p = Predicate::new("luminosity", CompareOp::Lt, 90.0);
        assert_eq!(p.to_string(), "luminosity < 90");
    }
}
