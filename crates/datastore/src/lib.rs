//! # shapesearch-datastore
//!
//! Columnar in-memory OLAP substrate for ShapeSearch (ShapeSearch paper §5.1).
//!
//! ShapeSearch operates in a "traditional OLAP data exploration setting with
//! dataset *D*, stored in either a database, or as a raw file in CSV or JSON".
//! This crate provides that substrate from scratch:
//!
//! * [`Table`] — an immutable, schema-carrying collection of typed columns
//!   ([`Column`]): 64-bit floats, 64-bit integers, and dictionary-encoded
//!   strings.
//! * [`csv`] / [`json`] — hand-rolled readers for CSV files and JSON-lines,
//!   with automatic type inference.
//! * [`Predicate`] — filter constraints (`f` in the paper) evaluated
//!   column-at-a-time.
//! * [`Aggregation`] — the aggregation (`a`) applied when multiple `y` values
//!   share an `x` coordinate (e.g. the Real Estate dataset in Table 11).
//! * [`VisualSpec`] + [`extract`] — the EXTRACT physical operator: select and
//!   aggregate records based on the `z`, `x`, `y`, filter, and aggregation
//!   constraints, sorted on `z` then `x`, streamed as [`TrendPoint`]s.
//!
//! The downstream GROUP / SEGMENT / SCORE operators live in
//! `shapesearch-core`; this crate is deliberately independent of the query
//! algebra so it can be reused as a generic mini-OLAP layer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod aggregate;
mod column;
pub mod csv;
mod error;
mod extract;
mod filter;
pub mod json;
mod schema;
mod table;
mod value;

pub use aggregate::Aggregation;
pub use column::{Column, ColumnBuilder};
pub use error::{DataError, Result};
pub use extract::{extract, ExtractOptions, TrendPoint, Trendline};
pub use filter::{CompareOp, Predicate};
pub use schema::{DataType, Field, Schema};
pub use table::{table_from_series, Table, TableBuilder};
pub use value::Value;

/// Visual parameters `R` from the paper (§5.1): the space of candidate
/// visualizations is defined by a category attribute `z`, an x-axis attribute
/// `x`, a y-axis attribute `y`, optional filters `f`, and an aggregation `a`
/// used when several `y` values share one `x`.
#[derive(Debug, Clone)]
pub struct VisualSpec {
    /// Category attribute: one candidate visualization per distinct value.
    pub z: String,
    /// X-axis attribute.
    pub x: String,
    /// Y-axis attribute.
    pub y: String,
    /// Filter constraints applied before grouping.
    pub filters: Vec<Predicate>,
    /// Aggregation for duplicate x values within one trendline.
    pub aggregation: Aggregation,
}

impl VisualSpec {
    /// Convenience constructor with no filters and mean aggregation.
    pub fn new(z: impl Into<String>, x: impl Into<String>, y: impl Into<String>) -> Self {
        Self {
            z: z.into(),
            x: x.into(),
            y: y.into(),
            filters: Vec::new(),
            aggregation: Aggregation::Avg,
        }
    }

    /// Adds a filter predicate, returning `self` for chaining.
    #[must_use]
    pub fn with_filter(mut self, p: Predicate) -> Self {
        self.filters.push(p);
        self
    }

    /// Sets the aggregation, returning `self` for chaining.
    #[must_use]
    pub fn with_aggregation(mut self, a: Aggregation) -> Self {
        self.aggregation = a;
        self
    }
}
