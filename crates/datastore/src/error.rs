//! Error type shared by all datastore operations.

use std::fmt;

/// Result alias for datastore operations.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors raised while building, reading, or querying tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A column was used with an incompatible type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected data type.
        expected: &'static str,
        /// Actual data type.
        actual: &'static str,
    },
    /// Columns of a table have differing lengths.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Offending column's row count.
        actual: usize,
    },
    /// Malformed input while parsing CSV or JSON.
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error, carried as a string to keep the error type `Clone`.
    Io(String),
    /// The operation is invalid for the given arguments.
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has type {actual}, expected {expected}"
            ),
            DataError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "column length {actual} does not match table length {expected}"
                )
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io(msg) => write!(f, "io error: {msg}"),
            DataError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = DataError::UnknownColumn("sales".into());
        assert_eq!(e.to_string(), "unknown column `sales`");
    }

    #[test]
    fn display_type_mismatch() {
        let e = DataError::TypeMismatch {
            column: "x".into(),
            expected: "float",
            actual: "string",
        };
        assert!(e.to_string().contains("expected float"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
