//! Immutable tables: a schema plus equal-length columns.

use crate::column::{Column, ColumnBuilder};
use crate::error::{DataError, Result};
use crate::filter::Predicate;
use crate::schema::{Field, Schema};
use crate::value::Value;

/// An immutable, in-memory table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Builds a table from a schema and matching columns.
    ///
    /// # Errors
    /// Fails when column count/type differs from the schema or lengths differ.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(DataError::Invalid(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.data_type != c.data_type() {
                return Err(DataError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.data_type.name(),
                    actual: c.data_type().name(),
                });
            }
        }
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != rows {
                return Err(DataError::LengthMismatch {
                    expected: rows,
                    actual: c.len(),
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            rows,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// The column at the given index.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The cell at (`row`, `column`).
    pub fn value(&self, row: usize, column: &str) -> Result<Value> {
        Ok(self.column(column)?.value(row))
    }

    /// Returns the row indices satisfying all predicates (conjunction).
    pub fn filter_indices(&self, predicates: &[Predicate]) -> Result<Vec<usize>> {
        let mut keep: Vec<usize> = (0..self.rows).collect();
        for p in predicates {
            let col = self.column(&p.column)?;
            keep.retain(|&row| p.matches(&col.value(row)));
        }
        Ok(keep)
    }

    /// Materializes the subset of rows given by `indices`.
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        }
    }
}

/// Row-oriented builder used by the CSV/JSON readers and the data generators.
#[derive(Debug)]
pub struct TableBuilder {
    names: Vec<String>,
    builders: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// Creates a builder for the given column names.
    pub fn new(names: Vec<String>) -> Self {
        let builders = names.iter().map(|_| ColumnBuilder::new()).collect();
        Self { names, builders }
    }

    /// Appends a row. The number of values must match the number of columns.
    ///
    /// # Errors
    /// Fails on arity mismatch.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.builders.len() {
            return Err(DataError::Invalid(format!(
                "row has {} values, expected {}",
                values.len(),
                self.builders.len()
            )));
        }
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn num_rows(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// Finishes all columns (inferring types) and assembles the table.
    pub fn finish(self) -> Table {
        let columns: Vec<Column> = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        let fields = self
            .names
            .into_iter()
            .zip(&columns)
            .map(|(name, col)| Field::new(name, col.data_type()))
            .collect();
        let rows = columns.first().map_or(0, Column::len);
        Table {
            schema: Schema::new(fields),
            columns,
            rows,
        }
    }
}

/// Convenience: builds a three-column `(z, x, y)` table from per-trendline
/// series, the shape produced by the synthetic data generators.
pub fn table_from_series(
    z_name: &str,
    x_name: &str,
    y_name: &str,
    series: &[(String, Vec<(f64, f64)>)],
) -> Table {
    let mut builder = TableBuilder::new(vec![
        z_name.to_owned(),
        x_name.to_owned(),
        y_name.to_owned(),
    ]);
    for (z, points) in series {
        for &(x, y) in points {
            builder
                .push_row(vec![
                    Value::Str(z.clone()),
                    Value::Float(x),
                    Value::Float(y),
                ])
                .expect("arity is fixed at 3");
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CompareOp;
    use crate::schema::DataType;

    fn sample() -> Table {
        let mut b = TableBuilder::new(vec!["z".into(), "x".into(), "y".into()]);
        for (z, x, y) in [("a", 1, 10.0), ("a", 2, 20.0), ("b", 1, 5.0), ("b", 2, 2.5)] {
            b.push_row(vec![Value::Str(z.into()), Value::Int(x), Value::Float(y)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn builder_produces_schema() {
        let t = sample();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.schema().field("z").unwrap().data_type, DataType::Str);
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Int);
        assert_eq!(t.schema().field("y").unwrap().data_type, DataType::Float);
    }

    #[test]
    fn filter_conjunction() {
        let t = sample();
        let idx = t
            .filter_indices(&[
                Predicate::new("z", CompareOp::Eq, Value::Str("a".into())),
                Predicate::new("y", CompareOp::Gt, Value::Float(15.0)),
            ])
            .unwrap();
        assert_eq!(idx, vec![1]);
        let sub = t.take(&idx);
        assert_eq!(sub.num_rows(), 1);
        assert_eq!(sub.value(0, "y").unwrap(), Value::Float(20.0));
    }

    #[test]
    fn mismatched_row_arity_errors() {
        let mut b = TableBuilder::new(vec!["a".into()]);
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn new_rejects_length_mismatch() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let res = Table::new(schema, vec![Column::Int(vec![1]), Column::Int(vec![1, 2])]);
        assert!(matches!(res, Err(DataError::LengthMismatch { .. })));
    }

    #[test]
    fn new_rejects_type_mismatch() {
        let schema = Schema::new(vec![Field::new("a", DataType::Float)]);
        let res = Table::new(schema, vec![Column::Int(vec![1])]);
        assert!(matches!(res, Err(DataError::TypeMismatch { .. })));
    }

    #[test]
    fn series_helper_builds_trendlines() {
        let t = table_from_series(
            "gene",
            "t",
            "expr",
            &[("g1".into(), vec![(0.0, 1.0), (1.0, 2.0)])],
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "expr").unwrap(), Value::Float(2.0));
    }
}
