//! Columnar storage. Each column stores one type contiguously; strings are
//! dictionary-encoded (a `Vec<u32>` of codes plus a shared dictionary), which
//! makes the group-by on the `z` attribute in EXTRACT a cheap integer
//! partition instead of repeated string hashing.

use crate::error::{DataError, Result};
use crate::schema::DataType;
use crate::value::Value;
use std::collections::HashMap;

/// A typed column of values. Nulls are represented in-band: `f64::NAN` for
/// floats; integers and strings are non-nullable (parsers promote nullable
/// integer columns to float).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit floats, with NaN as the null sentinel.
    Float(Vec<f64>),
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Distinct values, indexed by code.
        dict: Vec<String>,
    },
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Float => Column::Float(Vec::new()),
            DataType::Int => Column::Int(Vec::new()),
            DataType::Str => Column::Str {
                codes: Vec::new(),
                dict: Vec::new(),
            },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Float(_) => DataType::Float,
            Column::Int(_) => DataType::Int,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Float(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`. Panics if out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Float(v) => {
                let x = v[row];
                if x.is_nan() {
                    Value::Null
                } else {
                    Value::Float(x)
                }
            }
            Column::Int(v) => Value::Int(v[row]),
            Column::Str { codes, dict } => Value::Str(dict[codes[row] as usize].clone()),
        }
    }

    /// Numeric view of the column: floats as-is, ints widened. Strings error.
    pub fn numeric(&self, name: &str) -> Result<Vec<f64>> {
        match self {
            Column::Float(v) => Ok(v.clone()),
            Column::Int(v) => Ok(v.iter().map(|&i| i as f64).collect()),
            Column::Str { .. } => Err(DataError::TypeMismatch {
                column: name.to_owned(),
                expected: "numeric",
                actual: "string",
            }),
        }
    }

    /// Numeric value at `row` without materializing the whole column.
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Float(v) => {
                let x = v[row];
                (!x.is_nan()).then_some(x)
            }
            Column::Int(v) => Some(v[row] as f64),
            Column::Str { .. } => None,
        }
    }

    /// Dictionary code at `row` for string columns.
    pub fn code_at(&self, row: usize) -> Option<u32> {
        match self {
            Column::Str { codes, .. } => Some(codes[row]),
            _ => None,
        }
    }

    /// Materializes the subset of rows given by `indices`, preserving order
    /// and (for strings) the original dictionary.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Str { codes, dict } => Column::Str {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
            },
        }
    }
}

/// Incremental builder for a single column; infers the narrowest type that
/// fits all pushed values (Int ⊂ Float; anything non-numeric forces Str).
#[derive(Debug, Default)]
pub struct ColumnBuilder {
    values: Vec<Value>,
}

impl ColumnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one value.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no values have been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Finishes the column, choosing Int if every value is an integer, Float
    /// if every value is numeric or null, and Str otherwise (nulls become "").
    pub fn finish(self) -> Column {
        let all_int = self.values.iter().all(|v| matches!(v, Value::Int(_)));
        if all_int && !self.values.is_empty() {
            return Column::Int(
                self.values
                    .into_iter()
                    .map(|v| v.as_i64().expect("checked all-int"))
                    .collect(),
            );
        }
        let all_numeric = self
            .values
            .iter()
            .all(|v| matches!(v, Value::Int(_) | Value::Float(_) | Value::Null));
        if all_numeric {
            return Column::Float(
                self.values
                    .into_iter()
                    .map(|v| v.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            );
        }
        let mut dict: Vec<String> = Vec::new();
        let mut lookup: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(self.values.len());
        for v in self.values {
            let s = match v {
                Value::Null => String::new(),
                other => other.to_string(),
            };
            let code = *lookup.entry(s.clone()).or_insert_with(|| {
                dict.push(s);
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        Column::Str { codes, dict }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_int() {
        let mut b = ColumnBuilder::new();
        b.push(Value::Int(1));
        b.push(Value::Int(2));
        assert_eq!(b.finish(), Column::Int(vec![1, 2]));
    }

    #[test]
    fn builder_infers_float_on_mixed_numeric() {
        let mut b = ColumnBuilder::new();
        b.push(Value::Int(1));
        b.push(Value::Float(2.5));
        b.push(Value::Null);
        let col = b.finish();
        match col {
            Column::Float(v) => {
                assert_eq!(v[0], 1.0);
                assert_eq!(v[1], 2.5);
                assert!(v[2].is_nan());
            }
            other => panic!("expected float column, got {other:?}"),
        }
    }

    #[test]
    fn builder_falls_back_to_string() {
        let mut b = ColumnBuilder::new();
        b.push(Value::Str("a".into()));
        b.push(Value::Int(1));
        b.push(Value::Str("a".into()));
        let col = b.finish();
        match &col {
            Column::Str { codes, dict } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes[0], codes[2]);
                assert_ne!(codes[0], codes[1]);
            }
            other => panic!("expected string column, got {other:?}"),
        }
        assert_eq!(col.value(1), Value::Str("1".into()));
    }

    #[test]
    fn take_preserves_order_and_dict() {
        let mut b = ColumnBuilder::new();
        for s in ["a", "b", "c", "a"] {
            b.push(Value::Str(s.into()));
        }
        let col = b.finish();
        let sub = col.take(&[3, 1]);
        assert_eq!(sub.value(0), Value::Str("a".into()));
        assert_eq!(sub.value(1), Value::Str("b".into()));
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn numeric_view_widens_ints() {
        let col = Column::Int(vec![1, 2, 3]);
        assert_eq!(col.numeric("c").unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(col.numeric_at(2), Some(3.0));
    }

    #[test]
    fn numeric_view_rejects_strings() {
        let col = Column::Str {
            codes: vec![0],
            dict: vec!["a".into()],
        };
        assert!(col.numeric("c").is_err());
        assert_eq!(col.numeric_at(0), None);
        assert_eq!(col.code_at(0), Some(0));
    }

    #[test]
    fn null_float_reads_back_as_null() {
        let col = Column::Float(vec![f64::NAN, 1.0]);
        assert_eq!(col.value(0), Value::Null);
        assert_eq!(col.value(1), Value::Float(1.0));
        assert_eq!(col.numeric_at(0), None);
    }

    #[test]
    fn empty_columns() {
        for dt in [DataType::Float, DataType::Int, DataType::Str] {
            let c = Column::empty(dt);
            assert!(c.is_empty());
            assert_eq!(c.data_type(), dt);
        }
    }
}
