//! Hand-rolled CSV reader (RFC-4180 subset): comma separation, double-quote
//! quoting with `""` escapes, CRLF/LF line endings, and a mandatory header
//! row. Types are inferred per column ([`crate::Value::infer`] semantics).

use crate::error::{DataError, Result};
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use std::fs;
use std::path::Path;

/// Parses CSV text with a header row into a [`Table`].
///
/// # Errors
/// Fails on ragged rows, unterminated quotes, or an empty input.
pub fn read_str(input: &str) -> Result<Table> {
    let mut records = parse_records(input)?;
    if records.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            message: "empty CSV input: missing header row".into(),
        });
    }
    let header = records.remove(0);
    let ncols = header.len();
    let mut builder = TableBuilder::new(header);
    for (i, record) in records.into_iter().enumerate() {
        if record.len() != ncols {
            return Err(DataError::Parse {
                line: i + 2,
                message: format!("expected {ncols} fields, found {}", record.len()),
            });
        }
        builder.push_row(record.into_iter().map(|s| Value::infer(&s)).collect())?;
    }
    Ok(builder.finish())
}

/// Reads a CSV file from disk.
///
/// # Errors
/// Propagates I/O and parse errors.
pub fn read_file(path: impl AsRef<Path>) -> Result<Table> {
    let text = fs::read_to_string(path)?;
    read_str(&text)
}

/// Serializes a table to CSV text (header + rows), quoting fields that
/// contain commas, quotes, or newlines. `write_str` and [`read_str`] round
/// trip for any table.
pub fn write_str(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    out.push_str(
        &names
            .iter()
            .map(|n| quote_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in 0..table.num_rows() {
        let cells: Vec<String> = (0..table.num_columns())
            .map(|c| {
                let v = table.column_at(c).value(row);
                match v {
                    // Quoted-empty so a lone null row is not read back as a
                    // blank line.
                    Value::Null => quote_field(""),
                    other => quote_field(&other.to_string()),
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn quote_field(s: &str) -> String {
    // Empty fields are quoted so a lone null cell in a single-column table
    // is not mistaken for a blank line on re-read.
    if s.is_empty() {
        return "\"\"".to_owned();
    }
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Writes a table to a CSV file.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, write_str(table))?;
    Ok(())
}

/// Splits raw CSV text into records of fields, handling quoting.
fn parse_records(input: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    let mut saw_any = false;
    // Tracks whether the current line contained any character at all
    // (quotes and commas count) — only character-free lines are skipped.
    let mut line_had_content = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if c != '\n' && c != '\r' {
            line_had_content = true;
        }
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(DataError::Parse {
                        line,
                        message: "quote appearing mid-field".into(),
                    });
                }
                in_quotes = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Swallow; the following '\n' terminates the record.
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                // Skip truly blank lines (e.g. a trailing newline); a line
                // containing only `""` is a real single-field record.
                if line_had_content {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear();
                }
                line_had_content = false;
                line += 1;
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(DataError::Parse {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn basic_inference() {
        let t = read_str("z,x,y\na,1,1.5\nb,2,2.5\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field("z").unwrap().data_type, DataType::Str);
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Int);
        assert_eq!(t.schema().field("y").unwrap().data_type, DataType::Float);
        assert_eq!(t.value(1, "y").unwrap(), Value::Float(2.5));
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = read_str("name,v\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n").unwrap();
        assert_eq!(t.value(0, "name").unwrap(), Value::Str("a,b".into()));
        assert_eq!(t.value(1, "name").unwrap(), Value::Str("say \"hi\"".into()));
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        let t = read_str("name,v\n\"two\nlines\",1\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "name").unwrap(), Value::Str("two\nlines".into()));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_str("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "b").unwrap(), Value::Int(4));
    }

    #[test]
    fn missing_trailing_newline() {
        let t = read_str("a\n1").unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn ragged_row_is_an_error() {
        let err = read_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(read_str("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_str("").is_err());
    }

    #[test]
    fn empty_fields_become_null() {
        let t = read_str("a,b\n,2\n").unwrap();
        assert_eq!(t.value(0, "a").unwrap(), Value::Null);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = read_str("a\n1\n\n2\n").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn write_read_round_trip() {
        let input = "z,x,y\n\"a,1\",1,1.5\n\"say \"\"hi\"\"\",2,2.5\n";
        let t = read_str(input).unwrap();
        let out = write_str(&t);
        let t2 = read_str(&out).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn write_handles_nulls_and_specials() {
        // In a string column a null cell is stored as the empty string (the
        // dictionary has no null sentinel); numeric columns keep real nulls.
        let t = read_str("name,v\n,1\nplain,2\n,\n").unwrap();
        let out = write_str(&t);
        assert!(out.starts_with("name,v\n"));
        let t2 = read_str(&out).unwrap();
        assert_eq!(t2.value(0, "name").unwrap(), Value::Str(String::new()));
        // A nullable integer column is widened to float.
        assert_eq!(t2.value(1, "v").unwrap(), Value::Float(2.0));
        assert_eq!(t2.value(2, "v").unwrap(), Value::Null);
        // (No whole-table equality here: the null is an in-band NaN, and
        // NaN ≠ NaN under `PartialEq`.)
    }

    #[test]
    fn write_file_and_read_back() {
        let mut path = std::env::temp_dir();
        path.push(format!("ss_csv_{}.csv", std::process::id()));
        let t = read_str("a,b\n1,x\n2,y\n").unwrap();
        write_file(&t, &path).unwrap();
        let t2 = read_file(&path).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_file(&path).ok();
    }
}
