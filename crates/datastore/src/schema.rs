//! Table schemas: ordered, named, typed fields.

use crate::error::{DataError, Result};

/// Physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit IEEE-754 float.
    Float,
    /// 64-bit signed integer.
    Int,
    /// Dictionary-encoded UTF-8 string.
    Str,
}

impl DataType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Float => "float",
            DataType::Int => "int",
            DataType::Str => "string",
        }
    }
}

/// A named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields describing a table's columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from a list of fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_owned()))
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        let idx = self.index_of(name)?;
        Ok(&self.fields[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("z", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Float),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("x").unwrap(), 1);
        assert_eq!(s.index_of("y").unwrap(), 2);
        assert!(matches!(s.index_of("w"), Err(DataError::UnknownColumn(_))));
    }

    #[test]
    fn field_lookup() {
        let s = schema();
        assert_eq!(s.field("z").unwrap().data_type, DataType::Str);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn type_names() {
        assert_eq!(DataType::Float.name(), "float");
        assert_eq!(DataType::Int.name(), "int");
        assert_eq!(DataType::Str.name(), "string");
    }
}
