//! Aggregations applied when multiple `y` values share one `x` coordinate
//! within a trendline (the Real Estate dataset of Table 11 "has multiple y
//! values per x coordinate, and hence required aggregation (avg)").

/// Aggregation function over a group of y values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Arithmetic mean (the paper's default for Real Estate).
    #[default]
    Avg,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of values.
    Count,
}

impl Aggregation {
    /// Applies the aggregation to a non-empty slice. Returns `None` on empty
    /// input (no rows for the x coordinate).
    pub fn apply(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            Aggregation::Avg => values.iter().sum::<f64>() / values.len() as f64,
            Aggregation::Sum => values.iter().sum(),
            Aggregation::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Count => values.len() as f64,
        })
    }

    /// Parses a name such as `avg` (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "avg" | "mean" => Some(Aggregation::Avg),
            "sum" => Some(Aggregation::Sum),
            "min" => Some(Aggregation::Min),
            "max" => Some(Aggregation::Max),
            "count" => Some(Aggregation::Count),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_sum_min_max_count() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(Aggregation::Avg.apply(&v), Some(2.5));
        assert_eq!(Aggregation::Sum.apply(&v), Some(10.0));
        assert_eq!(Aggregation::Min.apply(&v), Some(1.0));
        assert_eq!(Aggregation::Max.apply(&v), Some(4.0));
        assert_eq!(Aggregation::Count.apply(&v), Some(4.0));
    }

    #[test]
    fn empty_input_yields_none() {
        assert_eq!(Aggregation::Avg.apply(&[]), None);
    }

    #[test]
    fn single_value() {
        assert_eq!(Aggregation::Avg.apply(&[7.0]), Some(7.0));
        assert_eq!(Aggregation::Min.apply(&[7.0]), Some(7.0));
    }

    #[test]
    fn parse_names() {
        assert_eq!(Aggregation::parse("AVG"), Some(Aggregation::Avg));
        assert_eq!(Aggregation::parse("mean"), Some(Aggregation::Avg));
        assert_eq!(Aggregation::parse("sum"), Some(Aggregation::Sum));
        assert_eq!(Aggregation::parse("bogus"), None);
    }

    #[test]
    fn default_is_avg() {
        assert_eq!(Aggregation::default(), Aggregation::Avg);
    }
}
