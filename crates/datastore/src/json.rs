//! Hand-rolled JSON-lines reader: one flat JSON object per line, with
//! string / number / bool / null values. This covers the paper's "raw file in
//! CSV or JSON" ingestion path without pulling in a JSON dependency.

use crate::error::{DataError, Result};
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Parses JSON-lines text into a [`Table`]. The column set is the union of
/// keys seen across all records; missing keys become nulls. Keys are ordered
/// alphabetically for determinism.
///
/// # Errors
/// Fails on malformed JSON or non-scalar field values.
pub fn read_str(input: &str) -> Result<Table> {
    let mut rows: Vec<BTreeMap<String, Value>> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        rows.push(parse_object(line, i + 1)?);
    }
    let mut keys: Vec<String> = Vec::new();
    for row in &rows {
        for k in row.keys() {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
    }
    keys.sort();
    let mut builder = TableBuilder::new(keys.clone());
    for row in rows {
        let values = keys
            .iter()
            .map(|k| row.get(k).cloned().unwrap_or(Value::Null))
            .collect();
        builder.push_row(values)?;
    }
    Ok(builder.finish())
}

/// Reads a JSON-lines file from disk.
///
/// # Errors
/// Propagates I/O and parse errors.
pub fn read_file(path: impl AsRef<Path>) -> Result<Table> {
    let text = fs::read_to_string(path)?;
    read_str(&text)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn err(&self, message: impl Into<String>) -> DataError {
        DataError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let c = decode_unicode_escape(self.bytes, &mut self.pos)
                                .map_err(|m| self.err(m))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full code point.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => {
                self.take_literal("true")?;
                Ok(Value::Int(1))
            }
            Some(b'f') => {
                self.take_literal("false")?;
                Ok(Value::Int(0))
            }
            Some(b'n') => {
                self.take_literal("null")?;
                Ok(Value::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!(
                "unsupported JSON value starting with `{}`",
                b as char
            ))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    fn take_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected literal `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid integer `{text}`")))
        }
    }
}

fn read_hex4(bytes: &[u8], pos: &mut usize) -> std::result::Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| "non-utf8 \\u escape".to_owned())?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_owned())?;
    *pos += 4;
    Ok(code)
}

/// Decodes the payload of a JSON `\u` escape with `*pos` just past the
/// `u`, consuming a following `\uDC00`–`\uDFFF` escape when the first
/// code unit is a high surrogate (non-BMP characters arrive as UTF-16
/// surrogate pairs). Unpaired surrogates are an error, not U+FFFD.
/// Shared with the server crate's full-JSON parser.
pub fn decode_unicode_escape(bytes: &[u8], pos: &mut usize) -> std::result::Result<char, String> {
    let code = read_hex4(bytes, pos)?;
    match code {
        0xD800..=0xDBFF => {
            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u') {
                return Err("unpaired utf-16 surrogate".into());
            }
            *pos += 2;
            let low = read_hex4(bytes, pos)?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err("unpaired utf-16 surrogate".into());
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(combined).ok_or_else(|| "bad surrogate pair".to_owned())
        }
        0xDC00..=0xDFFF => Err("unpaired utf-16 surrogate".into()),
        code => char::from_u32(code).ok_or_else(|| "bad \\u escape".to_owned()),
    }
}

/// Width in bytes of a UTF-8 sequence from its leading byte. Shared
/// with the server crate's full-JSON parser.
pub fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_object(line: &str, line_no: usize) -> Result<BTreeMap<String, Value>> {
    let mut c = Cursor::new(line, line_no);
    c.skip_ws();
    c.expect(b'{')?;
    let mut map = BTreeMap::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        return Ok(map);
    }
    loop {
        c.skip_ws();
        let key = c.parse_string()?;
        c.skip_ws();
        c.expect(b':')?;
        let value = c.parse_value()?;
        map.insert(key, value);
        c.skip_ws();
        match c.peek() {
            Some(b',') => {
                c.pos += 1;
            }
            Some(b'}') => {
                c.pos += 1;
                c.skip_ws();
                if c.peek().is_some() {
                    return Err(c.err("trailing content after object"));
                }
                return Ok(map);
            }
            _ => return Err(c.err("expected `,` or `}` in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn basic_objects() {
        let t =
            read_str("{\"z\":\"a\",\"x\":1,\"y\":1.5}\n{\"z\":\"b\",\"x\":2,\"y\":2.5}\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "z").unwrap(), Value::Str("a".into()));
        assert_eq!(t.value(1, "y").unwrap(), Value::Float(2.5));
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Int);
    }

    #[test]
    fn missing_keys_become_null() {
        let t = read_str("{\"a\":1}\n{\"b\":2.0}\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "b").unwrap(), Value::Null);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
    }

    #[test]
    fn escapes_and_unicode() {
        let t = read_str("{\"s\":\"a\\n\\\"b\\\" \\u00e9\"}\n").unwrap();
        assert_eq!(t.value(0, "s").unwrap(), Value::Str("a\n\"b\" é".into()));
    }

    #[test]
    fn surrogate_pairs_decode_and_unpaired_reject() {
        // U+1F4C8 encoded as a UTF-16 surrogate pair.
        let t = read_str("{\"s\":\"\\ud83d\\udcc8\"}\n").unwrap();
        assert_eq!(t.value(0, "s").unwrap(), Value::Str("\u{1F4C8}".into()));
        assert!(read_str("{\"s\":\"\\ud83d\"}\n").is_err());
        assert!(read_str("{\"s\":\"\\udcc8\"}\n").is_err());
    }

    #[test]
    fn bools_become_ints() {
        let t = read_str("{\"flag\":true}\n{\"flag\":false}\n").unwrap();
        assert_eq!(t.value(0, "flag").unwrap(), Value::Int(1));
        assert_eq!(t.value(1, "flag").unwrap(), Value::Int(0));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let t = read_str("{\"v\":-3}\n{\"v\":1e2}\n").unwrap();
        assert_eq!(t.value(0, "v").unwrap(), Value::Float(-3.0));
        assert_eq!(t.value(1, "v").unwrap(), Value::Float(100.0));
    }

    #[test]
    fn empty_object_and_blank_lines() {
        // An empty object contributes no columns; with zero columns the table
        // has no representable rows.
        let t = read_str("\n{}\n").unwrap();
        assert_eq!(t.num_columns(), 0);
        // Blank lines between objects are skipped.
        let t = read_str("{\"a\":1}\n\n{\"a\":2}\n").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn malformed_reports_line() {
        let err = read_str("{\"a\":1}\n{oops}\n").unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(read_str("{\"a\":1} extra\n").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(read_str("{\"a\":\"oops}\n").is_err());
    }
}
