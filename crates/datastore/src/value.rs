//! Dynamically-typed scalar values used at table boundaries (parsing,
//! filtering literals). Hot paths operate on typed columns instead.

use std::cmp::Ordering;
use std::fmt;

/// A single scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit float.
    Float(f64),
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Missing value.
    Null,
}

impl Value {
    /// Returns the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used for filtering: numerics compare numerically (ints are
    /// widened to floats), strings lexicographically, and nulls sort first.
    /// Cross-type comparisons order Null < numeric < string.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
            (a, b) => {
                // Both numeric at this point.
                let (a, b) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                a.total_cmp(&b)
            }
        }
    }

    /// Parses a raw text token into the most specific value type:
    /// empty → Null, integer → Int, float → Float, otherwise → Str.
    pub fn infer(token: &str) -> Value {
        let trimmed = token.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("null") {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(trimmed.to_owned())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_types() {
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-17"), Value::Int(-17));
        assert_eq!(Value::infer("3.5"), Value::Float(3.5));
        assert_eq!(Value::infer("1e3"), Value::Float(1000.0));
        assert_eq!(Value::infer("abc"), Value::Str("abc".into()));
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("  NULL "), Value::Null);
    }

    #[test]
    fn numeric_widening_in_cmp() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_sorts_first_strings_last() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Int(0).total_cmp(&Value::Str("a".into())),
            Ordering::Less
        );
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_round_trips_numbers() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(1.25).to_string(), "1.25");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
