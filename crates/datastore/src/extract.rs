//! The EXTRACT physical operator (paper §5.3, step 1): "selects and
//! aggregates records from the data source based on the z, x, y, filters (f),
//! and aggregation (a) constraints, and sorts them on z and x attributes
//! before streaming them to downstream operators."
//!
//! Push-down optimization (a) from §5.4 is exposed through
//! [`ExtractOptions::require_x_ranges`]: visualizations without any value in
//! a required x-range are pruned here, before GROUP/SEGMENT/SCORE ever see
//! them.

use crate::error::{DataError, Result};
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use crate::VisualSpec;
use std::collections::HashMap;

/// One point of a trendline, after aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// A candidate visualization: the trendline for one distinct `z` value,
/// sorted by `x`, with duplicate `x` values aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct Trendline {
    /// The `z` value identifying this visualization.
    pub key: String,
    /// The (x, y) points, ascending in x.
    pub points: Vec<TrendPoint>,
}

impl Trendline {
    /// Convenience constructor from raw (x, y) pairs.
    pub fn from_pairs(key: impl Into<String>, pairs: &[(f64, f64)]) -> Self {
        Self {
            key: key.into(),
            points: pairs.iter().map(|&(x, y)| TrendPoint { x, y }).collect(),
        }
    }

    /// Y values as a contiguous vector (used by the similarity baselines).
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }

    /// X values as a contiguous vector.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.x).collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trendline has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Knobs for EXTRACT, including push-down constraints.
#[derive(Debug, Clone, Default)]
pub struct ExtractOptions {
    /// Push-down (a): prune visualizations that have no point inside *each*
    /// of these inclusive x ranges.
    pub require_x_ranges: Vec<(f64, f64)>,
    /// Drop trendlines with fewer points than this (default 2: a single point
    /// cannot form a line segment).
    pub min_points: usize,
}

impl ExtractOptions {
    /// Options with a required-x-range push-down constraint.
    pub fn with_ranges(ranges: Vec<(f64, f64)>) -> Self {
        Self {
            require_x_ranges: ranges,
            min_points: 2,
        }
    }
}

/// Runs EXTRACT: filter → project (z, x, y) → group by z → sort by x →
/// aggregate duplicate x. Returns trendlines ordered by first appearance of
/// their `z` value (stable, deterministic).
///
/// # Errors
/// Fails when referenced columns are missing or `x`/`y` are non-numeric.
pub fn extract(table: &Table, spec: &VisualSpec, opts: &ExtractOptions) -> Result<Vec<Trendline>> {
    let rows = table.filter_indices(&spec.filters)?;
    let z_col = table.column(&spec.z)?;
    let x_col = table.column(&spec.x)?;
    let y_col = table.column(&spec.y)?;
    // Validate numeric axis types eagerly for a clear error.
    for (name, col) in [(&spec.x, x_col), (&spec.y, y_col)] {
        if col.data_type() == DataType::Str {
            return Err(DataError::TypeMismatch {
                column: name.clone(),
                expected: "numeric",
                actual: "string",
            });
        }
    }

    // Group row indices by z value, keeping first-appearance order.
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for &row in &rows {
        let key = match z_col.value(row) {
            Value::Str(s) => s,
            other => other.to_string(),
        };
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(row);
    }

    let min_points = opts.min_points.max(2);
    let mut result = Vec::with_capacity(order.len());
    'next_group: for key in order {
        let idxs = &groups[&key];
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(idxs.len());
        for &row in idxs {
            let (Some(x), Some(y)) = (x_col.numeric_at(row), y_col.numeric_at(row)) else {
                continue; // skip null coordinates
            };
            pts.push((x, y));
        }
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Aggregate duplicate x coordinates.
        let mut points: Vec<TrendPoint> = Vec::with_capacity(pts.len());
        let mut i = 0;
        while i < pts.len() {
            let x = pts[i].0;
            let mut j = i;
            while j < pts.len() && pts[j].0 == x {
                j += 1;
            }
            let ys: Vec<f64> = pts[i..j].iter().map(|p| p.1).collect();
            let y = spec
                .aggregation
                .apply(&ys)
                .expect("non-empty group by construction");
            points.push(TrendPoint { x, y });
            i = j;
        }

        if points.len() < min_points {
            continue;
        }
        // Push-down (a): require coverage of every requested x range.
        for &(lo, hi) in &opts.require_x_ranges {
            if !points.iter().any(|p| p.x >= lo && p.x <= hi) {
                continue 'next_group;
            }
        }
        result.push(Trendline { key, points });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{CompareOp, Predicate};
    use crate::table::TableBuilder;
    use crate::Aggregation;

    fn sample() -> Table {
        let mut b = TableBuilder::new(vec!["z".into(), "x".into(), "y".into()]);
        let rows = [
            ("a", 2, 20.0),
            ("a", 1, 10.0),
            ("b", 1, 5.0),
            ("a", 2, 40.0), // duplicate x=2 for z=a
            ("b", 2, 2.5),
            ("b", 3, 7.5),
        ];
        for (z, x, y) in rows {
            b.push_row(vec![Value::Str(z.into()), Value::Int(x), Value::Float(y)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn groups_sorts_and_aggregates() {
        let spec = VisualSpec::new("z", "x", "y");
        let trends = extract(&sample(), &spec, &ExtractOptions::default()).unwrap();
        assert_eq!(trends.len(), 2);
        assert_eq!(trends[0].key, "a");
        // x sorted ascending; duplicate x=2 averaged: (20+40)/2 = 30.
        assert_eq!(
            trends[0].points,
            vec![
                TrendPoint { x: 1.0, y: 10.0 },
                TrendPoint { x: 2.0, y: 30.0 },
            ]
        );
        assert_eq!(trends[1].key, "b");
        assert_eq!(trends[1].len(), 3);
    }

    #[test]
    fn aggregation_variants() {
        let spec = VisualSpec::new("z", "x", "y").with_aggregation(Aggregation::Max);
        let trends = extract(&sample(), &spec, &ExtractOptions::default()).unwrap();
        assert_eq!(trends[0].points[1].y, 40.0);
        let spec = VisualSpec::new("z", "x", "y").with_aggregation(Aggregation::Sum);
        let trends = extract(&sample(), &spec, &ExtractOptions::default()).unwrap();
        assert_eq!(trends[0].points[1].y, 60.0);
    }

    #[test]
    fn filters_apply_before_grouping() {
        let spec =
            VisualSpec::new("z", "x", "y").with_filter(Predicate::new("z", CompareOp::Eq, "b"));
        let trends = extract(&sample(), &spec, &ExtractOptions::default()).unwrap();
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].key, "b");
    }

    #[test]
    fn x_range_pushdown_prunes() {
        let spec = VisualSpec::new("z", "x", "y");
        // Only z=b has a point with x >= 3.
        let opts = ExtractOptions::with_ranges(vec![(3.0, 10.0)]);
        let trends = extract(&sample(), &spec, &opts).unwrap();
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].key, "b");
    }

    #[test]
    fn single_point_trendlines_are_dropped() {
        let mut b = TableBuilder::new(vec!["z".into(), "x".into(), "y".into()]);
        b.push_row(vec![
            Value::Str("solo".into()),
            Value::Int(1),
            Value::Float(1.0),
        ])
        .unwrap();
        b.push_row(vec![
            Value::Str("pair".into()),
            Value::Int(1),
            Value::Float(1.0),
        ])
        .unwrap();
        b.push_row(vec![
            Value::Str("pair".into()),
            Value::Int(2),
            Value::Float(2.0),
        ])
        .unwrap();
        let t = b.finish();
        let trends = extract(
            &t,
            &VisualSpec::new("z", "x", "y"),
            &ExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].key, "pair");
    }

    #[test]
    fn unknown_column_errors() {
        let spec = VisualSpec::new("nope", "x", "y");
        assert!(extract(&sample(), &spec, &ExtractOptions::default()).is_err());
    }

    #[test]
    fn string_y_column_errors() {
        let spec = VisualSpec::new("x", "y", "z"); // z (string) used as y
        let res = extract(&sample(), &spec, &ExtractOptions::default());
        assert!(res.is_err());
    }

    #[test]
    fn trendline_helpers() {
        let t = Trendline::from_pairs("k", &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(t.ys(), vec![1.0, 2.0]);
        assert_eq!(t.xs(), vec![0.0, 1.0]);
        assert!(!t.is_empty());
    }
}
