//! The dataset catalog: register a CSV / JSON-lines source once, run
//! EXTRACT eagerly, partition the trendlines into engine shards, and
//! share the immutable [`ShardedEngine`] across every request thread via
//! `Arc`.
//!
//! Registration is the expensive, rare operation (file parse + trendline
//! extraction + shard partitioning); queries are the hot path and only
//! ever take the read lock, so worker threads never serialize behind
//! each other on lookup.
//!
//! The catalog also carries each dataset's **partition map**: one
//! [`ShardPlacement`] per shard, recording whether that shard executes
//! in this process ([`ShardPlacement::Local`]) or on remote shard
//! servers ([`ShardPlacement::Remote`], a *replica list* of equivalent
//! `host:port` endpoints reached over `POST /shard/query` with
//! health-checked failover). Placements are set at registration
//! (`"shard_endpoints"` in the HTTP body, `--shard-endpoint` on the
//! CLI, or resolved from the heartbeat [`Registry`] with
//! `"shard_endpoints": "registry"`) and are immutable afterwards —
//! repointing a shard means re-registering, which bumps the generation
//! *and* changes the placement fingerprint baked into cache keys.

use crate::error::ServerError;
use crate::resident::ResidentShards;
use shapesearch_core::{ShapeEngine, ShardedEngine, Snapshot, SnapshotError};
use shapesearch_datastore::{csv, json, Table, VisualSpec};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Where one shard of a dataset executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlacement {
    /// The shard's engine lives in this process; its tasks run on the
    /// server's compute pool.
    Local,
    /// The shard is owned by remote shard servers (`shapesearch serve
    /// --shard-of` processes) — a non-empty list of *replica* endpoints
    /// (`host:port`) holding the identical partition, queried over
    /// `POST /shard/query` in declared order with failover.
    Remote(Vec<String>),
}

impl ShardPlacement {
    /// The placement's cache-fingerprint token: `local`, or the remote
    /// replica endpoints `|`-joined (a singleton replica list is the
    /// bare endpoint — byte-compatible with pre-replication keys).
    pub fn fingerprint(&self) -> String {
        match self {
            ShardPlacement::Local => "local".to_owned(),
            ShardPlacement::Remote(replicas) => replicas.join("|"),
        }
    }
}

/// How a registration names its per-shard placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardEndpoints {
    /// One entry per shard in partition order: `None` = local,
    /// `Some(replicas)` = a non-empty replica list of remote shard
    /// servers holding that partition.
    Explicit(Vec<Option<Vec<String>>>),
    /// Resolve the placement from the heartbeat [`Registry`] at
    /// registration time (`"shard_endpoints": "registry"` on the wire).
    /// Requires an explicit dataset id; the resolved placement is then
    /// immutable like an explicit one — later heartbeats change the
    /// registry, not a registered dataset.
    FromRegistry,
}

/// How long one heartbeat keeps a shard-server endpoint *fresh* in the
/// [`Registry`]. Shard servers announce every few seconds
/// (`serve --announce`), so 30 s tolerates a couple of missed beats
/// without resolving a placement onto a corpse.
pub const REGISTRY_TTL_SECS: u64 = 30;

/// One row of a [`Registry`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// The dataset id the shard server announced for.
    pub dataset: String,
    /// The partition index it owns.
    pub shard: usize,
    /// The total partition count it was split with.
    pub shards: usize,
    /// The shard server's `host:port`.
    pub endpoint: String,
    /// Seconds since its last heartbeat.
    pub age_secs: u64,
    /// Whether the entry is still within [`REGISTRY_TTL_SECS`].
    pub fresh: bool,
}

/// One shard slot's heartbeat-staleness rollup for `/healthz`: a slot
/// is one announced `(dataset, shard, shards)` partition key, and its
/// replicas are every endpoint that has ever announced for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotStaleness {
    /// The dataset id announced for.
    pub dataset: String,
    /// The partition index.
    pub shard: usize,
    /// The partition total it was split with.
    pub shards: usize,
    /// Endpoints ever heard for this slot (fresh or stale).
    pub replicas: usize,
    /// Endpoints still within [`REGISTRY_TTL_SECS`].
    pub fresh_replicas: usize,
    /// Seconds since the most recent heartbeat across the slot's
    /// replicas.
    pub freshest_age_secs: u64,
    /// Seconds since the oldest heartbeat across the slot's replicas —
    /// the replica closest to falling out of the registry.
    pub stalest_age_secs: u64,
}

/// The topology registry: shard servers `POST /registry/heartbeat`
/// `{dataset, shard_of: "i/n", endpoint}` every few seconds, and a
/// registration with `"shard_endpoints": "registry"` resolves its
/// partition map from the *fresh* entries instead of being told one.
/// `GET /registry` exposes the whole table for operators.
#[derive(Default)]
pub struct Registry {
    /// `(dataset, shard index, total)` → endpoint → last heartbeat.
    inner: Mutex<RegistryTable>,
}

/// `(dataset, shard index, total)` → endpoint → last heartbeat.
type RegistryTable = BTreeMap<(String, usize, usize), BTreeMap<String, Instant>>;

impl Registry {
    /// Records (or refreshes) one shard server's announcement.
    ///
    /// # Errors
    /// Rejects an out-of-range index, a zero total, or an empty
    /// endpoint.
    pub fn heartbeat(
        &self,
        dataset: &str,
        shard: usize,
        shards: usize,
        endpoint: &str,
    ) -> Result<(), ServerError> {
        if dataset.is_empty() {
            return Err(ServerError::bad_request("heartbeat without a dataset id"));
        }
        if shards == 0 || shard >= shards {
            return Err(ServerError::bad_request(format!(
                "heartbeat shard_of {shard}/{shards} is out of range"
            )));
        }
        if endpoint.is_empty() {
            return Err(ServerError::bad_request("heartbeat without an endpoint"));
        }
        self.inner
            .lock()
            .expect("registry lock")
            .entry((dataset.to_owned(), shard, shards))
            .or_default()
            .insert(endpoint.to_owned(), Instant::now());
        Ok(())
    }

    /// Every announcement ever heard, in deterministic
    /// (dataset, shard, endpoint) order, stale ones included (marked).
    pub fn snapshot(&self) -> Vec<RegistryEntry> {
        let ttl = Duration::from_secs(REGISTRY_TTL_SECS);
        let now = Instant::now();
        let inner = self.inner.lock().expect("registry lock");
        inner
            .iter()
            .flat_map(|((dataset, shard, shards), endpoints)| {
                endpoints.iter().map(move |(endpoint, at)| {
                    let age = now.saturating_duration_since(*at);
                    RegistryEntry {
                        dataset: dataset.clone(),
                        shard: *shard,
                        shards: *shards,
                        endpoint: endpoint.clone(),
                        age_secs: age.as_secs(),
                        fresh: age <= ttl,
                    }
                })
            })
            .collect()
    }

    /// Per-slot staleness rollup for `/healthz`: one row per announced
    /// `(dataset, shard, shards)` slot with the age of its freshest and
    /// stalest heartbeat and how many of its replicas are still fresh.
    /// Deterministic slot order (the table is a `BTreeMap`).
    pub fn slot_staleness(&self) -> Vec<SlotStaleness> {
        let ttl = Duration::from_secs(REGISTRY_TTL_SECS);
        let now = Instant::now();
        let inner = self.inner.lock().expect("registry lock");
        inner
            .iter()
            .map(|((dataset, shard, shards), endpoints)| {
                let ages: Vec<u64> = endpoints
                    .values()
                    .map(|at| now.saturating_duration_since(*at).as_secs())
                    .collect();
                let fresh = endpoints
                    .values()
                    .filter(|at| now.saturating_duration_since(**at) <= ttl)
                    .count();
                SlotStaleness {
                    dataset: dataset.clone(),
                    shard: *shard,
                    shards: *shards,
                    replicas: endpoints.len(),
                    fresh_replicas: fresh,
                    freshest_age_secs: ages.iter().copied().min().unwrap_or(0),
                    stalest_age_secs: ages.iter().copied().max().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Resolves a dataset's full placement from fresh heartbeats: one
    /// replica list per partition, replicas in lexicographic endpoint
    /// order (announcement timing must not change the placement
    /// fingerprint).
    ///
    /// # Errors
    /// Describes exactly what is missing: no announcements, shard
    /// servers disagreeing on the total, or an uncovered partition.
    pub fn resolve(&self, dataset: &str) -> Result<Vec<Vec<String>>, String> {
        let ttl = Duration::from_secs(REGISTRY_TTL_SECS);
        let now = Instant::now();
        let inner = self.inner.lock().expect("registry lock");
        let mut totals: Vec<usize> = Vec::new();
        let mut by_shard: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for ((ds, shard, shards), endpoints) in inner.iter() {
            if ds != dataset {
                continue;
            }
            let fresh: Vec<String> = endpoints
                .iter()
                .filter(|(_, at)| now.saturating_duration_since(**at) <= ttl)
                .map(|(ep, _)| ep.clone())
                .collect();
            if fresh.is_empty() {
                continue;
            }
            if !totals.contains(shards) {
                totals.push(*shards);
            }
            by_shard.entry(*shard).or_default().extend(fresh);
        }
        if by_shard.is_empty() {
            return Err(format!(
                "no fresh heartbeat for dataset `{dataset}` in the registry"
            ));
        }
        if totals.len() > 1 {
            totals.sort_unstable();
            return Err(format!(
                "shard servers for `{dataset}` disagree on the partition \
                 total: {totals:?}"
            ));
        }
        let total = totals[0];
        let mut placement = Vec::with_capacity(total);
        for shard in 0..total {
            match by_shard.get(&shard) {
                Some(replicas) => {
                    let mut replicas = replicas.clone();
                    replicas.sort_unstable();
                    replicas.dedup();
                    placement.push(replicas);
                }
                None => {
                    return Err(format!(
                        "partition {shard}/{total} of `{dataset}` has no fresh \
                         heartbeat"
                    ))
                }
            }
        }
        Ok(placement)
    }
}

/// Where a dataset's rows come from.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// A server-local file path; format chosen by extension
    /// (`.json`/`.jsonl` → JSON-lines, anything else → CSV).
    Path(String),
    /// Inline CSV text shipped in the request body.
    InlineCsv(String),
    /// Inline JSON-lines text shipped in the request body.
    InlineJsonl(String),
    /// A server-local on-disk snapshot (`shapesearch snapshot` output):
    /// pre-extracted, pre-GROUPed columnar state served via mmap with
    /// lazily resident shards instead of an eager EXTRACT.
    Snapshot(String),
}

/// A catalog registration request.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Optional caller-chosen id; autogenerated (`ds1`, `ds2`, …) if empty.
    pub id: Option<String>,
    /// Human-readable name for listings.
    pub name: String,
    /// Where the rows come from.
    pub source: DataSource,
    /// Visual parameters: z (category), x, y, filters, aggregation.
    pub visual: VisualSpec,
    /// Registers the built-in mathematical UDPs (`concave`, `spike`, …)
    /// so queries may use them; on by default for the service.
    pub builtins: bool,
    /// Requested engine shard count. `None` uses the catalog's default
    /// (the server's `--shards`, or the machine's available parallelism
    /// when that is 0/auto); any value is capped by the collection size
    /// so no shard is ever empty.
    pub shards: Option<usize>,
    /// Optional per-shard placement; see [`ShardEndpoints`]. When
    /// explicit, the length *is* the shard count (it must agree with
    /// `shards` if both are given) and must survive the collection-size
    /// cap — remote endpoints cannot be silently dropped.
    pub shard_endpoints: Option<ShardEndpoints>,
    /// Shard-server mode: `Some((index, total))` registers only
    /// partition `index` of a deterministic `total`-way split of the
    /// source (global `viz_index`es preserved). The entry then answers
    /// `POST /shard/query` for a router whose partition map names this
    /// process.
    pub shard_of: Option<(usize, usize)>,
}

/// The lazy backing of a snapshot-registered dataset: the validated
/// mapped snapshot, the deterministic partition bounds of every shard
/// slot, and a handle on the catalog-wide resident-shard LRU the slots
/// materialize through. Local shards load on first touch
/// ([`DatasetEntry::local_shard`]) and evict under `--resident-shards`
/// pressure; remote slots are never materialized in this process.
pub struct SnapshotShards {
    /// The open, validated snapshot (kept mapped for the entry's life).
    pub snapshot: Arc<Snapshot>,
    /// Partition bounds per shard slot, aligned with the placement map.
    pub bounds: Vec<(usize, usize)>,
    /// The owning entry's generation — half of every residency key, so
    /// a replaced registration's shards can never be served again.
    pub generation: u64,
    /// Whether lazily loaded shards register the built-in UDPs.
    pub builtins: bool,
    /// The catalog-wide LRU shards load through.
    pub resident: Arc<ResidentShards>,
}

impl std::fmt::Debug for SnapshotShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotShards")
            .field("snapshot", &self.snapshot)
            .field("bounds", &self.bounds)
            .field("generation", &self.generation)
            .field("builtins", &self.builtins)
            .finish()
    }
}

/// An immutable registered dataset, shared across request threads.
#[derive(Debug)]
pub struct DatasetEntry {
    /// The dataset id queries address it by.
    pub id: String,
    /// Monotone registration counter, unique across the catalog's
    /// lifetime. Cache keys include it, so results computed against a
    /// replaced registration can never surface under the new one.
    pub generation: u64,
    /// Human-readable name for listings.
    pub name: String,
    /// The visual parameters EXTRACT ran with.
    pub visual: VisualSpec,
    /// The ready-to-query sharded engine over the extracted trendlines.
    /// Handlers fan per-shard tasks (`engine.shards()`) across the
    /// server's compute pool and merge with
    /// [`shapesearch_core::merge_topk`].
    pub engine: ShardedEngine,
    /// The engine's effective shard count (requested count capped by the
    /// collection size).
    pub shard_count: usize,
    /// The partition map: where each shard executes, aligned with
    /// [`ShardedEngine::shards`]. All-`Local` unless the registration
    /// named `shard_endpoints`.
    pub placement: Vec<ShardPlacement>,
    /// Deterministic fingerprint of the partition map (`local` or the
    /// endpoint, one token per shard, `;`-joined). Baked into cache keys
    /// so re-registering with a repointed shard can never serve bytes
    /// computed under the old placement.
    pub placement_fp: String,
    /// `Some((index, total))` when this entry is a shard-server
    /// partition rather than the whole collection.
    pub shard_of: Option<(usize, usize)>,
    /// Number of extracted trendlines (of the owned partition, in
    /// shard-of mode).
    pub trendline_count: usize,
    /// Total points across all trendlines (of the owned partition, in
    /// shard-of mode).
    pub point_count: usize,
    /// `Some` when this entry serves from an on-disk snapshot: local
    /// shards then materialize lazily through the resident LRU and
    /// `engine` holds only empty placeholder shards carrying the slot
    /// layout (count and base indices).
    pub snapshot: Option<SnapshotShards>,
}

impl DatasetEntry {
    /// True when any shard of this dataset executes remotely.
    pub fn has_remote_shards(&self) -> bool {
        self.placement
            .iter()
            .any(|p| matches!(p, ShardPlacement::Remote(_)))
    }

    /// True when this entry serves from an on-disk snapshot.
    pub fn from_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// The engine for **local** shard slot `slot` — the resident Arc for
    /// an eager entry, or a lazily materialized (and LRU-cached)
    /// partition of the snapshot for a snapshot entry. Loading is
    /// singleflight: queries racing a cold shard share one load.
    /// Byte-identity holds either way — a snapshot partition seeds the
    /// exact GROUP arena the eager path would build.
    ///
    /// # Errors
    /// Propagates a failed snapshot shard load (the slot is vacated for
    /// retry).
    ///
    /// # Panics
    /// Panics when `slot` is out of range or names a remote slot of a
    /// snapshot entry (remote partitions are never materialized here).
    pub fn local_shard(&self, slot: usize) -> Result<Arc<ShapeEngine>, ServerError> {
        let Some(snap) = &self.snapshot else {
            return Ok(Arc::clone(&self.engine.shards()[slot]));
        };
        assert_eq!(
            self.placement[slot],
            ShardPlacement::Local,
            "remote snapshot slots are served by their shard servers"
        );
        snap.resident.get_or_load((snap.generation, slot), || {
            let (start, end) = snap.bounds[slot];
            let part = snap.snapshot.partition(start, end);
            let mut engine = ShapeEngine::from_trendlines(part.trendlines).with_base_index(start);
            if snap.builtins {
                engine.register_builtin_udps();
            }
            engine.seed_grouped(snap.snapshot.bin_width(), part.grouped);
            Ok(Arc::new(engine))
        })
    }
}

/// Joins per-shard placement tokens into the entry fingerprint.
fn placement_fingerprint(placement: &[ShardPlacement]) -> String {
    placement
        .iter()
        .map(ShardPlacement::fingerprint)
        .collect::<Vec<_>>()
        .join(";")
}

/// The shared catalog. Readers (queries) take the read lock; only
/// registration writes.
pub struct Catalog {
    inner: RwLock<HashMap<String, Arc<DatasetEntry>>>,
    next_id: AtomicU64,
    next_generation: AtomicU64,
    /// Shard count applied when a registration does not pin one.
    /// 0 = auto (the machine's available parallelism).
    default_shards: usize,
    /// Topology announcements from shard servers; consulted when a
    /// registration asks for `"shard_endpoints": "registry"`.
    registry: Registry,
    /// The resident-shard LRU snapshot-backed datasets load through;
    /// shared so one `--resident-shards` budget caps the whole process.
    resident: Arc<ResidentShards>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog with automatic shard sizing (available
    /// parallelism, capped per dataset by its collection size).
    pub fn new() -> Self {
        Self::with_default_shards(0)
    }

    /// An empty catalog whose unpinned registrations get
    /// `default_shards` engine shards (0 = auto).
    pub fn with_default_shards(default_shards: usize) -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_generation: AtomicU64::new(1),
            default_shards,
            registry: Registry::default(),
            resident: Arc::new(ResidentShards::default()),
        }
    }

    /// The configured default shard count (0 = auto).
    pub fn default_shards(&self) -> usize {
        self.default_shards
    }

    /// The resident-shard LRU snapshot-backed datasets load through.
    pub fn resident(&self) -> &Arc<ResidentShards> {
        &self.resident
    }

    /// Caps how many snapshot shards may be resident at once (0 =
    /// unlimited); the server's `--resident-shards` flag.
    pub fn set_resident_capacity(&self, capacity: usize) {
        self.resident.set_capacity(capacity);
    }

    /// Caps the byte budget of resident snapshot shards (0 = unlimited);
    /// the server's `--resident-bytes` flag. The budget counts each
    /// resident shard's columnar-arena size and never evicts below one
    /// shard.
    pub fn set_resident_capacity_bytes(&self, capacity_bytes: u64) {
        self.resident.set_capacity_bytes(capacity_bytes);
    }

    /// The heartbeat registry shard servers announce into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Resolves a registration's shard request: explicit request, else
    /// the catalog default, else available parallelism. The engine
    /// itself caps the result at the collection size (never an empty
    /// shard).
    fn resolve_shards(&self, requested: Option<usize>) -> usize {
        match requested.unwrap_or(self.default_shards) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    fn load_table(source: &DataSource) -> Result<Table, ServerError> {
        let table = match source {
            DataSource::Path(path) => {
                if path.ends_with(".json") || path.ends_with(".jsonl") {
                    json::read_file(path)
                } else {
                    csv::read_file(path)
                }
            }
            DataSource::InlineCsv(text) => csv::read_str(text),
            DataSource::InlineJsonl(text) => json::read_str(text),
            DataSource::Snapshot(_) => {
                unreachable!("snapshot sources take the register_snapshot path")
            }
        };
        table.map_err(|e| ServerError::bad_request(format!("loading dataset: {e}")))
    }

    /// Registers a dataset: loads the table, extracts trendlines eagerly,
    /// partitions them into shards (or retains one partition in shard-of
    /// mode), resolves the partition map, and publishes the engine.
    /// Replaces any previous dataset with the same id (the caller is
    /// responsible for invalidating cached results; [`crate::handlers`]
    /// does).
    ///
    /// # Errors
    /// Fails on unreadable/malformed sources, unknown columns,
    /// out-of-range shard-of indices, and placement/shard-count
    /// mismatches (including a collection too small for the number of
    /// named endpoints — a remote shard is never silently dropped).
    pub fn register(&self, spec: DatasetSpec) -> Result<Arc<DatasetEntry>, ServerError> {
        if let DataSource::Snapshot(path) = &spec.source {
            let path = path.clone();
            return self.register_snapshot(spec, &path);
        }
        let table = Self::load_table(&spec.source)?;

        // Resolve the placement request into an explicit per-shard
        // replica-list map before anything else, so the registry path
        // and the wire path flow through identical validation.
        let endpoints = self.resolve_endpoints(&spec)?;
        let shards = self.resolve_shard_request(&spec, endpoints.as_deref())?;

        let mut engine = match spec.shard_of {
            Some((index, total)) => ShardedEngine::shard_of(&table, &spec.visual, total, index),
            None => ShardedEngine::new(&table, &spec.visual, shards),
        }
        .map_err(|e| ServerError::bad_request(format!("extracting trendlines: {e}")))?;

        // Resolve the partition map against the *effective* shard count.
        let placement = Self::resolve_placement(
            endpoints.as_deref(),
            spec.shard_of.is_some(),
            engine.shard_count(),
        )?;

        // A remotely-placed shard's engine is never queried in this
        // process — its shard server owns the (identical, deterministic)
        // partition — so drop the payload now: an all-remote router must
        // not pay a whole collection's memory to route. The counts below
        // were taken before eviction, so listings still describe the
        // full collection.
        let trendline_count = engine.trendline_count();
        let point_count = engine.point_count();
        for (i, p) in placement.iter().enumerate() {
            if matches!(p, ShardPlacement::Remote(_)) {
                engine.evict_shard(i);
            }
        }

        if spec.builtins {
            engine.register_builtin_udps();
        }
        // Registration is the expensive, rare operation — build the
        // columnar GROUP arenas now so the first query on every shard
        // pays only SEGMENT+SCORE. (Evicted remote shards warm an empty
        // collection: a no-op.)
        engine.warm();
        let id = match spec.id {
            Some(id) if !id.is_empty() => id,
            _ => format!("ds{}", self.next_id.fetch_add(1, Ordering::Relaxed)),
        };
        let entry = Arc::new(DatasetEntry {
            id: id.clone(),
            generation: self.next_generation.fetch_add(1, Ordering::Relaxed),
            name: spec.name,
            visual: spec.visual,
            shard_count: engine.shard_count(),
            placement_fp: placement_fingerprint(&placement),
            placement,
            shard_of: spec.shard_of,
            trendline_count,
            point_count,
            engine,
            snapshot: None,
        });
        self.publish(id, entry)
    }

    /// Registers a dataset served from an on-disk snapshot
    /// ([`shapesearch_core::snapshot`]): opens and validates the file
    /// (mmap + checksums + structural invariants — a torn or corrupted
    /// snapshot is refused here with a structured `snapshot_invalid`
    /// error, before anything is published), computes the deterministic
    /// partition bounds, and publishes an entry whose **local shards
    /// materialize lazily** through the catalog's resident LRU on first
    /// touch. The entry's `engine` holds only empty placeholder shards
    /// carrying the slot layout; memory is paid per touched shard, not
    /// per registration.
    ///
    /// The snapshot stores extraction *output*, so `visual` is carried
    /// for listings but no EXTRACT runs; results are byte-identical to
    /// registering the original source eagerly.
    fn register_snapshot(
        &self,
        spec: DatasetSpec,
        path: &str,
    ) -> Result<Arc<DatasetEntry>, ServerError> {
        let snapshot = Snapshot::open(path).map_err(|e| match e {
            SnapshotError::Io { .. } => ServerError::bad_request(format!("loading dataset: {e}")),
            corrupt => ServerError::invalid_snapshot(corrupt.to_string()),
        })?;
        let snapshot = Arc::new(snapshot);

        let endpoints = self.resolve_endpoints(&spec)?;
        let shards = self.resolve_shard_request(&spec, endpoints.as_deref())?;

        // The slot layout: the full deterministic partition, or the one
        // owned partition in shard-of mode (mirroring the eager path's
        // out-of-range error).
        let bounds = match spec.shard_of {
            Some((index, total)) => {
                let all = snapshot.partition_bounds(total);
                let Some(&owned) = all.get(index) else {
                    return Err(ServerError::bad_request(format!(
                        "extracting trendlines: config error: shard index {index} \
                         out of range: the collection partitions into {} shard(s)",
                        all.len()
                    )));
                };
                vec![owned]
            }
            None => snapshot.partition_bounds(shards),
        };
        let placement =
            Self::resolve_placement(endpoints.as_deref(), spec.shard_of.is_some(), bounds.len())?;

        // Counts for listings: the whole collection, or the owned
        // partition in shard-of mode — same contract as the eager path.
        let per_trendline = snapshot.raw_point_counts();
        let (trendline_count, point_count) = match spec.shard_of {
            Some(_) => {
                let (start, end) = bounds[0];
                (end - start, per_trendline[start..end].iter().sum())
            }
            None => (snapshot.trendline_count(), snapshot.raw_point_count()),
        };

        // Placeholder shard engines: empty payloads with the real base
        // indices, so the fan-out sees the correct slot layout while
        // every byte of data stays on disk until a slot is touched.
        let placeholders = bounds
            .iter()
            .map(|&(start, _)| {
                Arc::new(ShapeEngine::from_trendlines(Vec::new()).with_base_index(start))
            })
            .collect();
        let engine = ShardedEngine::from_shard_engines(placeholders);

        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let id = match spec.id {
            Some(id) if !id.is_empty() => id,
            _ => format!("ds{}", self.next_id.fetch_add(1, Ordering::Relaxed)),
        };
        let entry = Arc::new(DatasetEntry {
            id: id.clone(),
            generation,
            name: spec.name,
            visual: spec.visual,
            shard_count: bounds.len(),
            placement_fp: placement_fingerprint(&placement),
            placement,
            shard_of: spec.shard_of,
            trendline_count,
            point_count,
            engine,
            snapshot: Some(SnapshotShards {
                snapshot,
                bounds,
                generation,
                builtins: spec.builtins,
                resident: Arc::clone(&self.resident),
            }),
        });
        self.publish(id, entry)
    }

    /// Resolves a registration's `shard_endpoints` request into an
    /// explicit per-shard replica-list map (registry and wire paths flow
    /// through identical validation).
    fn resolve_endpoints(
        &self,
        spec: &DatasetSpec,
    ) -> Result<Option<Vec<Option<Vec<String>>>>, ServerError> {
        let endpoints: Option<Vec<Option<Vec<String>>>> = match &spec.shard_endpoints {
            None => None,
            Some(ShardEndpoints::Explicit(eps)) => Some(eps.clone()),
            Some(ShardEndpoints::FromRegistry) => {
                let id = spec
                    .id
                    .as_deref()
                    .filter(|id| !id.is_empty())
                    .ok_or_else(|| {
                        ServerError::bad_request(
                            "`shard_endpoints: \"registry\"` needs an explicit \
                             dataset id — heartbeats are keyed by it",
                        )
                    })?;
                let resolved = self
                    .registry
                    .resolve(id)
                    .map_err(ServerError::bad_request)?;
                Some(resolved.into_iter().map(Some).collect())
            }
        };
        if let Some(eps) = &endpoints {
            for (i, replicas) in eps.iter().enumerate() {
                let Some(replicas) = replicas else { continue };
                if replicas.is_empty() || replicas.iter().any(String::is_empty) {
                    return Err(ServerError::bad_request(format!(
                        "shard {i}: a remote replica list must name at least \
                         one non-empty endpoint (use null for a local shard)"
                    )));
                }
                let mut seen = replicas.clone();
                seen.sort_unstable();
                seen.dedup();
                if seen.len() != replicas.len() {
                    return Err(ServerError::bad_request(format!(
                        "shard {i}: duplicate replica endpoint — each replica \
                         must be a distinct shard server"
                    )));
                }
            }
        }
        Ok(endpoints)
    }

    /// Resolves the requested shard count: an explicit placement pins it
    /// (every entry of the map addresses one shard), else the spec /
    /// catalog default. Also refuses a `shards` that disagrees with an
    /// explicit placement length or a `shard_of` total — both silent
    /// wrong-partition-bounds hazards.
    fn resolve_shard_request(
        &self,
        spec: &DatasetSpec,
        endpoints: Option<&[Option<Vec<String>>]>,
    ) -> Result<usize, ServerError> {
        let shards = match (endpoints, spec.shards) {
            (Some(eps), Some(n)) if eps.len() != n => {
                return Err(ServerError::bad_request(format!(
                    "`shards` ({n}) disagrees with the {} entries of \
                     `shard_endpoints`; drop one or make them match",
                    eps.len()
                )))
            }
            (Some(eps), _) => eps.len(),
            (None, _) => self.resolve_shards(spec.shards),
        };
        if let (Some((_, total)), Some(n)) = (spec.shard_of, spec.shards) {
            if n != total {
                return Err(ServerError::bad_request(format!(
                    "`shards` ({n}) disagrees with the shard_of total ({total}); \
                     drop one or make them match"
                )));
            }
        }
        Ok(shards)
    }

    /// Resolves the partition map against the *effective* shard count.
    fn resolve_placement(
        endpoints: Option<&[Option<Vec<String>>]>,
        shard_of: bool,
        effective: usize,
    ) -> Result<Vec<ShardPlacement>, ServerError> {
        match endpoints {
            Some(eps) => {
                if shard_of {
                    return Err(ServerError::bad_request(
                        "`shard_of` and `shard_endpoints` are mutually exclusive: \
                         a shard server owns its partition locally",
                    ));
                }
                if effective != eps.len() {
                    return Err(ServerError::bad_request(format!(
                        "placement names {} shards but the collection only \
                         partitions into {effective} (one trendline per shard minimum)",
                        eps.len()
                    )));
                }
                Ok(eps
                    .iter()
                    .map(|ep| match ep {
                        Some(replicas) => ShardPlacement::Remote(replicas.clone()),
                        None => ShardPlacement::Local,
                    })
                    .collect())
            }
            None => Ok(vec![ShardPlacement::Local; effective]),
        }
    }

    /// Publishes an entry under `id`, purging any replaced snapshot
    /// registration's resident shards (its generation can never be
    /// served again).
    fn publish(
        &self,
        id: String,
        entry: Arc<DatasetEntry>,
    ) -> Result<Arc<DatasetEntry>, ServerError> {
        let replaced = self
            .inner
            .write()
            .expect("catalog lock")
            .insert(id, Arc::clone(&entry));
        if let Some(old) = replaced {
            if let Some(snap) = &old.snapshot {
                self.resident.purge_generation(snap.generation);
            }
        }
        Ok(entry)
    }

    /// Fetches a dataset by id.
    pub fn get(&self, id: &str) -> Option<Arc<DatasetEntry>> {
        self.inner.read().expect("catalog lock").get(id).cloned()
    }

    /// All datasets, sorted by id for deterministic listings.
    pub fn list(&self) -> Vec<Arc<DatasetEntry>> {
        let mut entries: Vec<_> = self
            .inner
            .read()
            .expect("catalog lock")
            .values()
            .cloned()
            .collect();
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        entries
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.inner.read().expect("catalog lock").len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
product,week,sales
widget,1,10
widget,2,20
widget,3,15
widget,4,5
gadget,1,5
gadget,2,4
gadget,3,8
gadget,4,12
";

    fn spec(id: Option<&str>) -> DatasetSpec {
        DatasetSpec {
            id: id.map(str::to_owned),
            name: "sales".into(),
            source: DataSource::InlineCsv(CSV.into()),
            visual: VisualSpec::new("product", "week", "sales"),
            builtins: true,
            shards: None,
            shard_endpoints: None,
            shard_of: None,
        }
    }

    #[test]
    fn register_extracts_eagerly_and_lists() {
        let catalog = Catalog::new();
        let entry = catalog.register(spec(Some("sales"))).unwrap();
        assert_eq!(entry.trendline_count, 2);
        assert_eq!(entry.point_count, 8);
        assert_eq!(catalog.list().len(), 1);
        assert!(catalog.get("sales").is_some());
        assert!(catalog.get("nope").is_none());
    }

    #[test]
    fn ids_autogenerate_and_increment() {
        let catalog = Catalog::new();
        let a = catalog.register(spec(None)).unwrap();
        let b = catalog.register(spec(None)).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn registered_engine_is_queryable_through_arc() {
        let catalog = Catalog::new();
        let entry = catalog.register(spec(Some("s"))).unwrap();
        let q = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let results = entry.engine.top_k(&q, 1).unwrap();
        assert_eq!(results[0].key, "widget");
    }

    #[test]
    fn bad_source_is_an_error() {
        let catalog = Catalog::new();
        let mut s = spec(None);
        s.source = DataSource::Path("/nonexistent/file.csv".into());
        assert!(catalog.register(s).is_err());
        let mut s = spec(None);
        s.visual = VisualSpec::new("no_such_col", "week", "sales");
        assert!(catalog.register(s).is_err());
    }

    #[test]
    fn engine_is_send_sync_shared() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<DatasetEntry>>();
        assert_send_sync::<Catalog>();
    }

    #[test]
    fn shard_count_resolves_request_default_and_cap() {
        // Explicit request is capped by the collection size (2 here).
        let catalog = Catalog::new();
        let mut s = spec(Some("pinned"));
        s.shards = Some(8);
        let entry = catalog.register(s).unwrap();
        assert_eq!(entry.shard_count, 2);
        assert_eq!(entry.engine.shard_count(), 2);

        // Catalog default applies when the spec doesn't pin one.
        let catalog = Catalog::with_default_shards(2);
        let entry = catalog.register(spec(Some("defaulted"))).unwrap();
        assert_eq!(entry.shard_count, 2);

        // Shard count 1 is a single plain engine.
        let mut s = spec(Some("single"));
        s.shards = Some(1);
        let entry = catalog.register(s).unwrap();
        assert_eq!(entry.shard_count, 1);
    }

    #[test]
    fn placement_defaults_local_and_fingerprints_endpoints() {
        let catalog = Catalog::new();
        let mut s = spec(Some("local"));
        s.shards = Some(2);
        let local = catalog.register(s).unwrap();
        assert_eq!(local.placement, vec![ShardPlacement::Local; 2]);
        assert_eq!(local.placement_fp, "local;local");
        assert!(!local.has_remote_shards());

        // A mixed placement pins the shard count and names its remotes;
        // a singleton replica list fingerprints as the bare endpoint
        // (byte-compatible with pre-replication cache keys).
        let mut s = spec(Some("mixed"));
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![
            Some(vec!["127.0.0.1:9001".into()]),
            None,
        ]));
        let mixed = catalog.register(s).unwrap();
        assert_eq!(mixed.shard_count, 2);
        assert_eq!(mixed.placement_fp, "127.0.0.1:9001;local");
        assert!(mixed.has_remote_shards());

        // Re-pointing the remote changes the fingerprint (the cache-key
        // ingredient) even at the same shard count.
        let mut s = spec(Some("mixed"));
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![
            Some(vec!["127.0.0.1:9002".into()]),
            None,
        ]));
        let repointed = catalog.register(s).unwrap();
        assert_ne!(repointed.placement_fp, mixed.placement_fp);

        // Adding a replica is a placement change too: the two-replica
        // list joins with `|` inside the shard's token.
        let mut s = spec(Some("mixed"));
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![
            Some(vec!["127.0.0.1:9002".into(), "127.0.0.1:9003".into()]),
            None,
        ]));
        let replicated = catalog.register(s).unwrap();
        assert_eq!(
            replicated.placement_fp,
            "127.0.0.1:9002|127.0.0.1:9003;local"
        );
        assert_ne!(replicated.placement_fp, repointed.placement_fp);
    }

    #[test]
    fn remote_shard_payloads_are_evicted_from_the_router() {
        let catalog = Catalog::new();
        let mut s = spec(Some("m"));
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![
            Some(vec!["10.0.0.1:7878".into()]),
            None,
        ]));
        let entry = catalog.register(s).unwrap();
        // Listings still describe the full collection…
        assert_eq!(entry.trendline_count, 2);
        assert_eq!(entry.point_count, 8);
        assert_eq!(entry.shard_count, 2);
        // …but the remotely-placed shard holds no data in this process
        // (its shard server owns the identical partition), while the
        // local shard keeps its payload and global base.
        assert!(entry.engine.shards()[0].trendlines().is_empty());
        assert_eq!(entry.engine.shards()[0].base_index(), 0);
        assert_eq!(entry.engine.shards()[1].trendlines().len(), 1);
        assert_eq!(entry.engine.shards()[1].base_index(), 1);
    }

    #[test]
    fn placement_mismatches_are_rejected() {
        let catalog = Catalog::new();
        // `shards` disagreeing with the placement length.
        let mut s = spec(None);
        s.shards = Some(3);
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![None, None]));
        assert!(catalog.register(s).is_err());
        // More endpoints than trendlines: the cap would drop a remote.
        let mut s = spec(None);
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![
            Some(vec!["a:1".into()]),
            Some(vec!["b:2".into()]),
            None,
        ]));
        assert!(catalog.register(s).is_err());
        // An empty replica list is neither local nor reachable.
        let mut s = spec(None);
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![Some(vec![]), None]));
        assert!(catalog.register(s).is_err());
        // Duplicate replicas within one shard's list.
        let mut s = spec(None);
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![
            Some(vec!["a:1".into(), "a:1".into()]),
            None,
        ]));
        assert!(catalog.register(s).is_err());
        // shard_of + endpoints is contradictory.
        let mut s = spec(None);
        s.shard_of = Some((0, 2));
        s.shard_endpoints = Some(ShardEndpoints::Explicit(vec![None, None]));
        assert!(catalog.register(s).is_err());
        // shard_of index out of range.
        let mut s = spec(None);
        s.shard_of = Some((2, 2));
        assert!(catalog.register(s).is_err());
        // shard_of with a disagreeing `shards` total.
        let mut s = spec(None);
        s.shard_of = Some((0, 4));
        s.shards = Some(2);
        assert!(catalog.register(s).is_err());
        // …but an agreeing one is fine.
        let mut s = spec(None);
        s.shard_of = Some((0, 2));
        s.shards = Some(2);
        assert!(catalog.register(s).is_ok());
    }

    #[test]
    fn shard_of_entry_owns_one_partition_with_global_indices() {
        let catalog = Catalog::new();
        let full = catalog.register(spec(Some("full"))).unwrap();
        let mut s = spec(Some("part1"));
        s.shard_of = Some((1, 2));
        let part = catalog.register(s).unwrap();
        assert_eq!(part.shard_count, 1);
        assert_eq!(part.shard_of, Some((1, 2)));
        assert!(part.trendline_count < full.trendline_count);
        // The partition's results carry collection-global viz_indexes.
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let results = part.engine.top_k(&q, 4).unwrap();
        assert!(results
            .iter()
            .all(|r| r.viz_index >= full.trendline_count - part.trendline_count));
    }

    #[test]
    fn sharded_entry_answers_like_single_shard() {
        let catalog = Catalog::new();
        let mut one = spec(Some("one"));
        one.shards = Some(1);
        let mut two = spec(Some("two"));
        two.shards = Some(2);
        let one = catalog.register(one).unwrap();
        let two = catalog.register(two).unwrap();
        let q = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        assert_eq!(
            one.engine.top_k(&q, 2).unwrap(),
            two.engine.top_k(&q, 2).unwrap()
        );
    }

    #[test]
    fn registry_heartbeats_resolve_into_a_deterministic_placement() {
        let registry = Registry::default();
        // Announcement order must not matter: replicas come back sorted.
        registry.heartbeat("sales", 1, 2, "10.0.0.2:7001").unwrap();
        registry.heartbeat("sales", 0, 2, "10.0.0.1:7002").unwrap();
        registry.heartbeat("sales", 0, 2, "10.0.0.1:7001").unwrap();
        registry.heartbeat("other", 0, 1, "10.0.0.9:7999").unwrap();
        let placement = registry.resolve("sales").unwrap();
        assert_eq!(
            placement,
            vec![
                vec!["10.0.0.1:7001".to_owned(), "10.0.0.1:7002".to_owned()],
                vec!["10.0.0.2:7001".to_owned()],
            ]
        );
        // A re-announcement refreshes rather than duplicates.
        registry.heartbeat("sales", 0, 2, "10.0.0.1:7001").unwrap();
        assert_eq!(registry.resolve("sales").unwrap(), placement);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.len(), 4);
        assert!(snapshot.iter().all(|e| e.fresh));
    }

    #[test]
    fn registry_rejects_malformed_and_incomplete_topologies() {
        let registry = Registry::default();
        assert!(registry.heartbeat("", 0, 1, "a:1").is_err());
        assert!(registry.heartbeat("d", 0, 0, "a:1").is_err());
        assert!(registry.heartbeat("d", 2, 2, "a:1").is_err());
        assert!(registry.heartbeat("d", 0, 1, "").is_err());

        // Nothing announced at all.
        let err = registry.resolve("sales").unwrap_err();
        assert!(err.contains("no fresh heartbeat"), "{err}");

        // A hole in the partition coverage is named precisely.
        registry.heartbeat("sales", 0, 3, "a:1").unwrap();
        registry.heartbeat("sales", 2, 3, "c:1").unwrap();
        let err = registry.resolve("sales").unwrap_err();
        assert!(err.contains("partition 1/3"), "{err}");

        // Disagreeing totals are a topology bug, not a coin flip.
        registry.heartbeat("sales", 1, 3, "b:1").unwrap();
        registry.heartbeat("sales", 0, 2, "z:1").unwrap();
        let err = registry.resolve("sales").unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn registration_can_resolve_its_placement_from_the_registry() {
        let catalog = Catalog::new();
        catalog
            .registry()
            .heartbeat("sales", 0, 2, "10.0.0.1:7001")
            .unwrap();
        catalog
            .registry()
            .heartbeat("sales", 1, 2, "10.0.0.2:7001")
            .unwrap();
        catalog
            .registry()
            .heartbeat("sales", 1, 2, "10.0.0.2:7002")
            .unwrap();

        let mut s = spec(Some("sales"));
        s.shard_endpoints = Some(ShardEndpoints::FromRegistry);
        let entry = catalog.register(s).unwrap();
        assert_eq!(entry.shard_count, 2);
        assert_eq!(
            entry.placement_fp,
            "10.0.0.1:7001;10.0.0.2:7001|10.0.0.2:7002"
        );

        // Registry placement without an id has no heartbeat key.
        let mut s = spec(None);
        s.shard_endpoints = Some(ShardEndpoints::FromRegistry);
        let err = catalog.register(s).unwrap_err();
        assert!(err.message.contains("dataset id"), "{}", err.message);
    }
}
