//! Observability: lock-cheap latency histograms, per-request traces, and
//! Prometheus text exposition.
//!
//! Everything here is std-only and built for the request hot path:
//!
//! * [`Histogram`] — fixed log₂-scale buckets over atomic counters; a
//!   `record` is two relaxed `fetch_add`s, no locks, no allocation. The
//!   same registry feeds both `GET /metrics` (cumulative
//!   `_bucket{le=…}` series) and the healthz totals, so the two always
//!   reconcile.
//! * [`Stage`] — the span/metric taxonomy of the request pipeline: one
//!   label per stage a query's time can go to, from parse to serialize,
//!   including the engine stages reported through
//!   [`shapesearch_core::StageObserver`].
//! * [`Metrics`] — the process-wide registry: request/shard-request
//!   histograms, one histogram per stage, and one per remote shard
//!   endpoint.
//! * [`Span`] / [`new_trace_id`] — the per-request trace: a tree of
//!   named, timed spans. Trace IDs ride the `/shard/query` wire so a
//!   router stitches each remote server's own span tree under its RPC
//!   span (`"explain": true` on `POST /query` returns the whole tree).
//! * [`Exposition`] — a tiny Prometheus text-format (`0.0.4`) writer.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Number of histogram buckets: upper bounds `2^0 ‥ 2^24` microseconds
/// (1 µs to ≈16.8 s) plus a `+Inf` overflow bucket.
pub const BUCKETS: usize = 26;

/// Index of the `+Inf` bucket.
const INF: usize = BUCKETS - 1;

/// The bucket a `micros` sample lands in: bucket `i` holds samples
/// `≤ 2^i` µs (cumulative semantics are applied at exposition time);
/// anything above `2^24` µs saturates into the `+Inf` bucket.
pub fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    // ceil(log2(micros)) without floats: position of the highest set bit
    // of `micros - 1`, plus one.
    let ceil_log2 = 64 - (micros - 1).leading_zeros() as usize;
    ceil_log2.min(INF)
}

/// The inclusive upper bound of bucket `i` in microseconds, or `None`
/// for the `+Inf` bucket.
pub fn bucket_bound(i: usize) -> Option<u64> {
    (i < INF).then(|| 1u64 << i)
}

/// A fixed-bucket log₂-scale latency histogram over atomic counters.
///
/// Recording is lock-free (two relaxed `fetch_add`s); reading takes a
/// point-in-time [`HistogramSnapshot`]. Buckets store per-bucket counts
/// internally; the cumulative `le` form Prometheus wants is derived at
/// exposition time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples in microseconds.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise accumulation — merging two registries' snapshots
    /// (e.g. aggregating per-endpoint series into a fleet total) is
    /// exact because buckets are identical by construction.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }
}

/// The server-level stage taxonomy: every place a request's time can go.
///
/// The first block is router work around the engine; the last three are
/// the engine's own stages, forwarded from
/// [`shapesearch_core::EngineStage`] via the observer seam. Stage names
/// are the `stage` label values of
/// `shapesearch_stage_duration_micros` and the span names of `explain`
/// traces — one vocabulary across both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Request body parse + query normalization + cache-key planning.
    ParsePlan,
    /// Singleflight cache lookup (hits, misses, and coalesced waits all
    /// record here — the outcome is on the trace span's detail).
    CacheLookup,
    /// One local shard's compute-pool task end to end.
    ShardCompute,
    /// One remote shard RPC end to end (also recorded per endpoint).
    RemoteRpc,
    /// Deterministic merge of per-shard top-k partials.
    Merge,
    /// Response envelope assembly.
    Serialize,
    /// Engine: shared GROUP over the trendline collection.
    Group,
    /// Engine: one query's SEGMENT + SCORE pass.
    SegmentScore,
    /// Engine: §6.3 bound computations inside the pruning driver.
    PruneBound,
}

impl Stage {
    /// Every stage, in exposition order.
    pub const ALL: [Stage; 9] = [
        Stage::ParsePlan,
        Stage::CacheLookup,
        Stage::ShardCompute,
        Stage::RemoteRpc,
        Stage::Merge,
        Stage::Serialize,
        Stage::Group,
        Stage::SegmentScore,
        Stage::PruneBound,
    ];

    /// Stable lowercase identifier (metric label value and span name).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ParsePlan => "parse_plan",
            Stage::CacheLookup => "cache_lookup",
            Stage::ShardCompute => "shard_compute",
            Stage::RemoteRpc => "remote_rpc",
            Stage::Merge => "merge",
            Stage::Serialize => "serialize",
            Stage::Group => "group",
            Stage::SegmentScore => "segment_score",
            Stage::PruneBound => "prune_bound",
        }
    }

    /// The server-level stage an engine-reported stage maps to.
    pub fn from_engine(stage: shapesearch_core::EngineStage) -> Stage {
        match stage {
            shapesearch_core::EngineStage::Group => Stage::Group,
            shapesearch_core::EngineStage::SegmentScore => Stage::SegmentScore,
            shapesearch_core::EngineStage::PruneBound => Stage::PruneBound,
        }
    }

    fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|s| *s == self)
            .expect("Stage::ALL covers every variant")
    }
}

/// The process-wide metrics registry: everything `GET /metrics` exposes
/// that is not already a healthz counter.
#[derive(Debug, Default)]
pub struct Metrics {
    /// End-to-end `POST /query` latency (one sample per request, batch
    /// or single).
    pub requests: Histogram,
    /// End-to-end `POST /shard/query` service latency.
    pub shard_requests: Histogram,
    stages: [Histogram; Stage::ALL.len()],
    remote: Mutex<BTreeMap<String, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `stage` latency sample.
    pub fn stage(&self, stage: Stage, micros: u64) {
        self.stages[stage.index()].record(micros);
    }

    /// Snapshot of one stage's histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }

    /// Records one remote-RPC latency sample against its endpoint (in
    /// addition to the endpoint-agnostic [`Stage::RemoteRpc`] series,
    /// which the caller records separately).
    pub fn record_remote(&self, endpoint: &str, micros: u64) {
        let mut remote = self.remote.lock().expect("remote metrics lock poisoned");
        remote
            .entry(endpoint.to_owned())
            .or_default()
            .record(micros);
    }

    /// Per-endpoint RPC histogram snapshots, endpoint-sorted.
    pub fn remote_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let remote = self.remote.lock().expect("remote metrics lock poisoned");
        remote
            .iter()
            .map(|(endpoint, h)| (endpoint.clone(), h.snapshot()))
            .collect()
    }
}

/// A Prometheus text-format (`text/plain; version=0.0.4`) writer: one
/// `# HELP`/`# TYPE` header per family, then one line per series.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// A single-series counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// A counter family with one series per label value.
    pub fn counter_family(&mut self, name: &str, help: &str, label: &str, series: &[(&str, u64)]) {
        self.header(name, help, "counter");
        for (value, count) in series {
            self.sample(name, &[(label, value)], *count);
        }
    }

    /// A single-series gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A gauge family with one series per label value.
    pub fn gauge_family(&mut self, name: &str, help: &str, label: &str, series: &[(&str, u64)]) {
        self.header(name, help, "gauge");
        for (value, count) in series {
            self.sample(name, &[(label, value)], *count);
        }
    }

    /// A histogram family: one `{le}`-bucketed series per entry (an
    /// entry with no extra label renders unlabeled). Buckets render
    /// cumulatively, ending in `+Inf`, plus `_sum` and `_count`.
    pub fn histogram_family(
        &mut self,
        name: &str,
        help: &str,
        series: &[(Option<(&str, &str)>, HistogramSnapshot)],
    ) {
        self.header(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        let sum = format!("{name}_sum");
        let count = format!("{name}_count");
        for (label, snap) in series {
            let base: Vec<(&str, &str)> = label.iter().map(|&(k, v)| (k, v)).collect();
            let mut cumulative = 0u64;
            for (i, n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                let le = match bucket_bound(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_owned(),
                };
                let mut labels = base.clone();
                labels.push(("le", &le));
                self.sample(&bucket, &labels, cumulative);
            }
            self.sample(&sum, &base, snap.sum);
            self.sample(&count, &base, snap.count());
        }
    }

    /// The assembled document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Monotonic component of trace IDs (uniqueness within the process).
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// splitmix64 finalizer — spreads counter/time/pid bits over the word.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A fresh 16-hex-digit trace ID: unique within a process (atomic
/// counter) and collision-resistant across the topology (mixed with
/// boot time and pid — no RNG dependency).
pub fn new_trace_id() -> String {
    let counter = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let id = mix(nanos ^ mix(counter.wrapping_shl(32) ^ u64::from(std::process::id())));
    format!("{id:016x}")
}

/// One node of a request trace: a named, timed region with child spans.
///
/// Spans cross process boundaries as JSON (the `spans` array of a
/// `/shard/query` reply), so [`Span::from_json`] is the stitching seam:
/// a router parses each remote server's span tree and grafts it under
/// the corresponding RPC span of its own trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name — a [`Stage::name`] or a structural name like
    /// `"request"` / `"shard_fanout"` / `"shard"`.
    pub name: String,
    /// Optional human-oriented qualifier (cache outcome, shard index,
    /// remote endpoint).
    pub detail: Option<String>,
    /// Wall-clock duration of the region in microseconds.
    pub micros: u64,
    /// Sub-regions, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span.
    pub fn new(name: impl Into<String>, micros: u64) -> Self {
        Self {
            name: name.into(),
            detail: None,
            micros,
            children: Vec::new(),
        }
    }

    /// Sets the qualifier, returning `self` for chaining.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Appends a child span.
    pub fn push(&mut self, child: Span) {
        self.children.push(child);
    }

    /// The JSON wire/envelope form: `{"name", ["detail"], "micros",
    /// ["spans"]}` (detail and spans omitted when empty).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("name".to_owned(), Json::Str(self.name.clone()))];
        if let Some(detail) = &self.detail {
            fields.push(("detail".to_owned(), Json::Str(detail.clone())));
        }
        fields.push(("micros".to_owned(), Json::Num(self.micros as f64)));
        if !self.children.is_empty() {
            fields.push((
                "spans".to_owned(),
                Json::Arr(self.children.iter().map(Span::to_json).collect()),
            ));
        }
        Json::Obj(fields)
    }

    /// Parses the [`Self::to_json`] form (used to stitch a remote shard
    /// server's spans into the router's trace). `None` when the value
    /// is not a well-formed span tree.
    pub fn from_json(value: &Json) -> Option<Span> {
        let name = value.get("name")?.as_str()?.to_owned();
        let detail = match value.get("detail") {
            Some(d) => Some(d.as_str()?.to_owned()),
            None => None,
        };
        let micros = value.get("micros")?.as_f64()? as u64;
        let children = match value.get("spans") {
            Some(spans) => spans
                .as_array()?
                .iter()
                .map(Span::from_json)
                .collect::<Option<Vec<_>>>()?,
            None => Vec::new(),
        };
        Some(Span {
            name,
            detail,
            micros,
            children,
        })
    }
}

/// Parses a JSON array of spans (a shard reply's `spans` field).
pub fn spans_from_json(value: &Json) -> Option<Vec<Span>> {
    value.as_array()?.iter().map(Span::from_json).collect()
}

/// Renders spans as a JSON array.
pub fn spans_to_json(spans: &[Span]) -> Json {
    Json::Arr(spans.iter().map(Span::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // 0 and 1 µs share the first bucket (le 1).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Exact powers land in their own bucket (bounds are inclusive);
        // one past rolls over to the next.
        for i in 1..=24u32 {
            let bound = 1u64 << i;
            assert_eq!(bucket_index(bound), i as usize, "bound {bound}");
            assert_eq!(bucket_index(bound / 2), i as usize - 1, "half of {bound}");
            if i < 24 {
                assert_eq!(bucket_index(bound + 1), i as usize + 1, "above {bound}");
            }
        }
        assert_eq!(bucket_bound(0), Some(1));
        assert_eq!(bucket_bound(24), Some(1 << 24));
        assert_eq!(bucket_bound(INF), None);
    }

    #[test]
    fn bucket_saturation_goes_to_inf() {
        assert_eq!(bucket_index((1 << 24) + 1), INF);
        assert_eq!(bucket_index(u64::MAX), INF);
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[INF], 1);
        assert_eq!(snap.count(), 1);
    }

    #[test]
    fn histogram_records_and_sums() {
        let h = Histogram::new();
        for micros in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(micros);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum, 1_001_006);
        assert_eq!(snap.buckets[0], 2); // 0 and 1
        assert_eq!(snap.buckets[1], 1); // 2
        assert_eq!(snap.buckets[2], 1); // 3
        assert_eq!(snap.buckets[10], 1); // 1000 ≤ 1024
        assert_eq!(snap.buckets[20], 1); // 1_000_000 ≤ 2^20
    }

    #[test]
    fn snapshot_merge_is_elementwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1);
        a.record(100);
        b.record(100);
        b.record(u64::MAX);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.buckets[bucket_index(100)], 2);
        assert_eq!(merged.buckets[INF], 1);
        // The atomic sum wraps on overflow (fetch_add semantics).
        assert_eq!(merged.sum, 201u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn stage_indexing_is_total_and_engine_stages_map() {
        for stage in Stage::ALL {
            assert_eq!(Stage::ALL[stage.index()], stage);
            assert!(!stage.name().is_empty());
        }
        assert_eq!(
            Stage::from_engine(shapesearch_core::EngineStage::Group),
            Stage::Group
        );
        assert_eq!(
            Stage::from_engine(shapesearch_core::EngineStage::SegmentScore),
            Stage::SegmentScore
        );
        assert_eq!(
            Stage::from_engine(shapesearch_core::EngineStage::PruneBound),
            Stage::PruneBound
        );
    }

    #[test]
    fn metrics_registry_tracks_stages_and_endpoints() {
        let m = Metrics::new();
        m.stage(Stage::Group, 5);
        m.stage(Stage::Group, 7);
        m.record_remote("127.0.0.1:7001", 40);
        assert_eq!(m.stage_snapshot(Stage::Group).count(), 2);
        assert_eq!(m.stage_snapshot(Stage::Group).sum, 12);
        assert_eq!(m.stage_snapshot(Stage::Merge).count(), 0);
        let remote = m.remote_snapshots();
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].0, "127.0.0.1:7001");
        assert_eq!(remote[0].1.count(), 1);
    }

    #[test]
    fn exposition_renders_cumulative_buckets() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record((1 << 24) + 1);
        let mut expo = Exposition::new();
        expo.counter("x_total", "an x.", 3);
        expo.gauge("g", "a g.", 7);
        expo.counter_family("y_total", "a y.", "kind", &[("a", 1), ("b", 2)]);
        expo.histogram_family(
            "lat_micros",
            "latency.",
            &[(Some(("stage", "group")), h.snapshot())],
        );
        let text = expo.finish();
        assert!(text.contains("# HELP x_total an x.\n# TYPE x_total counter\nx_total 3\n"));
        assert!(text.contains("g 7\n"));
        assert!(text.contains("y_total{kind=\"a\"} 1\n"));
        assert!(text.contains("y_total{kind=\"b\"} 2\n"));
        // Cumulative: le="1" sees one sample, le="4" sees two, +Inf all.
        assert!(text.contains("lat_micros_bucket{stage=\"group\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_micros_bucket{stage=\"group\",le=\"4\"} 2\n"));
        assert!(text.contains("lat_micros_bucket{stage=\"group\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_micros_count{stage=\"group\"} 3\n"));
        let sum = 1 + 3 + ((1 << 24) + 1);
        assert!(text.contains(&format!("lat_micros_sum{{stage=\"group\"}} {sum}\n")));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut expo = Exposition::new();
        expo.counter_family("e_total", "an e.", "endpoint", &[("a\"b\\c\nd", 1)]);
        assert!(expo
            .finish()
            .contains("e_total{endpoint=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn span_json_round_trips() {
        let mut root = Span::new("request", 120).with_detail("trace");
        let mut exec = Span::new("shard_fanout", 90);
        exec.push(Span::new("shard_compute", 80).with_detail("shard 0"));
        exec.push(Span::new("merge", 3));
        root.push(exec);
        let json = root.to_json();
        assert_eq!(Span::from_json(&json), Some(root.clone()));
        // And through actual serialization.
        let reparsed = json::parse(&json.to_text()).unwrap();
        assert_eq!(Span::from_json(&reparsed), Some(root));
        // Malformed trees are rejected, not mangled.
        assert_eq!(
            Span::from_json(&json::parse("{\"micros\":1}").unwrap()),
            None
        );
        assert_eq!(
            Span::from_json(&json::parse("{\"name\":\"x\",\"micros\":1,\"spans\":[{}]}").unwrap()),
            None
        );
    }
}
