//! The query-result cache: a hand-rolled O(1) LRU over a slab-backed
//! intrusive list, plus the server-facing [`QueryCache`] wrapper keyed on
//! `(dataset id, registration generation, shard count, normalized query
//! AST, k, engine-option fingerprint)` with hit/miss/coalesced counters
//! that live under the cache's own lock, so [`QueryCache::stats`] is a
//! consistent snapshot (`hits + misses + coalesced == lookups`, always).
//!
//! Repeated exploratory queries — the dominant pattern in shape-based
//! exploration, where a user reissues near-identical ShapeQueries while
//! tweaking k or switching datasets — skip segmentation entirely on a hit.
//!
//! Concurrent *identical* misses are collapsed by a per-key singleflight
//! latch ([`QueryCache::lookup`]): the first caller becomes the **leader**
//! and computes; every racer gets a [`FlightWaiter`] that blocks until the
//! leader publishes, so a stampede of N identical cold queries does the
//! engine work exactly once and performs N−1 *coalesced* waits instead of
//! N−1 redundant computations.

use shapesearch_core::{EngineOptions, TopKResult};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map. `get` refreshes recency;
/// `insert` evicts the coldest entry once `capacity` is exceeded. All
/// operations are O(1) expected time. Evicted and retained-away values
/// are dropped immediately (slots hold `Option` so a freed slot never
/// pins its old value until reuse).
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries before eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot(&self, i: usize) -> &Slot<K, V> {
        self.slots[i].as_ref().expect("occupied slot")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot<K, V> {
        self.slots[i].as_mut().expect("occupied slot")
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        let head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = head;
        }
        if head != NIL {
            self.slot_mut(head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Releases slot `i`: unlinks it, drops its contents, recycles the
    /// index, and returns the key.
    fn release(&mut self, i: usize) -> K {
        self.unlink(i);
        let slot = self.slots[i].take().expect("occupied slot");
        self.map.remove(&slot.key);
        self.free.push(i);
        slot.key
    }

    /// Fetches a value, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slot(i).value)
    }

    /// Inserts (or replaces) a value, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if let Some(&i) = self.map.get(&key) {
            self.slot_mut(i).value = value;
            if i != self.head {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            evicted = Some(self.release(lru));
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        evicted
    }

    /// Drops every entry whose key fails the predicate (used when a
    /// dataset is replaced and its cached results must go).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        for i in doomed {
            self.release(i);
        }
    }

    /// Keys from most to least recently used (test/debug helper).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            let s = self.slot(i);
            out.push(s.key.clone());
            i = s.next;
        }
        out
    }
}

/// The cache key. The query component is the *canonical* rendering of the
/// parsed AST (`ShapeQuery`'s `Display`), so textual variants of the same
/// query — extra whitespace, NL phrasings that translate to the same AST,
/// sugared regex forms — all hit the same entry. `generation` is the
/// dataset's registration counter: re-registering an id bumps it, so a
/// slow in-flight query against the replaced engine can never poison the
/// new dataset's keyspace with stale results. The options component
/// fingerprints every engine knob that can change results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset id the query ran against.
    pub dataset: String,
    /// The dataset's registration generation at planning time.
    pub generation: u64,
    /// The registration's shard count. Sharded execution is
    /// result-identical for every shard count, and a re-registration
    /// already bumps `generation` — carrying the shard count anyway makes
    /// "a new shard count can never serve another layout's cached bytes"
    /// structural rather than an indirect consequence.
    pub shards: usize,
    /// The registration's placement fingerprint (one `local`-or-endpoint
    /// token per shard; [`crate::catalog::DatasetEntry::placement_fp`]).
    /// Like `shards`, the generation bump already isolates
    /// re-registrations — carrying the placement makes "re-pointing a
    /// shard at a different endpoint can never serve bytes computed
    /// under the old placement" structural.
    pub placement: String,
    /// Canonical rendering of the parsed query AST.
    pub query_canon: String,
    /// Requested result count.
    pub k: usize,
    /// Fingerprint of every result-affecting engine option.
    pub options_fp: String,
}

impl CacheKey {
    /// Assembles the key for one planned query.
    pub fn new(
        dataset: &str,
        generation: u64,
        shards: usize,
        placement: &str,
        query: &shapesearch_core::ShapeQuery,
        k: usize,
        options: &EngineOptions,
    ) -> Self {
        Self {
            dataset: dataset.to_owned(),
            generation,
            shards,
            placement: placement.to_owned(),
            query_canon: query.to_string(),
            k,
            options_fp: options_fingerprint(options),
        }
    }
}

/// A deterministic fingerprint of every result-affecting engine option.
/// `parallel` is deliberately excluded: it changes scheduling, not
/// results (`parallel_matches_sequential` in the engine tests).
pub fn options_fingerprint(o: &EngineOptions) -> String {
    format!(
        "seg={:?};bin={};push={};params={:?};prune={:?}",
        o.segmenter, o.bin_width, o.pushdown, o.params, o.pruning
    )
}

/// Cache statistics surfaced through `GET /healthz`.
///
/// Snapshots are **consistent**: all counters live under the cache's one
/// internal lock and every counted operation updates them inside its
/// critical section, so `hits + misses + coalesced == lookups` holds in
/// every snapshot — never only between updates, as it would with
/// independently loaded atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Counted lookups (always exactly `hits + misses + coalesced`).
    pub lookups: u64,
    /// Lookups answered straight from the LRU.
    pub hits: u64,
    /// Lookups that found nothing and elected a singleflight leader.
    pub misses: u64,
    /// Lookups that joined another request's in-flight computation
    /// instead of recomputing (the stampede that used to be N misses is
    /// now 1 miss + N−1 coalesced).
    pub coalesced: u64,
    /// Live entries in the LRU.
    pub entries: usize,
    /// LRU capacity in entries.
    pub capacity: usize,
}

/// What a singleflight leader eventually publishes: the shared results, or
/// `None` when the leader's computation failed (waiters then recompute on
/// their own — engine errors are deterministic, so they will see the same
/// error the leader did).
type FlightResult = Option<Arc<Vec<TopKResult>>>;

enum FlightState {
    Pending,
    Done(FlightResult),
}

/// The per-key latch one leader and any number of waiters rendezvous on.
struct FlightSlot {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl FlightSlot {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, value: FlightResult) {
        *self.state.lock().expect("flight lock") = FlightState::Done(value);
        self.cv.notify_all();
    }
}

/// The waiter side of a coalesced lookup: blocks until the leader for the
/// same key publishes its outcome.
pub struct FlightWaiter {
    slot: Arc<FlightSlot>,
}

impl FlightWaiter {
    /// Blocks until the leader publishes. Returns the shared results, or
    /// `None` when the leader failed (or panicked) — the caller should
    /// then compute for itself.
    pub fn wait(self) -> FlightResult {
        let mut state = self.slot.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Done(value) => return value.clone(),
                FlightState::Pending => {
                    state = self.slot.cv.wait(state).expect("flight lock");
                }
            }
        }
    }
}

/// The leader side of a singleflight: the holder is the one caller that
/// must compute the value, then hand it over with [`FlightGuard::complete`]
/// (which inserts into the LRU and wakes every waiter). Dropping the guard
/// without completing — an error path or a panic unwinding through the
/// handler — publishes a failure so waiters never deadlock.
pub struct FlightGuard<'a> {
    cache: &'a QueryCache,
    key: CacheKey,
    slot: Arc<FlightSlot>,
    done: bool,
}

impl FlightGuard<'_> {
    /// Publishes the computed results: inserts them into the LRU under the
    /// flight's key and wakes all coalesced waiters with the shared `Arc`.
    pub fn complete(mut self, value: Arc<Vec<TopKResult>>) {
        self.cache.insert(self.key.clone(), Arc::clone(&value));
        self.finish(Some(value));
    }

    fn finish(&mut self, value: FlightResult) {
        self.done = true;
        self.cache
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&self.key);
        self.slot.publish(value);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.finish(None);
        }
    }
}

/// Outcome of a [`QueryCache::lookup`].
pub enum Lookup<'a> {
    /// The LRU had it.
    Hit(Arc<Vec<TopKResult>>),
    /// Another request is computing this exact key right now; call
    /// [`FlightWaiter::wait`] to share its result.
    Pending(FlightWaiter),
    /// Nobody has it and nobody is computing it: the caller is elected
    /// leader and must compute, then [`FlightGuard::complete`].
    Lead(FlightGuard<'a>),
}

/// Which counter a counted cache operation lands in.
#[derive(Clone, Copy)]
enum Counted {
    Hit,
    Miss,
    Coalesced,
}

/// The hit/miss/coalesced tallies. They live *inside* the cache's inner
/// mutex and are only ever bumped within a counted operation's critical
/// section, so a [`QueryCache::stats`] snapshot can never catch them
/// mid-update (the satisfied invariant: `hits + misses + coalesced ==
/// lookups`, in every snapshot).
#[derive(Default)]
struct Counters {
    lookups: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
}

impl Counters {
    fn count(&mut self, outcome: Counted) {
        self.lookups += 1;
        match outcome {
            Counted::Hit => self.hits += 1,
            Counted::Miss => self.misses += 1,
            Counted::Coalesced => self.coalesced += 1,
        }
    }
}

/// The LRU plus the per-dataset generation floors and the counters,
/// guarded by one mutex so a floor bump and the purge it implies are
/// atomic with respect to concurrent inserts, and counter reads are
/// consistent snapshots.
struct CacheMap {
    lru: LruCache<CacheKey, Arc<Vec<TopKResult>>>,
    /// Per dataset id: the lowest registration generation still allowed
    /// to insert. Raised by [`QueryCache::invalidate_dataset`]; inserts
    /// below the floor are stale re-registration leftovers and are
    /// dropped instead of occupying (unreachable) LRU slots.
    floors: HashMap<String, u64>,
    counters: Counters,
}

impl CacheMap {
    fn admits(&self, key: &CacheKey) -> bool {
        self.floors
            .get(&key.dataset)
            .is_none_or(|&floor| key.generation >= floor)
    }
}

/// The shared, thread-safe query-result cache with per-key singleflight
/// request coalescing.
pub struct QueryCache {
    inner: Mutex<CacheMap>,
    inflight: Mutex<HashMap<CacheKey, Arc<FlightSlot>>>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` result sets.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheMap {
                lru: LruCache::new(capacity),
                floors: HashMap::new(),
                counters: Counters::default(),
            }),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Bumps one counter inside its own inner critical section (for the
    /// lookup outcomes decided under the *inflight* lock, where the LRU
    /// itself is not touched).
    fn count(&self, outcome: Counted) {
        self.inner
            .lock()
            .expect("cache lock")
            .counters
            .count(outcome);
    }

    /// Looks up a result, counting the hit or miss. Bypasses the
    /// singleflight machinery — racing callers may all miss; prefer
    /// [`Self::lookup`] on the query path.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<TopKResult>>> {
        let mut cache = self.inner.lock().expect("cache lock");
        match cache.lru.get(key) {
            Some(v) => {
                let v = Arc::clone(v);
                cache.counters.count(Counted::Hit);
                Some(v)
            }
            None => {
                cache.counters.count(Counted::Miss);
                None
            }
        }
    }

    /// The coalescing lookup: a hit returns immediately; a miss either
    /// elects this caller singleflight leader ([`Lookup::Lead`] — compute,
    /// then [`FlightGuard::complete`]) or, when an identical key is
    /// already being computed, returns a [`Lookup::Pending`] waiter that
    /// shares the leader's result. Exactly one of `hits`, `misses`, or
    /// `coalesced` is incremented per call (atomically with `lookups`).
    pub fn lookup(&self, key: &CacheKey) -> Lookup<'_> {
        if let Some(v) = self.probe_counted(key) {
            return Lookup::Hit(v);
        }
        let mut inflight = self.inflight.lock().expect("inflight lock");
        // Re-check under the inflight lock: a leader that completed
        // between our probe and this lock has already inserted into the
        // LRU and left the inflight map, and must be seen as a hit, not
        // re-led.
        if let Some(v) = self.probe_counted(key) {
            return Lookup::Hit(v);
        }
        if let Some(slot) = inflight.get(key) {
            self.count(Counted::Coalesced);
            return Lookup::Pending(FlightWaiter {
                slot: Arc::clone(slot),
            });
        }
        self.count(Counted::Miss);
        let slot = Arc::new(FlightSlot::new());
        inflight.insert(key.clone(), Arc::clone(&slot));
        Lookup::Lead(FlightGuard {
            cache: self,
            key: key.clone(),
            slot,
            done: false,
        })
    }

    /// An LRU probe that refreshes recency and, *within the same
    /// critical section*, counts a hit — misses are not counted here
    /// (the caller counts the lookup's eventual outcome instead).
    fn probe_counted(&self, key: &CacheKey) -> Option<Arc<Vec<TopKResult>>> {
        let mut cache = self.inner.lock().expect("cache lock");
        let hit = cache.lru.get(key).cloned();
        if hit.is_some() {
            cache.counters.count(Counted::Hit);
        }
        hit
    }

    /// Inserts a computed result directly (used by leaders via
    /// [`FlightGuard::complete`] and by callers that computed outside the
    /// singleflight). Inserts keyed below the dataset's generation floor
    /// — a singleflight leader finishing after its dataset was replaced —
    /// are dropped: they could never be read again, but would evict live
    /// entries.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<TopKResult>>) {
        let mut cache = self.inner.lock().expect("cache lock");
        if cache.admits(&key) {
            cache.lru.insert(key, value);
        }
    }

    /// Forgets every entry belonging to `dataset` (any generation),
    /// releasing their memory now rather than waiting for LRU churn, and
    /// raises the dataset's generation floor to `live_generation` so
    /// in-flight computations against replaced registrations are left to
    /// finish but can no longer pollute the LRU when they land (their
    /// keys embed the old generation, so they could also never be read).
    pub fn invalidate_dataset(&self, dataset: &str, live_generation: u64) {
        let mut cache = self.inner.lock().expect("cache lock");
        let floor = cache.floors.entry(dataset.to_owned()).or_insert(0);
        *floor = (*floor).max(live_generation);
        cache.lru.retain(|k| k.dataset != dataset);
    }

    /// A consistent snapshot of the counters for `GET /healthz`: one
    /// lock acquisition reads every counter plus the entry count, so the
    /// reported totals can never be mutually inconsistent mid-update
    /// (`hits + misses + coalesced == lookups` holds in *every*
    /// snapshot).
    pub fn stats(&self) -> CacheStats {
        let cache = self.inner.lock().expect("cache lock");
        CacheStats {
            lookups: cache.counters.lookups,
            hits: cache.counters.hits,
            misses: cache.counters.misses,
            coalesced: cache.counters.coalesced,
            entries: cache.lru.len(),
            capacity: cache.lru.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapesearch_core::SegmenterKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Weak;

    #[test]
    fn lru_evicts_coldest_first() {
        let mut lru = LruCache::new(3);
        assert_eq!(lru.insert("a", 1), None);
        assert_eq!(lru.insert("b", 2), None);
        assert_eq!(lru.insert("c", 3), None);
        // Touch "a" so "b" becomes the coldest.
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.insert("d", 4), Some("b"));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.keys_by_recency(), vec!["d", "a", "c"]);
        // Two more inserts evict "c" then "a".
        assert_eq!(lru.insert("e", 5), Some("c"));
        assert_eq!(lru.insert("f", 6), Some("a"));
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.keys_by_recency(), vec!["f", "e", "d"]);
    }

    #[test]
    fn lru_replacing_does_not_evict() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), None);
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.get(&"b"), Some(&2));
    }

    #[test]
    fn lru_single_slot() {
        let mut lru = LruCache::new(1);
        lru.insert(1, "x");
        assert_eq!(lru.insert(2, "y"), Some(1));
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&"y"));
    }

    #[test]
    fn lru_retain_unlinks_cleanly() {
        let mut lru = LruCache::new(4);
        for i in 0..4 {
            lru.insert(i, i * 10);
        }
        lru.retain(|&k| k % 2 == 0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&20));
        // The list is still sound: inserts + eviction keep working.
        lru.insert(8, 80);
        lru.insert(9, 90);
        lru.insert(10, 100);
        assert_eq!(lru.len(), 4);
    }

    #[test]
    fn eviction_and_retain_drop_values_immediately() {
        let mut lru: LruCache<&str, Arc<Vec<u8>>> = LruCache::new(2);
        let a = Arc::new(vec![1u8; 16]);
        let weak_a: Weak<Vec<u8>> = Arc::downgrade(&a);
        lru.insert("a", a);
        lru.insert("b", Arc::new(Vec::new()));
        // Evicting "a" must release the only strong reference now, not
        // when the slot is eventually reused.
        assert_eq!(lru.insert("c", Arc::new(Vec::new())), Some("a"));
        assert!(weak_a.upgrade().is_none(), "evicted value still alive");

        let b_weak = {
            let b = lru.get(&"b").unwrap();
            Arc::downgrade(b)
        };
        lru.retain(|&k| k != "b");
        assert!(
            b_weak.upgrade().is_none(),
            "retained-away value still alive"
        );
    }

    #[test]
    fn cache_key_normalizes_query_text() {
        let opts = EngineOptions::default();
        let a = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let b = shapesearch_parser::parse_regex(" [ p = up ] [ p = down ] ").unwrap();
        let ka = CacheKey::new("ds1", 1, 1, "local", &a, 5, &opts);
        let kb = CacheKey::new("ds1", 1, 1, "local", &b, 5, &opts);
        assert_eq!(ka, kb, "whitespace variants must share one cache entry");
        // Different k, dataset, generation, or algorithm each split the key.
        assert_ne!(ka, CacheKey::new("ds1", 1, 1, "local", &a, 6, &opts));
        assert_ne!(ka, CacheKey::new("ds2", 1, 1, "local", &a, 5, &opts));
        assert_ne!(ka, CacheKey::new("ds1", 2, 1, "local", &a, 5, &opts));
        let dp = EngineOptions {
            segmenter: SegmenterKind::Dp,
            ..EngineOptions::default()
        };
        assert_ne!(ka, CacheKey::new("ds1", 1, 1, "local", &a, 5, &dp));
        // A different shard layout also splits the key (belt and braces:
        // re-registration already bumps the generation).
        assert_ne!(ka, CacheKey::new("ds1", 1, 4, "local", &a, 5, &opts));
    }

    #[test]
    fn options_fingerprint_ignores_parallel_threshold_but_not_params() {
        let a = EngineOptions::default();
        let b = EngineOptions {
            parallel_threshold: 7,
            ..EngineOptions::default()
        };
        // Scheduling-only knobs share a fingerprint…
        assert_eq!(options_fingerprint(&a), options_fingerprint(&b));
        // …but result-affecting scoring parameters do not.
        let mut c = EngineOptions::default();
        c.params.min_width_frac = 0.2;
        assert_ne!(options_fingerprint(&a), options_fingerprint(&c));
    }

    #[test]
    fn stats_snapshots_are_always_mutually_consistent() {
        // Hammer the counted paths from several threads while a reader
        // snapshots continuously: with counters bumped under one lock,
        // every snapshot must satisfy hits + misses + coalesced ==
        // lookups exactly — independently loaded atomics would tear.
        let cache = Arc::new(QueryCache::new(8));
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let present = CacheKey::new("sales", 1, 1, "local", &q, 3, &EngineOptions::default());
        cache.insert(present.clone(), Arc::new(Vec::new()));
        let absent = CacheKey::new("sales", 1, 1, "local", &q, 4, &EngineOptions::default());

        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                let present = present.clone();
                let absent = absent.clone();
                scope.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let _ = cache.get(&present);
                        let _ = cache.get(&absent);
                        if let Lookup::Lead(guard) = cache.lookup(&absent) {
                            drop(guard);
                        }
                    }
                });
            }
            let cache = Arc::clone(&cache);
            let stop_flag = Arc::clone(&stop);
            scope.spawn(move || {
                for _ in 0..2000 {
                    let s = cache.stats();
                    assert_eq!(
                        s.hits + s.misses + s.coalesced,
                        s.lookups,
                        "torn counter snapshot: {s:?}"
                    );
                }
                stop_flag.store(1, Ordering::Relaxed);
            });
        });
        let s = cache.stats();
        assert!(s.lookups > 0 && s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn options_fingerprint_ignores_parallel() {
        let seq = EngineOptions::default();
        let par = EngineOptions {
            parallel: true,
            ..EngineOptions::default()
        };
        assert_eq!(options_fingerprint(&seq), options_fingerprint(&par));
    }

    #[test]
    fn singleflight_collapses_concurrent_identical_misses() {
        let cache = Arc::new(QueryCache::new(8));
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let key = CacheKey::new("sales", 1, 1, "local", &q, 3, &EngineOptions::default());
        let n = 8;
        let computations = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let key = key.clone();
                    let computations = Arc::clone(&computations);
                    scope.spawn(move || match cache.lookup(&key) {
                        Lookup::Hit(v) => v,
                        Lookup::Pending(waiter) => waiter.wait().expect("leader succeeded"),
                        Lookup::Lead(guard) => {
                            // Linger so the other threads pile up on the latch.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            computations.fetch_add(1, Ordering::Relaxed);
                            let value = Arc::new(Vec::new());
                            guard.complete(Arc::clone(&value));
                            value
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });

        assert_eq!(
            computations.load(Ordering::Relaxed),
            1,
            "exactly one leader computes"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, n - 1);
        assert!(stats.coalesced >= 1, "some thread must have coalesced");
        // The flight is over: the next lookup is a plain hit.
        assert!(matches!(cache.lookup(&key), Lookup::Hit(_)));
        assert!(cache.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn dropped_leader_wakes_waiters_with_failure() {
        let cache = QueryCache::new(4);
        let q = shapesearch_parser::parse_regex("[p=down]").unwrap();
        let key = CacheKey::new("sales", 1, 1, "local", &q, 1, &EngineOptions::default());
        let Lookup::Lead(guard) = cache.lookup(&key) else {
            panic!("first lookup must lead");
        };
        let Lookup::Pending(waiter) = cache.lookup(&key) else {
            panic!("second lookup must coalesce");
        };
        drop(guard); // error path: leader never completed
        assert!(waiter.wait().is_none(), "waiters see the failure");
        // The key is free again: the next lookup leads a fresh flight.
        assert!(matches!(cache.lookup(&key), Lookup::Lead(_)));
        assert_eq!(cache.stats().entries, 0, "nothing was inserted");
    }

    #[test]
    fn query_cache_counts_and_invalidates() {
        let cache = QueryCache::new(8);
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let key = CacheKey::new("sales", 1, 1, "local", &q, 3, &EngineOptions::default());
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), Arc::new(Vec::new()));
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Invalidation drops every generation of the dataset.
        let key2 = CacheKey::new("sales", 2, 1, "local", &q, 3, &EngineOptions::default());
        cache.insert(key2.clone(), Arc::new(Vec::new()));
        cache.invalidate_dataset("sales", 3);
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().entries, 0);
        // The generation floor also blocks LATE inserts from replaced
        // registrations (a singleflight leader landing after the
        // invalidation): they would be unreachable LRU pollution.
        cache.insert(key2, Arc::new(Vec::new()));
        assert_eq!(cache.stats().entries, 0, "stale insert must be dropped");
        let live = CacheKey::new("sales", 3, 1, "local", &q, 3, &EngineOptions::default());
        cache.insert(live.clone(), Arc::new(Vec::new()));
        assert!(cache.get(&live).is_some(), "live generation still inserts");
        // Other datasets are unaffected by the floor.
        let other = CacheKey::new("genes", 1, 1, "local", &q, 3, &EngineOptions::default());
        cache.insert(other.clone(), Arc::new(Vec::new()));
        assert!(cache.get(&other).is_some());
    }
}
